//! Workspace root crate; see the `spechpc` facade.
pub use spechpc::*;
