//! # spechpc-sim — workspace root
//!
//! This package carries the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); the framework
//! itself lives in the `crates/` members and is re-exported wholesale
//! here via the [`spechpc`] facade.
//!
//! Start with the facade's crate docs for the layer map
//! (machine → simmpi → kernels → power → analysis → harness), or with
//! `docs/ARCHITECTURE.md` for the prose version including the parallel,
//! cached execution layer.
pub use spechpc::*;
