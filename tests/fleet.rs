//! End-to-end tests of the sharded execution fabric (`spechpc fleet`):
//! a real coordinator in front of real worker daemons, all on ephemeral
//! loopback ports, driven by the same hand-rolled HTTP/1.1 client the
//! `serve` tests use. The invariant under test throughout: going
//! through the fabric is byte-identical to talking to one daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use spechpc::harness::fleet::{peer_fetcher, Coordinator, FleetConfig, FleetShutdownHandle};
use spechpc::prelude::*;

/// A small resident executor: in-memory cache, few workers.
fn executor() -> Executor {
    Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2),
    )
}

/// Bind + spawn one worker daemon; `peers` enables cross-worker cache
/// fetch (`GET /v1/cache/{key}`) on local misses.
fn spawn_worker(
    peers: Vec<String>,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let mut exec = executor();
    if !peers.is_empty() {
        exec = exec.with_peer_fetch(peer_fetcher(peers));
    }
    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(4)
        .with_log_requests(false);
    let server = Server::bind(exec, cfg).expect("bind worker");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

/// Bind + spawn a coordinator over `workers`. The probe interval
/// controls how quickly the registry notices liveness transitions on
/// its own; the forwarding path corrects it on every exchange anyway.
fn spawn_coordinator(
    workers: Vec<String>,
    probe_interval_s: f64,
) -> (
    SocketAddr,
    FleetShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = FleetConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(workers)
        .with_probe_interval_s(probe_interval_s);
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");
    let addr = coordinator.local_addr().expect("bound address");
    let handle = coordinator.shutdown_handle();
    let join = std::thread::spawn(move || coordinator.serve());
    (addr, handle, join)
}

/// One HTTP exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {text:?}"));
    let body = match text.find("\r\n\r\n") {
        Some(pos) => text[pos + 4..].to_string(),
        None => String::new(),
    };
    (status, body)
}

/// Extract an unsigned counter from a flat JSON body regardless of the
/// renderer's whitespace around the colon.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\"");
    let rest = &body[body.find(&needle).unwrap_or_else(|| {
        panic!("no {key} in {body}");
    }) + needle.len()..];
    let digits: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or_else(|e| {
        panic!("bad {key} counter in {body}: {e}");
    })
}

fn run_body(benchmark: &str, nranks: usize) -> String {
    RunRequest::new(benchmark, WorkloadClass::Tiny, nranks)
        .with_cluster("a")
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .to_json()
}

fn suite_body() -> String {
    SuiteRequest::new(WorkloadClass::Tiny)
        .with_cluster("a")
        .with_nranks(4)
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .to_json()
}

#[test]
fn coordinator_is_byte_identical_to_a_single_daemon() {
    // Reference: one daemon answering everything itself.
    let (solo, solo_handle, solo_join) = spawn_worker(Vec::new());
    let (_, want_run) = http(solo, "POST", "/v1/run", &run_body("lbm", 4));
    let (want_suite_status, want_suite) = http(solo, "POST", "/v1/suite", &suite_body());
    assert_eq!(want_suite_status, 200);

    // Fabric: the same requests through a coordinator over 3 workers.
    let mut workers = Vec::new();
    for _ in 0..3 {
        workers.push(spawn_worker(Vec::new()));
    }
    let addrs: Vec<String> = workers.iter().map(|(a, _, _)| a.to_string()).collect();
    let (fleet, fleet_handle, fleet_join) = spawn_coordinator(addrs, 0.05);

    let (status, got_run) = http(fleet, "POST", "/v1/run", &run_body("lbm", 4));
    assert_eq!(status, 200, "{got_run}");
    assert_eq!(got_run, want_run, "routed run must replay byte-identically");

    let (status, got_suite) = http(fleet, "POST", "/v1/suite", &suite_body());
    assert_eq!(status, 200, "{got_suite}");
    assert_eq!(
        got_suite, want_suite,
        "sharded suite must reassemble byte-identically"
    );

    // The suite really was sharded: more than one worker executed runs.
    let busy = workers
        .iter()
        .filter(|(a, _, _)| {
            let (_, m) = http(*a, "GET", "/v1/metrics", "");
            json_u64(&m, "runs_executed") > 0
        })
        .count();
    assert!(busy >= 2, "suite must spread across workers, got {busy}");

    // Routing is deterministic: the replayed run is a cache hit, not a
    // second simulation.
    let (_, got_again) = http(fleet, "POST", "/v1/run", &run_body("lbm", 4));
    assert_eq!(got_again, want_run);

    fleet_handle.request_drain();
    fleet_join.join().unwrap().unwrap();
    solo_handle.request_drain();
    solo_join.join().unwrap().unwrap();
    for (_, h, j) in workers {
        h.request_drain();
        j.join().unwrap().unwrap();
    }
}

#[test]
fn dead_and_draining_workers_fail_over_without_losing_work() {
    // One address that accepts nothing: bind, learn the port, drop it.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
        l.local_addr().unwrap().to_string()
    };
    let (w1, h1, j1) = spawn_worker(Vec::new());
    let (w2, h2, j2) = spawn_worker(Vec::new());
    // A near-infinite probe interval: after the startup probe (which
    // marks the reserved-then-dropped address dead) the registry only
    // learns about liveness from the forwarding path itself.
    let (fleet, fleet_handle, fleet_join) =
        spawn_coordinator(vec![w1.to_string(), dead, w2.to_string()], 600.0);

    // Every run lands somewhere even though a third of the ring is
    // unreachable from the start.
    for b in ["lbm", "tealeaf", "pot3d", "cloverleaf", "minisweep"] {
        let (status, body) = http(fleet, "POST", "/v1/run", &run_body(b, 4));
        assert_eq!(status, 200, "{b}: {body}");
    }

    // Kill a worker the coordinator still believes is alive: its suite
    // shard is assigned to it, every forward to it fails, and the work
    // is stolen by the surviving worker — the suite completes as if
    // nothing happened.
    h1.request_drain();
    j1.join().unwrap().unwrap();
    let (status, suite) = http(fleet, "POST", "/v1/suite", &suite_body());
    assert_eq!(status, 200, "{suite}");
    assert!(suite.contains("\"complete\": true"), "{suite}");

    // The shed shard shows up as failovers: forwards that succeeded
    // somewhere other than their first-choice worker.
    let (status, metrics) = http(fleet, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(json_u64(&metrics, "failovers") > 0, "{metrics}");

    // With every remaining worker drained the coordinator answers a
    // typed refusal rather than hanging.
    h2.request_drain();
    j2.join().unwrap().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(fleet, "POST", "/v1/run", &run_body("lbm", 8));
        if status == 503 {
            assert!(body.contains("\"error\":"), "{body}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "expected 503 once all workers are gone, kept getting {status}: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    fleet_handle.request_drain();
    fleet_join.join().unwrap().unwrap();
}

#[test]
fn peer_cache_fetch_replays_other_workers_results_byte_identically() {
    // Worker A simulates; worker B knows A as a cache peer.
    let (wa, ha, ja) = spawn_worker(Vec::new());
    let (wb, hb, jb) = spawn_worker(vec![wa.to_string()]);

    let (status, from_a) = http(wa, "POST", "/v1/run", &run_body("tealeaf", 8));
    assert_eq!(status, 200, "{from_a}");

    // B answers the same request without simulating: one peer hit, zero
    // executed runs, and the bytes match A's answer exactly.
    let (status, from_b) = http(wb, "POST", "/v1/run", &run_body("tealeaf", 8));
    assert_eq!(status, 200, "{from_b}");
    assert_eq!(from_b, from_a, "peer replay must be byte-identical");

    let (_, metrics) = http(wb, "GET", "/v1/metrics", "");
    assert_eq!(json_u64(&metrics, "peer_hits"), 1, "{metrics}");
    assert_eq!(json_u64(&metrics, "runs_executed"), 0, "{metrics}");

    // A second replay on B is now a local hit, not another peer fetch.
    let (_, again) = http(wb, "POST", "/v1/run", &run_body("tealeaf", 8));
    assert_eq!(again, from_a);
    let (_, metrics) = http(wb, "GET", "/v1/metrics", "");
    assert_eq!(json_u64(&metrics, "peer_hits"), 1, "{metrics}");

    ha.request_drain();
    ja.join().unwrap().unwrap();
    hb.request_drain();
    jb.join().unwrap().unwrap();
}
