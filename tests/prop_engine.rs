//! Property-style tests of the discrete-event MPI engine: determinism,
//! causality, and semantic bounds over randomly generated (but
//! well-formed) communication patterns.
//!
//! Cases are drawn from the in-tree deterministic RNG
//! (`spechpc::kernels::common::rng::Rng`) with fixed seeds, so every
//! run explores the same parameter sample — failures are reproducible
//! by construction.

use spechpc::kernels::common::rng::Rng;
use spechpc::machine::presets;
use spechpc::simmpi::engine::{Engine, SimConfig};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::{Op, Program};

/// A well-formed random workload: every rank runs `steps` rounds of
/// compute + a ring sendrecv + optionally a collective, so matching is
/// guaranteed deadlock-free.
fn ring_programs(
    nranks: usize,
    steps: usize,
    compute_ms: &[u8],
    msg_bytes: usize,
    collective: bool,
) -> Vec<Program> {
    (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            for s in 0..steps {
                let c = compute_ms[(r * steps + s) % compute_ms.len()] as f64 * 1e-4;
                p.push(Op::compute(c));
                if nranks > 1 {
                    p.push(Op::sendrecv(
                        (r + 1) % nranks,
                        msg_bytes,
                        (r + nranks - 1) % nranks,
                        s as u32,
                    ));
                }
                if collective {
                    p.push(Op::allreduce(64));
                }
            }
            p
        })
        .collect()
}

fn run(progs: Vec<Program>) -> spechpc::simmpi::engine::SimResult {
    let cluster = presets::cluster_a();
    let net = NetModel::compact(&cluster, progs.len());
    Engine::new(
        SimConfig {
            trace: true,
            ..SimConfig::default()
        },
        net,
        progs,
    )
    .run()
    .expect("well-formed pattern must not deadlock")
}

/// Draw `len` compute durations in `[lo, hi)` milliseconds-ish units.
fn draw_compute(rng: &mut Rng, lo: u8, hi: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| rng.range(lo as f64, hi as f64) as u8)
        .collect()
}

/// The engine is deterministic: identical inputs give identical
/// finish times.
#[test]
fn determinism() {
    let mut rng = Rng::seed_from_u64(0xE1);
    for _ in 0..48 {
        let nranks = rng.range(1.0, 24.0) as usize;
        let steps = rng.range(1.0, 6.0) as usize;
        let len = 4 + rng.range(0.0, 12.0) as usize;
        let compute = draw_compute(&mut rng, 0, 100, len);
        let bytes = rng.range(1.0, 262_144.0) as usize;
        let coll = rng.next_f64() < 0.5;
        let a = run(ring_programs(nranks, steps, &compute, bytes, coll));
        let b = run(ring_programs(nranks, steps, &compute, bytes, coll));
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.p2p_bytes, b.p2p_bytes);
    }
}

/// Causality: the makespan is at least the largest per-rank compute
/// total, and finish times stay within [0, makespan].
#[test]
fn makespan_bounds() {
    let mut rng = Rng::seed_from_u64(0xE2);
    for _ in 0..48 {
        let nranks = rng.range(1.0, 24.0) as usize;
        let steps = rng.range(1.0, 6.0) as usize;
        let len = 4 + rng.range(0.0, 12.0) as usize;
        let compute = draw_compute(&mut rng, 0, 100, len);
        let bytes = rng.range(1.0, 65_536.0) as usize;
        let progs = ring_programs(nranks, steps, &compute, bytes, true);
        let max_compute = progs
            .iter()
            .map(|p| p.compute_seconds())
            .fold(0.0, f64::max);
        let r = run(progs);
        assert!(
            r.makespan >= max_compute - 1e-12,
            "makespan {} below compute bound {}",
            r.makespan,
            max_compute
        );
        for t in &r.finish_times {
            assert!(*t >= 0.0 && *t <= r.makespan + 1e-12);
        }
    }
}

/// Per-rank timeline events never overlap and never run backwards.
#[test]
fn timeline_is_well_ordered() {
    let mut rng = Rng::seed_from_u64(0xE3);
    for _ in 0..40 {
        let nranks = rng.range(2.0, 12.0) as usize;
        let steps = rng.range(1.0, 5.0) as usize;
        let len = 4 + rng.range(0.0, 4.0) as usize;
        let compute = draw_compute(&mut rng, 1, 50, len);
        let r = run(ring_programs(nranks, steps, &compute, 4096, true));
        for rank in 0..nranks {
            let events = r.timeline.rank_events(rank);
            for w in events.windows(2) {
                assert!(
                    w[0].end <= w[1].start + 1e-12,
                    "rank {rank}: overlapping events {:?} {:?}",
                    w[0],
                    w[1]
                );
            }
            for e in &events {
                assert!(e.end >= e.start);
            }
        }
    }
}

/// Byte accounting: p2p payload equals exactly what the programs
/// declare, and internode bytes never exceed the total.
#[test]
fn byte_accounting() {
    let mut rng = Rng::seed_from_u64(0xE4);
    for _ in 0..48 {
        let nranks = rng.range(2.0, 100.0) as usize;
        let bytes = rng.range(1.0, 1_000_000.0) as usize;
        let progs = ring_programs(nranks, 1, &[10], bytes, false);
        let declared: usize = progs.iter().map(|p| p.bytes_sent()).sum();
        let r = run(progs);
        assert_eq!(r.p2p_bytes, declared as u64);
        assert!(r.internode_bytes <= r.p2p_bytes);
    }
}

/// Adding a barrier at the end synchronizes every rank to a common
/// finish time that is no earlier than anyone's previous finish.
#[test]
fn barrier_synchronizes() {
    let mut rng = Rng::seed_from_u64(0xE5);
    for _ in 0..40 {
        let nranks = rng.range(2.0, 16.0) as usize;
        let len = 2 + rng.range(0.0, 6.0) as usize;
        let compute = draw_compute(&mut rng, 0, 200, len);
        let mut progs = ring_programs(nranks, 1, &compute, 1024, false);
        let before = run(progs.clone());
        for p in &mut progs {
            p.push(Op::Barrier);
        }
        let after = run(progs);
        let t0 = after.finish_times[0];
        for (i, t) in after.finish_times.iter().enumerate() {
            assert!(
                (t - t0).abs() < 1e-12,
                "rank {i} left the barrier at {t} != {t0}"
            );
            assert!(*t >= before.finish_times[i] - 1e-12);
        }
    }
}

/// Growing a message can never make the run finish earlier.
#[test]
fn monotone_in_message_size() {
    let mut rng = Rng::seed_from_u64(0xE6);
    for _ in 0..48 {
        let nranks = rng.range(2.0, 16.0) as usize;
        let small = rng.range(1.0, 10_000.0) as usize;
        let extra = rng.range(1.0, 500_000.0) as usize;
        let a = run(ring_programs(nranks, 2, &[5, 9], small, false));
        let b = run(ring_programs(nranks, 2, &[5, 9], small + extra, false));
        assert!(
            b.makespan >= a.makespan - 1e-12,
            "bigger messages finished earlier: {} vs {}",
            a.makespan,
            b.makespan
        );
    }
}
