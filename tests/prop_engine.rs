//! Property-based tests of the discrete-event MPI engine: determinism,
//! causality, and semantic bounds over randomly generated (but
//! well-formed) communication patterns.

use proptest::prelude::*;
use spechpc::machine::presets;
use spechpc::simmpi::engine::{Engine, SimConfig};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::{Op, Program};

/// A well-formed random workload: every rank runs `steps` rounds of
/// compute + a ring sendrecv + optionally a collective, so matching is
/// guaranteed deadlock-free.
fn ring_programs(
    nranks: usize,
    steps: usize,
    compute_ms: &[u8],
    msg_bytes: usize,
    collective: bool,
) -> Vec<Program> {
    (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            for s in 0..steps {
                let c = compute_ms[(r * steps + s) % compute_ms.len()] as f64 * 1e-4;
                p.push(Op::compute(c));
                if nranks > 1 {
                    p.push(Op::sendrecv(
                        (r + 1) % nranks,
                        msg_bytes,
                        (r + nranks - 1) % nranks,
                        s as u32,
                    ));
                }
                if collective {
                    p.push(Op::allreduce(64));
                }
            }
            p
        })
        .collect()
}

fn run(progs: Vec<Program>) -> spechpc::simmpi::engine::SimResult {
    let cluster = presets::cluster_a();
    let net = NetModel::compact(&cluster, progs.len());
    Engine::new(SimConfig { trace: true }, net, progs)
        .run()
        .expect("well-formed pattern must not deadlock")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine is deterministic: identical inputs give identical
    /// finish times.
    #[test]
    fn determinism(
        nranks in 1usize..24,
        steps in 1usize..6,
        compute in prop::collection::vec(0u8..100, 4..16),
        bytes in 1usize..262_144,
        coll in any::<bool>(),
    ) {
        let a = run(ring_programs(nranks, steps, &compute, bytes, coll));
        let b = run(ring_programs(nranks, steps, &compute, bytes, coll));
        prop_assert_eq!(a.finish_times, b.finish_times);
        prop_assert_eq!(a.p2p_bytes, b.p2p_bytes);
    }

    /// Causality: the makespan is at least the largest per-rank compute
    /// total, and at least the critical compute path per rank.
    #[test]
    fn makespan_bounds(
        nranks in 1usize..24,
        steps in 1usize..6,
        compute in prop::collection::vec(0u8..100, 4..16),
        bytes in 1usize..65_536,
    ) {
        let progs = ring_programs(nranks, steps, &compute, bytes, true);
        let max_compute = progs
            .iter()
            .map(|p| p.compute_seconds())
            .fold(0.0, f64::max);
        let r = run(progs);
        prop_assert!(r.makespan >= max_compute - 1e-12,
            "makespan {} below compute bound {}", r.makespan, max_compute);
        // Finish times are non-negative and bounded by the makespan.
        for t in &r.finish_times {
            prop_assert!(*t >= 0.0 && *t <= r.makespan + 1e-12);
        }
    }

    /// Per-rank timeline events never overlap and never run backwards.
    #[test]
    fn timeline_is_well_ordered(
        nranks in 2usize..12,
        steps in 1usize..5,
        compute in prop::collection::vec(1u8..50, 4..8),
    ) {
        let r = run(ring_programs(nranks, steps, &compute, 4096, true));
        for rank in 0..nranks {
            let events = r.timeline.rank_events(rank);
            for w in events.windows(2) {
                prop_assert!(w[0].end <= w[1].start + 1e-12,
                    "rank {rank}: overlapping events {:?} {:?}", w[0], w[1]);
            }
            for e in &events {
                prop_assert!(e.end >= e.start);
            }
        }
    }

    /// Byte accounting: p2p payload equals exactly what the programs
    /// declare, and internode bytes never exceed the total.
    #[test]
    fn byte_accounting(
        nranks in 2usize..100,
        bytes in 1usize..1_000_000,
    ) {
        let progs = ring_programs(nranks, 1, &[10], bytes, false);
        let declared: usize = progs.iter().map(|p| p.bytes_sent()).sum();
        let r = run(progs);
        prop_assert_eq!(r.p2p_bytes, declared as u64);
        prop_assert!(r.internode_bytes <= r.p2p_bytes);
    }

    /// Adding a barrier at the end synchronizes every rank to a common
    /// finish time that is no earlier than anyone's previous finish.
    #[test]
    fn barrier_synchronizes(
        nranks in 2usize..16,
        compute in prop::collection::vec(0u8..200, 2..8),
    ) {
        let mut progs = ring_programs(nranks, 1, &compute, 1024, false);
        let before = run(progs.clone());
        for p in &mut progs {
            p.push(Op::Barrier);
        }
        let after = run(progs);
        let t0 = after.finish_times[0];
        for (i, t) in after.finish_times.iter().enumerate() {
            prop_assert!((t - t0).abs() < 1e-12, "rank {i} left the barrier at {t} != {t0}");
            prop_assert!(*t >= before.finish_times[i] - 1e-12);
        }
    }

    /// Growing a message can never make the run finish earlier.
    #[test]
    fn monotone_in_message_size(
        nranks in 2usize..16,
        small in 1usize..10_000,
        extra in 1usize..500_000,
    ) {
        let a = run(ring_programs(nranks, 2, &[5, 9], small, false));
        let b = run(ring_programs(nranks, 2, &[5, 9], small + extra, false));
        prop_assert!(b.makespan >= a.makespan - 1e-12,
            "bigger messages finished earlier: {} vs {}", a.makespan, b.makespan);
    }
}
