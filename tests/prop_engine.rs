//! Property-style tests of the discrete-event MPI engine: determinism,
//! causality, and semantic bounds over randomly generated (but
//! well-formed) communication patterns.
//!
//! Cases are drawn from the in-tree deterministic RNG
//! (`spechpc::kernels::common::rng::Rng`) with fixed seeds, so every
//! run explores the same parameter sample — failures are reproducible
//! by construction.

use spechpc::kernels::common::rng::Rng;
use spechpc::machine::presets;
use spechpc::simmpi::engine::{Engine, SimConfig, SimResult};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::{Op, Program};

/// A well-formed random workload: every rank runs `steps` rounds of
/// compute + a ring sendrecv + optionally a collective, so matching is
/// guaranteed deadlock-free.
fn ring_programs(
    nranks: usize,
    steps: usize,
    compute_ms: &[u8],
    msg_bytes: usize,
    collective: bool,
) -> Vec<Program> {
    (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            for s in 0..steps {
                let c = compute_ms[(r * steps + s) % compute_ms.len()] as f64 * 1e-4;
                p.push(Op::compute(c));
                if nranks > 1 {
                    p.push(Op::sendrecv(
                        (r + 1) % nranks,
                        msg_bytes,
                        (r + nranks - 1) % nranks,
                        s as u32,
                    ));
                }
                if collective {
                    p.push(Op::allreduce(64));
                }
            }
            p
        })
        .collect()
}

fn run(progs: Vec<Program>) -> spechpc::simmpi::engine::SimResult {
    let cluster = presets::cluster_a();
    let net = NetModel::compact(&cluster, progs.len());
    Engine::new(SimConfig::default().with_trace(true), net, progs)
        .run()
        .expect("well-formed pattern must not deadlock")
}

/// Draw `len` compute durations in `[lo, hi)` milliseconds-ish units.
fn draw_compute(rng: &mut Rng, lo: u8, hi: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| rng.range(lo as f64, hi as f64) as u8)
        .collect()
}

/// The engine is deterministic: identical inputs give identical
/// finish times.
#[test]
fn determinism() {
    let mut rng = Rng::seed_from_u64(0xE1);
    for _ in 0..48 {
        let nranks = rng.range(1.0, 24.0) as usize;
        let steps = rng.range(1.0, 6.0) as usize;
        let len = 4 + rng.range(0.0, 12.0) as usize;
        let compute = draw_compute(&mut rng, 0, 100, len);
        let bytes = rng.range(1.0, 262_144.0) as usize;
        let coll = rng.next_f64() < 0.5;
        let a = run(ring_programs(nranks, steps, &compute, bytes, coll));
        let b = run(ring_programs(nranks, steps, &compute, bytes, coll));
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.p2p_bytes, b.p2p_bytes);
    }
}

/// Causality: the makespan is at least the largest per-rank compute
/// total, and finish times stay within [0, makespan].
#[test]
fn makespan_bounds() {
    let mut rng = Rng::seed_from_u64(0xE2);
    for _ in 0..48 {
        let nranks = rng.range(1.0, 24.0) as usize;
        let steps = rng.range(1.0, 6.0) as usize;
        let len = 4 + rng.range(0.0, 12.0) as usize;
        let compute = draw_compute(&mut rng, 0, 100, len);
        let bytes = rng.range(1.0, 65_536.0) as usize;
        let progs = ring_programs(nranks, steps, &compute, bytes, true);
        let max_compute = progs
            .iter()
            .map(|p| p.compute_seconds())
            .fold(0.0, f64::max);
        let r = run(progs);
        assert!(
            r.makespan >= max_compute - 1e-12,
            "makespan {} below compute bound {}",
            r.makespan,
            max_compute
        );
        for t in &r.finish_times {
            assert!(*t >= 0.0 && *t <= r.makespan + 1e-12);
        }
    }
}

/// Per-rank timeline events never overlap and never run backwards.
#[test]
fn timeline_is_well_ordered() {
    let mut rng = Rng::seed_from_u64(0xE3);
    for _ in 0..40 {
        let nranks = rng.range(2.0, 12.0) as usize;
        let steps = rng.range(1.0, 5.0) as usize;
        let len = 4 + rng.range(0.0, 4.0) as usize;
        let compute = draw_compute(&mut rng, 1, 50, len);
        let r = run(ring_programs(nranks, steps, &compute, 4096, true));
        for rank in 0..nranks {
            let events = r.timeline.rank_events(rank);
            for w in events.windows(2) {
                assert!(
                    w[0].end <= w[1].start + 1e-12,
                    "rank {rank}: overlapping events {:?} {:?}",
                    w[0],
                    w[1]
                );
            }
            for e in &events {
                assert!(e.end >= e.start);
            }
        }
    }
}

/// Byte accounting: p2p payload equals exactly what the programs
/// declare, and internode bytes never exceed the total.
#[test]
fn byte_accounting() {
    let mut rng = Rng::seed_from_u64(0xE4);
    for _ in 0..48 {
        let nranks = rng.range(2.0, 100.0) as usize;
        let bytes = rng.range(1.0, 1_000_000.0) as usize;
        let progs = ring_programs(nranks, 1, &[10], bytes, false);
        let declared: usize = progs.iter().map(|p| p.bytes_sent()).sum();
        let r = run(progs);
        assert_eq!(r.p2p_bytes, declared as u64);
        assert!(r.internode_bytes <= r.p2p_bytes);
    }
}

/// Adding a barrier at the end synchronizes every rank to a common
/// finish time that is no earlier than anyone's previous finish.
#[test]
fn barrier_synchronizes() {
    let mut rng = Rng::seed_from_u64(0xE5);
    for _ in 0..40 {
        let nranks = rng.range(2.0, 16.0) as usize;
        let len = 2 + rng.range(0.0, 6.0) as usize;
        let compute = draw_compute(&mut rng, 0, 200, len);
        let mut progs = ring_programs(nranks, 1, &compute, 1024, false);
        let before = run(progs.clone());
        for p in &mut progs {
            p.push(Op::Barrier);
        }
        let after = run(progs);
        let t0 = after.finish_times[0];
        for (i, t) in after.finish_times.iter().enumerate() {
            assert!(
                (t - t0).abs() < 1e-12,
                "rank {i} left the barrier at {t} != {t0}"
            );
            assert!(*t >= before.finish_times[i] - 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Scheduler equivalence: golden vectors pinned from the polling engine
// ---------------------------------------------------------------------
//
// The fingerprints below were captured from the pre-ready-queue
// (polling-sweep) engine. Any scheduler or data-structure change must
// reproduce them bit for bit: `SimResult` is defined to be independent
// of the order in which runnable ranks are visited.

/// FNV-1a accumulation over raw bytes.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Bit-exact digest of everything `SimResult` promises to keep stable:
/// finish times, the online per-rank breakdown, byte counters, and the
/// full observability profile. Timeline events are digested per rank
/// (their global interleaving is scheduler-visiting-order and is *not*
/// part of the contract).
fn fingerprint(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for t in &r.finish_times {
        fnv(&mut h, &t.to_bits().to_le_bytes());
    }
    for row in &r.per_rank_breakdown {
        for v in row {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    fnv(&mut h, &r.p2p_bytes.to_le_bytes());
    fnv(&mut h, &r.internode_bytes.to_le_bytes());
    let p = &r.profile;
    fnv(&mut h, &(p.nranks as u64).to_le_bytes());
    for ph in &p.per_rank {
        for v in [
            ph.compute_s,
            ph.eager_send_s,
            ph.rendezvous_stall_s,
            ph.recv_wait_s,
            ph.collective_wait_s,
        ] {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    for hist in [&p.eager_hist, &p.rendezvous_hist] {
        for b in hist.iter() {
            fnv(&mut h, &b.count.to_le_bytes());
            fnv(&mut h, &b.bytes.to_le_bytes());
        }
    }
    for v in &p.comm_matrix {
        fnv(&mut h, &v.to_le_bytes());
    }
    for rank in 0..r.timeline.nranks {
        for e in r.timeline.rank_events(rank) {
            fnv(&mut h, &(e.rank as u64).to_le_bytes());
            fnv(&mut h, &e.start.to_bits().to_le_bytes());
            fnv(&mut h, &e.end.to_bits().to_le_bytes());
            fnv(&mut h, &[e.kind.glyph() as u8]);
        }
    }
    h
}

/// Randomized but deadlock-free workload mixing every scheduling shape
/// the engine supports: eager and rendezvous point-to-point, blocking
/// sendrecv rings, non-blocking exchanges with reordered waits, and all
/// six collectives, with per-rank compute skew in between.
fn mixed_programs(rng: &mut Rng, nranks: usize, steps: usize) -> Vec<Program> {
    let mut progs: Vec<Program> = (0..nranks).map(|_| Program::new()).collect();
    for step in 0..steps {
        let tag = step as u32;
        for (r, p) in progs.iter_mut().enumerate() {
            let skew = rng.range(0.0, 2.0) * 1e-4 * ((r % 7) + 1) as f64;
            p.push(Op::compute(skew));
        }
        let next = |r: usize| (r + 1) % nranks;
        let prev = |r: usize| (r + nranks - 1) % nranks;
        match rng.range(0.0, 5.0) as usize {
            0 if nranks > 1 => {
                // Blocking sendrecv ring, eager or rendezvous payloads.
                let bytes = rng.range(1.0, 300_000.0) as usize;
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::sendrecv(next(r), bytes, prev(r), tag));
                }
            }
            1 if nranks > 1 => {
                // Eager-only ring of blocking sends: safe because the
                // payload stays below the protocol threshold, so sends
                // complete locally before the matching receive posts.
                let bytes = rng.range(0.0, 16_384.0) as usize;
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::send(next(r), tag, bytes));
                }
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::recv(prev(r), tag));
                }
            }
            2 if nranks > 1 => {
                // Non-blocking exchange; half the time the waits are
                // issued in the reverse order of the posts.
                let bytes = rng.range(1.0, 500_000.0) as usize;
                let reorder = rng.next_f64() < 0.5;
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::irecv(prev(r), tag, 0));
                    p.push(Op::isend(next(r), tag, bytes, 1));
                    p.push(Op::compute(1e-4));
                    let (first, second) = if reorder { (1, 0) } else { (0, 1) };
                    p.push(Op::wait(first));
                    p.push(Op::wait(second));
                }
            }
            3 => {
                let bytes = rng.range(1.0, 100_000.0) as usize;
                let root = rng.range(0.0, nranks as f64) as usize % nranks;
                let op = match rng.range(0.0, 6.0) as usize {
                    0 => Op::allreduce(bytes),
                    1 => Op::Barrier,
                    2 => Op::bcast(root, bytes),
                    3 => Op::reduce(root, bytes),
                    4 => Op::allgather(bytes.min(4096)),
                    _ => Op::alltoall(bytes.min(2048)),
                };
                for p in &mut progs {
                    p.push(op);
                }
            }
            _ => {} // compute-only step
        }
    }
    progs
}

/// Run one golden case: `trace` exercises the timeline path, `profile`
/// off exercises the no-op recorder path.
fn golden_case(seed: u64) -> u64 {
    let mut rng = Rng::seed_from_u64(seed);
    let nranks = 2 + rng.range(0.0, 30.0) as usize;
    let steps = 1 + rng.range(0.0, 7.0) as usize;
    let trace = rng.next_f64() < 0.3;
    let profile = rng.next_f64() < 0.8;
    let progs = mixed_programs(&mut rng, nranks, steps);
    let cluster = presets::cluster_a();
    let net = NetModel::compact(&cluster, nranks);
    let r = Engine::new(
        SimConfig::default().with_trace(trace).with_profile(profile),
        net,
        progs,
    )
    .run()
    .expect("well-formed golden case must not deadlock");
    fingerprint(&r)
}

/// Pinned from the pre-rewrite polling engine (see module note above).
const GOLDEN: [u64; 24] = [
    0xf8e02a51d3285e96,
    0x559334651cc55837,
    0x7495f6a1630b87cc,
    0xed1ec5837bb154dd,
    0x12c59472c6e04af5,
    0xb44f49ade1b87109,
    0x33e8028dad38434d,
    0xe53ae00f0a76c644,
    0xd766250d1eefe3f7,
    0xde02b3f345b4429b,
    0x542225f392ce9fd3,
    0x8e8644a9152f56a3,
    0x18a411296cf15c63,
    0x74a2413a439edf0e,
    0x16f6c6769f1d97cf,
    0x2e0a063f010ac896,
    0xf70efac7f0e27013,
    0x57786eb26675187e,
    0x6e7be5479ebc7e98,
    0x409f4fc51b671387,
    0x1c5f04ce967e1ea3,
    0x2e8d1ced7e25bc79,
    0xb658fce9a578dc43,
    0xe6076a4057ad3bf9,
];

#[test]
fn scheduler_matches_golden_vectors() {
    let got: Vec<u64> = (0..GOLDEN.len())
        .map(|i| golden_case(0xD00D + i as u64))
        .collect();
    let want: Vec<u64> = GOLDEN.to_vec();
    if got != want {
        let rendered: Vec<String> = got.iter().map(|v| format!("0x{v:016x}")).collect();
        panic!(
            "scheduler diverged from the pinned polling-engine results.\n\
             computed fingerprints: [{}]",
            rendered.join(", ")
        );
    }
}

/// One larger case than the pinned set: the scheduler must stay
/// deterministic under a 128-rank mixed workload (the golden vectors
/// already pin the small/medium shapes bit-exactly).
#[test]
fn mixed_workload_large_case_deterministic() {
    let run_once = || {
        let mut rng = Rng::seed_from_u64(0xBEEF);
        let progs = mixed_programs(&mut rng, 128, 4);
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, 128);
        Engine::new(SimConfig::default(), net, progs)
            .run()
            .expect("no deadlock")
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.makespan > 0.0);
}

/// Growing a message can never make the run finish earlier.
#[test]
fn monotone_in_message_size() {
    let mut rng = Rng::seed_from_u64(0xE6);
    for _ in 0..48 {
        let nranks = rng.range(2.0, 16.0) as usize;
        let small = rng.range(1.0, 10_000.0) as usize;
        let extra = rng.range(1.0, 500_000.0) as usize;
        let a = run(ring_programs(nranks, 2, &[5, 9], small, false));
        let b = run(ring_programs(nranks, 2, &[5, 9], small + extra, false));
        assert!(
            b.makespan >= a.makespan - 1e-12,
            "bigger messages finished earlier: {} vs {}",
            a.makespan,
            b.makespan
        );
    }
}
