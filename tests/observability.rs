//! Integration tests for the observability layer: the Fig.-2-style
//! profile must be populated without event tracing (the whole point of
//! the incremental profiler), survive the disk cache byte-exactly, and
//! the executor metrics must report real cache hits on a warm store.

use std::path::PathBuf;

use spechpc::prelude::*;
use spechpc::simmpi::Profile;

fn quick() -> RunConfig {
    RunConfig::default()
        .with_warmup_steps(1)
        .with_measured_steps(2)
        .with_repetitions(1)
        .with_trace(false)
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spechpc-observability-{tag}-{}",
        std::process::id()
    ))
}

fn assert_profiled(r: &RunResult, ctx: &str) {
    let p: &Profile = &r.profile;
    assert!(p.is_enabled(), "{ctx}: profile must be on by default");
    assert_eq!(p.per_rank.len(), p.nranks, "{ctx}: one phase row per rank");
    let tot = p.totals();
    assert!(tot.total_s() > 0.0, "{ctx}: phases must be attributed");
    assert!(tot.mpi_s() > 0.0, "{ctx}: some MPI wait must show up");
    let traffic: u64 = (0..p.nranks)
        .flat_map(|f| (0..p.nranks).map(move |t| (f, t)))
        .map(|(f, t)| p.bytes_between(f, t))
        .sum();
    assert!(traffic > 0, "{ctx}: comm matrix must record traffic");
    let msgs: u64 = p
        .eager_hist
        .iter()
        .chain(p.rendezvous_hist.iter())
        .map(|b| b.count)
        .sum();
    assert!(msgs > 0, "{ctx}: size histograms must record messages");
    // The profile is incremental — no timeline was recorded to get it.
    assert!(
        r.timeline.events.is_empty(),
        "{ctx}: profiling must not require tracing"
    );
}

/// The paper's Fig. 2 pathologies (minisweep@59, lbm at an odd rank
/// count) profile on both cluster presets with tracing off.
#[test]
fn fig2_cases_profile_without_tracing_on_both_presets() {
    for cluster in [presets::cluster_a(), presets::cluster_b()] {
        let exec = Executor::serial(quick());
        let cases = [("minisweep", 59usize), ("lbm", cluster.node.cores() - 1)];
        for (name, n) in cases {
            let spec = RunSpec::new(name, WorkloadClass::Tiny, n);
            let r = exec.run_one(&cluster, &spec).unwrap();
            assert_profiled(&r, &format!("{name}@{n} on {}", cluster.name));
        }
    }
}

/// minisweep@59's profile must tell the Fig.-2 story: the sweep's
/// serialized receives make waiting (recv + rendezvous stalls) the
/// dominant MPI phase.
#[test]
fn minisweep_profile_shows_recv_dominated_waits() {
    let exec = Executor::serial(quick());
    let spec = RunSpec::new("minisweep", WorkloadClass::Tiny, 59);
    let r = exec.run_one(&presets::cluster_a(), &spec).unwrap();
    let tot = r.profile.totals();
    let waits = tot.recv_wait_s + tot.rendezvous_stall_s;
    assert!(
        waits > tot.eager_send_s,
        "receive-side waits ({waits:.4} s) must dominate send overhead ({:.4} s)",
        tot.eager_send_s
    );
}

/// A second invocation against a warm disk store must be served from
/// the cache — non-zero hits, zero simulations — and hand back the
/// identical profile.
#[test]
fn warm_cache_reports_hits_and_preserves_the_profile() {
    let dir = scratch_dir("warm");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = presets::cluster_a();
    let specs: Vec<RunSpec> = [("minisweep", 59usize), ("lbm", 16), ("tealeaf", 8)]
        .iter()
        .map(|&(name, n)| RunSpec::new(name, WorkloadClass::Tiny, n))
        .collect();

    let cfg = |jobs| {
        ExecConfig::default()
            .with_jobs(jobs)
            .with_cache_dir(dir.clone())
    };
    let cold = Executor::new(quick(), cfg(2));
    let first = cold.run_all(&cluster, &specs).into_results().unwrap();
    let m = cold.metrics();
    assert_eq!(m.runs_executed, specs.len() as u64);
    assert_eq!(m.cache.misses, specs.len() as u64);
    assert_eq!(m.cache.stores, specs.len() as u64);

    // Fresh executor, same store: everything replays from disk.
    let warm = Executor::new(quick(), cfg(2));
    let second = warm.run_all(&cluster, &specs).into_results().unwrap();
    let m = warm.metrics();
    assert_eq!(m.runs_executed, 0, "warm store must not re-simulate");
    assert!(m.cache.hits_disk >= specs.len() as u64);
    assert_eq!(m.cache.misses, 0);
    assert_eq!(m.cache.corrupt, 0);

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            format!("{:#?}", a.profile),
            format!("{:#?}", b.profile),
            "profile must survive the cache round-trip bit-exactly"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
