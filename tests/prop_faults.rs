//! Property-style tests of the fault-injection subsystem: graceful
//! termination under random crash plans, bit-exact reproducibility of
//! the same `(plan, seed)`, monotone degradation, and byte-identical
//! cached replay through the harness.
//!
//! Cases are drawn from the in-tree deterministic RNG with fixed
//! seeds, so every run explores the same parameter sample — failures
//! are reproducible by construction.

use std::path::PathBuf;

use spechpc::kernels::common::rng::Rng;
use spechpc::machine::presets;
use spechpc::prelude::*;
use spechpc::simmpi::engine::{Engine, SimConfig, SimError, SimResult};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::{Op, Program};

/// A well-formed random workload: compute + a ring sendrecv +
/// optionally a collective per step, so matching is deadlock-free
/// without faults.
fn ring_programs(
    nranks: usize,
    steps: usize,
    compute_ms: &[u8],
    msg_bytes: usize,
    collective: bool,
) -> Vec<Program> {
    (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            for s in 0..steps {
                let c = compute_ms[(r * steps + s) % compute_ms.len()] as f64 * 1e-4;
                p.push(Op::compute(c));
                if nranks > 1 {
                    p.push(Op::sendrecv(
                        (r + 1) % nranks,
                        msg_bytes,
                        (r + nranks - 1) % nranks,
                        s as u32,
                    ));
                }
                if collective {
                    p.push(Op::allreduce(64));
                }
            }
            p
        })
        .collect()
}

fn run_with(plan: FaultPlan, progs: Vec<Program>) -> Result<SimResult, SimError> {
    let cluster = presets::cluster_a();
    let net = NetModel::compact(&cluster, progs.len());
    Engine::new(SimConfig::default().with_faults(plan), net, progs).run()
}

/// FNV-1a digest over everything `SimResult` promises to keep stable.
fn fingerprint(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for t in &r.finish_times {
        fnv(&t.to_bits().to_le_bytes());
    }
    for row in &r.per_rank_breakdown {
        for v in row {
            fnv(&v.to_bits().to_le_bytes());
        }
    }
    fnv(&r.p2p_bytes.to_le_bytes());
    fnv(&r.internode_bytes.to_le_bytes());
    for ph in &r.profile.per_rank {
        for v in [
            ph.compute_s,
            ph.eager_send_s,
            ph.rendezvous_stall_s,
            ph.recv_wait_s,
            ph.collective_wait_s,
            ph.fault_stall_s,
        ] {
            fnv(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// A random non-crash degradation plan: noise, stragglers, flaky
/// links and throttle windows, with parameters inside the validated
/// ranges.
fn degradation_plan(rng: &mut Rng, nranks: usize, seed: u64) -> FaultPlan {
    let mut events = Vec::new();
    let n_events = 1 + rng.range(0.0, 4.0) as usize;
    for _ in 0..n_events {
        let rank = rng.range(0.0, nranks as f64) as usize % nranks;
        events.push(match rng.range(0.0, 4.0) as usize {
            0 => FaultEvent::OsNoise {
                ranks: RankSet::All,
                amplitude: rng.range(0.01, 0.8),
            },
            1 => FaultEvent::Straggler {
                rank,
                slowdown: rng.range(1.0, 4.0),
            },
            2 => FaultEvent::FlakyLink {
                from: rank,
                to: (rank + 1) % nranks,
                drop_prob: rng.range(0.0, 0.9),
                retransmit_latency_s: rng.range(0.0, 1e-4),
            },
            _ => FaultEvent::Throttle {
                ranks: RankSet::One(rank),
                t_start_s: rng.range(0.0, 1e-3),
                t_end_s: rng.range(1e-3, 1.0),
                slowdown: rng.range(1.0, 3.0),
            },
        });
    }
    let plan = FaultPlan { seed, events };
    plan.validate().expect("generated plan must be valid");
    plan
}

/// Under an arbitrary crash plan every run terminates — either
/// completing (the crash never fired on this size) or aborting with
/// `RankFailed` blaming the crashed rank, or `Deadlock` when survivors
/// block on the dead rank. Never a hang, never a panic.
#[test]
fn crash_plans_terminate_with_blame_or_deadlock() {
    let mut rng = Rng::seed_from_u64(0xFA01);
    let mut failures = 0;
    for _ in 0..48 {
        let nranks = 2 + rng.range(0.0, 16.0) as usize;
        let steps = 1 + rng.range(0.0, 5.0) as usize;
        let victim = rng.range(0.0, 1.5 * nranks as f64) as usize; // may be out of range
        let at_s = rng.range(0.0, 2e-3);
        let plan = FaultPlan {
            seed: 1,
            events: vec![FaultEvent::Crash { rank: victim, at_s }],
        };
        let progs = ring_programs(nranks, steps, &[3, 7, 11], 4096, true);
        match run_with(plan, progs) {
            Ok(r) => assert!(r.makespan >= 0.0),
            Err(SimError::RankFailed { rank, at_s: t, .. }) => {
                failures += 1;
                assert_eq!(rank, victim, "abort must blame the crashed rank");
                assert!(t >= at_s, "failure time {t} before the scheduled {at_s}");
            }
            Err(SimError::Deadlock(blocked)) => {
                failures += 1;
                assert!(!blocked.is_empty());
            }
            Err(e) => panic!("unexpected error under a crash plan: {e}"),
        }
    }
    assert!(failures > 0, "no sampled crash ever fired");
}

/// The same `(plan, seed)` pair reproduces the `SimResult` bit for
/// bit, and reseeding a noisy plan actually changes the outcome.
#[test]
fn same_plan_and_seed_is_bit_identical() {
    let mut rng = Rng::seed_from_u64(0xFA02);
    let mut reseeded_differs = false;
    for i in 0..24 {
        let nranks = 2 + rng.range(0.0, 12.0) as usize;
        let steps = 1 + rng.range(0.0, 4.0) as usize;
        let plan = degradation_plan(&mut rng, nranks, 0x5EED + i);
        let progs = ring_programs(nranks, steps, &[2, 5, 13], 32_768, false);
        let a = run_with(plan.clone(), progs.clone()).expect("no crash events");
        let b = run_with(plan.clone(), progs.clone()).expect("no crash events");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "same (plan, seed) diverged"
        );
        let reseeded = FaultPlan {
            seed: plan.seed ^ 0xFFFF,
            ..plan
        };
        let c = run_with(reseeded, progs).expect("no crash events");
        reseeded_differs |= fingerprint(&a) != fingerprint(&c);
    }
    assert!(reseeded_differs, "reseeding never changed any outcome");
}

/// Degradation is monotone: injecting noise/stragglers/flaky links/
/// throttling can never make the run finish earlier, and the profile
/// attributes the loss as fault stall.
#[test]
fn faults_never_speed_a_run_up() {
    let mut rng = Rng::seed_from_u64(0xFA03);
    let mut stall_seen = false;
    for i in 0..24 {
        let nranks = 2 + rng.range(0.0, 12.0) as usize;
        let steps = 1 + rng.range(0.0, 4.0) as usize;
        let progs = ring_programs(nranks, steps, &[4, 9], 16_384, true);
        let clean = run_with(FaultPlan::none(), progs.clone()).expect("clean");
        let plan = degradation_plan(&mut rng, nranks, 0xACE + i);
        let faulty = run_with(plan, progs).expect("degradation plans cannot abort");
        assert!(
            faulty.makespan >= clean.makespan - 1e-12,
            "faults sped the run up: {} < {}",
            faulty.makespan,
            clean.makespan
        );
        stall_seen |= faulty
            .profile
            .per_rank
            .iter()
            .any(|ph| ph.fault_stall_s > 0.0);
    }
    assert!(stall_seen, "no sampled plan ever attributed fault stall");
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spechpc-prop-faults-{tag}-{}", std::process::id()))
}

/// Read the bytes of the single cache entry under `dir`.
fn only_entry(dir: &PathBuf) -> Vec<u8> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    std::fs::read(entries.remove(0).path()).expect("read entry")
}

/// The same `(plan, seed)` through the harness is byte-identical on
/// disk: two cold executors over separate stores write the same cache
/// entry, and a warm executor replays it without re-simulating.
#[test]
fn cached_replay_of_a_faulty_run_is_byte_identical() {
    let cluster = presets::cluster_a();
    let plan = FaultPlan {
        seed: 99,
        events: vec![
            FaultEvent::OsNoise {
                ranks: RankSet::All,
                amplitude: 0.25,
            },
            FaultEvent::FlakyLink {
                from: 0,
                to: 1,
                drop_prob: 0.3,
                retransmit_latency_s: 2e-6,
            },
        ],
    };
    let config = RunConfig::default()
        .with_warmup_steps(1)
        .with_measured_steps(2)
        .with_repetitions(1)
        .with_trace(false)
        .with_faults(plan);
    let spec = RunSpec::new("tealeaf", WorkloadClass::Tiny, 8);

    let dirs = [scratch_dir("a"), scratch_dir("b")];
    let mut blobs = Vec::new();
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
        let exec = Executor::new(
            config.clone(),
            ExecConfig::default()
                .with_jobs(1)
                .with_cache_dir(dir.clone()),
        );
        exec.run_one(&cluster, &spec).expect("faulty run completes");
        blobs.push(only_entry(dir));
    }
    assert_eq!(
        blobs[0], blobs[1],
        "same (plan, seed) must serialize byte-identically"
    );

    // A fresh executor over the first store replays from disk.
    let warm = Executor::new(
        config,
        ExecConfig::default()
            .with_jobs(1)
            .with_cache_dir(dirs[0].clone()),
    );
    let r = warm.run_one(&cluster, &spec).expect("warm replay");
    assert_eq!(warm.metrics().runs_executed, 0, "replay must not simulate");
    assert!(r.profile.totals().fault_stall_s > 0.0 || r.runtime_s > 0.0);
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
