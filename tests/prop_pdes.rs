//! Property-style tests of the parallel (PDES) engine path: the
//! partitioned scheduler must reproduce the sequential engine **bit
//! for bit** at every thread count — same golden fingerprints, same
//! fault-plan outcomes, same error payloads on crash and deadlock.
//!
//! The generators and fingerprints are duplicated from
//! `prop_engine.rs` / `prop_faults.rs` (each property suite is
//! self-contained by convention), and the `GOLDEN` vector below is the
//! same pinned set the sequential scheduler is held to.

use spechpc::kernels::common::rng::Rng;
use spechpc::machine::presets;
use spechpc::simmpi::engine::{Engine, SimConfig, SimError, SimResult};
use spechpc::simmpi::faults::{FaultEvent, FaultPlan, RankSet};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::{Op, Program};

/// FNV-1a accumulation over raw bytes.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Bit-exact digest of everything `SimResult` promises to keep stable
/// (identical to the one in `prop_engine.rs`, fault stall excluded).
fn fingerprint(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for t in &r.finish_times {
        fnv(&mut h, &t.to_bits().to_le_bytes());
    }
    for row in &r.per_rank_breakdown {
        for v in row {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    fnv(&mut h, &r.p2p_bytes.to_le_bytes());
    fnv(&mut h, &r.internode_bytes.to_le_bytes());
    let p = &r.profile;
    fnv(&mut h, &(p.nranks as u64).to_le_bytes());
    for ph in &p.per_rank {
        for v in [
            ph.compute_s,
            ph.eager_send_s,
            ph.rendezvous_stall_s,
            ph.recv_wait_s,
            ph.collective_wait_s,
        ] {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    for hist in [&p.eager_hist, &p.rendezvous_hist] {
        for b in hist.iter() {
            fnv(&mut h, &b.count.to_le_bytes());
            fnv(&mut h, &b.bytes.to_le_bytes());
        }
    }
    for v in &p.comm_matrix {
        fnv(&mut h, &v.to_le_bytes());
    }
    for rank in 0..r.timeline.nranks {
        for e in r.timeline.rank_events(rank) {
            fnv(&mut h, &(e.rank as u64).to_le_bytes());
            fnv(&mut h, &e.start.to_bits().to_le_bytes());
            fnv(&mut h, &e.end.to_bits().to_le_bytes());
            fnv(&mut h, &[e.kind.glyph() as u8]);
        }
    }
    h
}

/// Fault-aware digest (identical to the one in `prop_faults.rs`):
/// includes the injected `fault_stall_s` phase.
fn fault_fingerprint(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for t in &r.finish_times {
        fnv(&mut h, &t.to_bits().to_le_bytes());
    }
    for row in &r.per_rank_breakdown {
        for v in row {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    fnv(&mut h, &r.p2p_bytes.to_le_bytes());
    fnv(&mut h, &r.internode_bytes.to_le_bytes());
    for ph in &r.profile.per_rank {
        for v in [
            ph.compute_s,
            ph.eager_send_s,
            ph.rendezvous_stall_s,
            ph.recv_wait_s,
            ph.collective_wait_s,
            ph.fault_stall_s,
        ] {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    h
}

/// Randomized deadlock-free workload mixing every scheduling shape the
/// engine supports (duplicated from `prop_engine.rs` — the golden
/// vectors depend on this exact generator).
fn mixed_programs(rng: &mut Rng, nranks: usize, steps: usize) -> Vec<Program> {
    let mut progs: Vec<Program> = (0..nranks).map(|_| Program::new()).collect();
    for step in 0..steps {
        let tag = step as u32;
        for (r, p) in progs.iter_mut().enumerate() {
            let skew = rng.range(0.0, 2.0) * 1e-4 * ((r % 7) + 1) as f64;
            p.push(Op::compute(skew));
        }
        let next = |r: usize| (r + 1) % nranks;
        let prev = |r: usize| (r + nranks - 1) % nranks;
        match rng.range(0.0, 5.0) as usize {
            0 if nranks > 1 => {
                let bytes = rng.range(1.0, 300_000.0) as usize;
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::sendrecv(next(r), bytes, prev(r), tag));
                }
            }
            1 if nranks > 1 => {
                let bytes = rng.range(0.0, 16_384.0) as usize;
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::send(next(r), tag, bytes));
                }
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::recv(prev(r), tag));
                }
            }
            2 if nranks > 1 => {
                let bytes = rng.range(1.0, 500_000.0) as usize;
                let reorder = rng.next_f64() < 0.5;
                for (r, p) in progs.iter_mut().enumerate() {
                    p.push(Op::irecv(prev(r), tag, 0));
                    p.push(Op::isend(next(r), tag, bytes, 1));
                    p.push(Op::compute(1e-4));
                    let (first, second) = if reorder { (1, 0) } else { (0, 1) };
                    p.push(Op::wait(first));
                    p.push(Op::wait(second));
                }
            }
            3 => {
                let bytes = rng.range(1.0, 100_000.0) as usize;
                let root = rng.range(0.0, nranks as f64) as usize % nranks;
                let op = match rng.range(0.0, 6.0) as usize {
                    0 => Op::allreduce(bytes),
                    1 => Op::Barrier,
                    2 => Op::bcast(root, bytes),
                    3 => Op::reduce(root, bytes),
                    4 => Op::allgather(bytes.min(4096)),
                    _ => Op::alltoall(bytes.min(2048)),
                };
                for p in &mut progs {
                    p.push(op);
                }
            }
            _ => {} // compute-only step
        }
    }
    progs
}

/// Ring workload (duplicated from `prop_faults.rs`).
fn ring_programs(
    nranks: usize,
    steps: usize,
    compute_ms: &[u8],
    msg_bytes: usize,
    collective: bool,
) -> Vec<Program> {
    (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            for s in 0..steps {
                let c = compute_ms[(r * steps + s) % compute_ms.len()] as f64 * 1e-4;
                p.push(Op::compute(c));
                if nranks > 1 {
                    p.push(Op::sendrecv(
                        (r + 1) % nranks,
                        msg_bytes,
                        (r + nranks - 1) % nranks,
                        s as u32,
                    ));
                }
                if collective {
                    p.push(Op::allreduce(64));
                }
            }
            p
        })
        .collect()
}

/// Random non-crash degradation plan (duplicated from
/// `prop_faults.rs`).
fn degradation_plan(rng: &mut Rng, nranks: usize, seed: u64) -> FaultPlan {
    let mut events = Vec::new();
    let n_events = 1 + rng.range(0.0, 4.0) as usize;
    for _ in 0..n_events {
        let rank = rng.range(0.0, nranks as f64) as usize % nranks;
        events.push(match rng.range(0.0, 4.0) as usize {
            0 => FaultEvent::OsNoise {
                ranks: RankSet::All,
                amplitude: rng.range(0.01, 0.8),
            },
            1 => FaultEvent::Straggler {
                rank,
                slowdown: rng.range(1.0, 4.0),
            },
            2 => FaultEvent::FlakyLink {
                from: rank,
                to: (rank + 1) % nranks,
                drop_prob: rng.range(0.0, 0.9),
                retransmit_latency_s: rng.range(0.0, 1e-4),
            },
            _ => FaultEvent::Throttle {
                ranks: RankSet::One(rank),
                t_start_s: rng.range(0.0, 1e-3),
                t_end_s: rng.range(1e-3, 1.0),
                slowdown: rng.range(1.0, 3.0),
            },
        });
    }
    let plan = FaultPlan { seed, events };
    plan.validate().expect("generated plan must be valid");
    plan
}

/// Run one golden case at `threads` (the generator is byte-identical
/// to `prop_engine.rs`'s `golden_case`, plus the thread knob).
fn golden_case(seed: u64, threads: usize) -> u64 {
    let mut rng = Rng::seed_from_u64(seed);
    let nranks = 2 + rng.range(0.0, 30.0) as usize;
    let steps = 1 + rng.range(0.0, 7.0) as usize;
    let trace = rng.next_f64() < 0.3;
    let profile = rng.next_f64() < 0.8;
    let progs = mixed_programs(&mut rng, nranks, steps);
    let cluster = presets::cluster_a();
    let net = NetModel::compact(&cluster, nranks);
    let r = Engine::new(
        SimConfig::default()
            .with_trace(trace)
            .with_profile(profile)
            .with_threads(threads),
        net,
        progs,
    )
    .run()
    .expect("well-formed golden case must not deadlock");
    fingerprint(&r)
}

/// Pinned from the pre-rewrite polling engine — the same constants
/// `prop_engine.rs` holds the sequential scheduler to.
const GOLDEN: [u64; 24] = [
    0xf8e02a51d3285e96,
    0x559334651cc55837,
    0x7495f6a1630b87cc,
    0xed1ec5837bb154dd,
    0x12c59472c6e04af5,
    0xb44f49ade1b87109,
    0x33e8028dad38434d,
    0xe53ae00f0a76c644,
    0xd766250d1eefe3f7,
    0xde02b3f345b4429b,
    0x542225f392ce9fd3,
    0x8e8644a9152f56a3,
    0x18a411296cf15c63,
    0x74a2413a439edf0e,
    0x16f6c6769f1d97cf,
    0x2e0a063f010ac896,
    0xf70efac7f0e27013,
    0x57786eb26675187e,
    0x6e7be5479ebc7e98,
    0x409f4fc51b671387,
    0x1c5f04ce967e1ea3,
    0x2e8d1ced7e25bc79,
    0xb658fce9a578dc43,
    0xe6076a4057ad3bf9,
];

/// Every thread count reproduces all 24 golden fingerprints bit for
/// bit — the PDES scheduler cannot be told apart from the sequential
/// one by any contracted output.
#[test]
fn parallel_matches_golden_vectors_at_every_thread_count() {
    for threads in [2usize, 4, 8] {
        for (i, want) in GOLDEN.iter().enumerate() {
            let got = golden_case(0xD00D + i as u64, threads);
            assert_eq!(
                got, *want,
                "case {i} at {threads} threads: 0x{got:016x} != 0x{want:016x}"
            );
        }
    }
}

/// `threads == 0` clamps to the sequential path, and thread counts far
/// above the rank count clamp down instead of spawning idle workers.
#[test]
fn degenerate_thread_counts_clamp() {
    for threads in [0usize, 64] {
        let got = golden_case(0xD00D, threads);
        assert_eq!(got, GOLDEN[0], "threads={threads}");
    }
}

/// Non-crash fault plans (noise, stragglers, flaky links, throttling)
/// produce bit-identical results in parallel: the flaky-link RNG draws
/// hang off the shared request-arena numbering, so even randomized
/// retransmits cannot diverge across partitions.
#[test]
fn fault_plans_are_bit_identical_across_thread_counts() {
    let mut rng = Rng::seed_from_u64(0xFA02);
    for i in 0..12 {
        let nranks = 2 + rng.range(0.0, 12.0) as usize;
        let steps = 1 + rng.range(0.0, 4.0) as usize;
        let plan = degradation_plan(&mut rng, nranks, 0x5EED + i);
        let progs = ring_programs(nranks, steps, &[2, 5, 13], 32_768, false);
        let cluster = presets::cluster_a();
        let run = |threads: usize| {
            let net = NetModel::compact(&cluster, nranks);
            Engine::new(
                SimConfig::default()
                    .with_faults(plan.clone())
                    .with_threads(threads),
                net,
                progs.clone(),
            )
            .run()
            .expect("no crash events")
        };
        let seq = fault_fingerprint(&run(1));
        for threads in [2usize, 4] {
            assert_eq!(
                seq,
                fault_fingerprint(&run(threads)),
                "case {i} diverged at {threads} threads"
            );
        }
    }
}

/// A single injected crash aborts the parallel run with *exactly* the
/// sequential error payload: same rank, same op index, same time.
#[test]
fn crash_blame_matches_sequential() {
    let mut rng = Rng::seed_from_u64(0xFA01);
    let mut crashes_seen = 0;
    for _ in 0..16 {
        let nranks = 2 + rng.range(0.0, 16.0) as usize;
        let steps = 1 + rng.range(0.0, 5.0) as usize;
        let victim = rng.range(0.0, nranks as f64) as usize % nranks;
        let at_s = rng.range(0.0, 2e-3);
        let plan = FaultPlan {
            seed: 1,
            events: vec![FaultEvent::Crash { rank: victim, at_s }],
        };
        let progs = ring_programs(nranks, steps, &[3, 7, 11], 4096, true);
        let cluster = presets::cluster_a();
        let run = |threads: usize| {
            let net = NetModel::compact(&cluster, nranks);
            Engine::new(
                SimConfig::default()
                    .with_faults(plan.clone())
                    .with_threads(threads),
                net,
                progs.clone(),
            )
            .run()
        };
        let seq = run(1);
        for threads in [2usize, 4] {
            let par = run(threads);
            match (&seq, &par) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(fault_fingerprint(a), fault_fingerprint(b));
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{threads} threads"),
                _ => {
                    panic!("sequential and {threads}-thread outcomes disagree: {seq:?} vs {par:?}")
                }
            }
        }
        if seq.is_err() {
            crashes_seen += 1;
        }
    }
    assert!(crashes_seen > 0, "no sampled crash ever fired");
}

/// A deadlock that spans every partition — an 8-rank ring of blocking
/// rendezvous sends with no receives, run at 4 threads so the cycle
/// crosses partition boundaries — reports the *full* blame cycle, and
/// the payload (rank, op index, op) equals the sequential engine's.
#[test]
fn cross_partition_deadlock_reports_the_full_cycle() {
    let nranks = 8;
    let progs: Vec<Program> = (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            p.push(Op::compute(1e-5 * (r + 1) as f64));
            // Rendezvous-sized payload: the send blocks until a recv
            // matches, and no rank ever posts one.
            p.push(Op::send((r + 1) % nranks, 0, 1 << 20));
            p
        })
        .collect();
    let cluster = presets::cluster_a();
    let run = |threads: usize| {
        let net = NetModel::compact(&cluster, nranks);
        Engine::new(
            SimConfig::default().with_threads(threads),
            net,
            progs.clone(),
        )
        .run()
    };
    let Err(SimError::Deadlock(seq)) = run(1) else {
        panic!("sequential run must deadlock");
    };
    assert_eq!(
        seq.iter().map(|(r, _, _)| *r).collect::<Vec<_>>(),
        (0..nranks).collect::<Vec<_>>(),
        "the whole ring is blocked"
    );
    for threads in [2usize, 4, 8] {
        let Err(SimError::Deadlock(par)) = run(threads) else {
            panic!("{threads}-thread run must deadlock");
        };
        assert_eq!(par, seq, "{threads}-thread blame cycle diverged");
    }
}

/// Collective sequence mismatches blame the same canonical rank in
/// parallel as in sequence, regardless of which partition trips first.
#[test]
fn collective_mismatch_blame_matches_sequential() {
    let nranks = 6;
    let progs: Vec<Program> = (0..nranks)
        .map(|r| {
            let mut p = Program::new();
            p.push(Op::compute(1e-5));
            // Ranks 0..3 enter an allreduce; 4 and 5 enter a barrier.
            if r < 4 {
                p.push(Op::allreduce(64));
            } else {
                p.push(Op::Barrier);
            }
            p
        })
        .collect();
    let cluster = presets::cluster_a();
    let run = |threads: usize| {
        let net = NetModel::compact(&cluster, nranks);
        Engine::new(
            SimConfig::default().with_threads(threads),
            net,
            progs.clone(),
        )
        .run()
    };
    let seq = run(1).expect_err("mismatched collectives must fail");
    assert!(
        matches!(seq, SimError::CollectiveMismatch { .. }),
        "{seq:?}"
    );
    for threads in [2usize, 3, 6] {
        assert_eq!(
            run(threads).expect_err("must fail"),
            seq,
            "{threads} threads"
        );
    }
}
