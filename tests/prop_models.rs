//! Property-style tests of the analytic models: bandwidth saturation,
//! pinning, the node performance model, power/energy identities, and
//! the decomposition helpers.
//!
//! Parameter points are sampled with the in-tree deterministic RNG
//! (fixed seeds), so each test exercises the same reproducible sweep on
//! every run.

use spechpc::kernels::common::model::NodeModel;
use spechpc::kernels::common::rng::Rng;
use spechpc::kernels::{block_range, factor_2d, factor_3d, Grid2d, WorkloadSignature};
use spechpc::machine::affinity::{Pinning, PinningPolicy};
use spechpc::machine::memory::SaturationCurve;
use spechpc::machine::presets;
use spechpc::power::energy::energy_to_solution;
use spechpc::power::rapl::JobPower;
use spechpc::prelude::WorkloadClass;

/// Draw a random (but always valid) workload signature.
fn draw_signature(rng: &mut Rng) -> WorkloadSignature {
    let mem = 10f64.powf(rng.range(8.0, 13.0));
    WorkloadSignature {
        flops: 10f64.powf(rng.range(9.0, 14.0)),
        simd_fraction: rng.next_f64(),
        core_efficiency: rng.range(0.05, 1.0),
        mem_bytes: mem,
        mem_bytes_per_rank: rng.range(0.0, 1e9),
        l2_bytes: mem * 1.5,
        l3_bytes: mem * 1.2,
        working_set_bytes: 10f64.powf(rng.range(8.0, 12.0)),
        cache_exponent: rng.range(0.5, 4.0),
        replicated_fraction: rng.next_f64(),
        heat: rng.next_f64(),
        steps: 10,
    }
}

/// Saturation curves are monotone and bounded by the plateau.
#[test]
fn saturation_monotone_bounded() {
    let mut rng = Rng::seed_from_u64(0xA1);
    for _ in 0..64 {
        let single = rng.range(1.0, 50.0);
        let headroom = rng.range(1.1, 20.0);
        let n = rng.range(0.0, 64.0) as usize;
        let c = SaturationCurve {
            single_core: single,
            plateau: single * headroom,
        };
        let bw_n = c.bandwidth(n);
        let bw_n1 = c.bandwidth(n + 1);
        assert!(bw_n1 >= bw_n - 1e-12);
        assert!(bw_n1 <= c.plateau + 1e-9);
    }
}

/// Compact and scatter pinning partition ranks over distinct cores, and
/// the per-domain active counts sum to the rank count.
#[test]
fn pinning_partitions() {
    let cluster = presets::cluster_a();
    let mut rng = Rng::seed_from_u64(0xA2);
    for case in 0..64 {
        let nranks = 1 + rng.range(0.0, cluster.total_cores() as f64) as usize;
        let policy = if case % 2 == 0 {
            PinningPolicy::Scatter
        } else {
            PinningPolicy::Compact
        };
        let p = Pinning::new(&cluster, nranks, policy);
        let mut seen = std::collections::HashSet::new();
        for pl in &p.placements {
            assert!(seen.insert((pl.node, pl.core)), "double booking");
        }
        let total: usize = p
            .active_per_domain(cluster.node.numa_domains())
            .iter()
            .flatten()
            .sum();
        assert_eq!(total, nranks);
    }
}

/// The node model returns finite, non-negative per-rank times with
/// utilization in [0, 1], and never inflates memory traffic beyond the
/// nominal total (the victim L3 absorbs whatever was dropped).
#[test]
fn node_model_sanity() {
    let cluster = presets::cluster_b();
    let mut rng = Rng::seed_from_u64(0xA3);
    for _ in 0..64 {
        let sig = draw_signature(&mut rng);
        let nranks = (1 + rng.range(0.0, 207.0) as usize).min(cluster.total_cores());
        let model = NodeModel::new(&cluster, nranks);
        let ct = model.compute_times(&sig, &[]);
        assert_eq!(ct.per_rank.len(), nranks);
        for (i, &t) in ct.per_rank.iter().enumerate() {
            assert!(t.is_finite() && t >= 0.0, "rank {i} time {t}");
            assert!((0.0..=1.0).contains(&ct.utilization[i]));
        }
        let nominal = sig.mem_bytes + sig.mem_bytes_per_rank * nranks as f64;
        assert!(ct.effective_mem_bytes <= nominal * (1.0 + 1e-9));
        assert!(ct.effective_l3_bytes >= sig.l3_bytes - 1e-9);
    }
}

/// Strong scaling in the model: the slowest rank's compute time never
/// grows when adding ranks (penalty-free, fixed problem size).
#[test]
fn node_model_monotone_scaling() {
    let cluster = presets::cluster_a();
    let mut rng = Rng::seed_from_u64(0xA4);
    for _ in 0..64 {
        // Per-rank replicated traffic breaks strong scaling by design
        // (soma!); restrict to distributed workloads here.
        let mut sig = draw_signature(&mut rng);
        sig.mem_bytes_per_rank = 0.0;
        sig.replicated_fraction = 0.0;
        let t: Vec<f64> = [1usize, 2, 4, 9, 18, 36, 72]
            .iter()
            .map(|&n| {
                NodeModel::new(&cluster, n)
                    .compute_times(&sig, &[])
                    .max_seconds()
            })
            .collect();
        for w in t.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "scaling reversed: {t:?}");
        }
    }
}

/// Energy identities: total = cpu + dram; EDP = E·t; scaling time
/// scales energy linearly.
#[test]
fn energy_identities() {
    let mut rng = Rng::seed_from_u64(0xA5);
    for _ in 0..64 {
        let pkg = rng.range(0.0, 2000.0);
        let dram = rng.range(0.0, 500.0);
        let t = rng.range(0.0, 1e5);
        let p = JobPower {
            package_w: pkg,
            dram_w: dram,
        };
        let e = energy_to_solution(p, t);
        assert!((e.total_j() - (pkg + dram) * t).abs() < 1e-6 * e.total_j().max(1.0));
        assert!((e.edp() - e.total_j() * t).abs() < 1e-6 * e.edp().max(1.0));
        let e2 = energy_to_solution(p, 2.0 * t);
        assert!((e2.total_j() - 2.0 * e.total_j()).abs() < 1e-6 * e2.total_j().max(1.0));
    }
}

/// block_range partitions exactly, with sizes differing by at most 1.
#[test]
fn block_range_partitions() {
    let mut rng = Rng::seed_from_u64(0xA6);
    for _ in 0..64 {
        let n = 1 + rng.range(0.0, 99_999.0) as usize;
        let p = 1 + rng.range(0.0, 511.0) as usize;
        let mut next = 0;
        let mut min = usize::MAX;
        let mut max = 0;
        for i in 0..p {
            let (lo, hi) = block_range(n, p, i);
            assert_eq!(lo, next);
            next = hi;
            let len = hi - lo;
            min = min.min(len);
            max = max.max(len);
        }
        assert_eq!(next, n);
        assert!(max - min <= 1);
    }
}

/// factor_2d/3d factorizations multiply back and are ordered.
#[test]
fn factorizations() {
    let mut rng = Rng::seed_from_u64(0xA7);
    for case in 0..64 {
        // Always include the small corner cases in the sweep.
        let p = if case < 8 {
            case + 1
        } else {
            1 + rng.range(0.0, 4999.0) as usize
        };
        let (a, b) = factor_2d(p);
        assert_eq!(a * b, p);
        assert!(a <= b);
        let (x, y, z) = factor_3d(p);
        assert_eq!(x * y * z, p);
        assert!(x <= y && y <= z);
    }
}

/// Grid2d tiles cover the domain exactly for arbitrary shapes.
#[test]
fn grid2d_covers() {
    let mut rng = Rng::seed_from_u64(0xA8);
    for _ in 0..64 {
        let nx = 1 + rng.range(0.0, 299.0) as usize;
        let ny = 1 + rng.range(0.0, 299.0) as usize;
        let p = (1 + rng.range(0.0, 63.0) as usize).min(nx * ny);
        let g = Grid2d::new(nx, ny, p);
        let mut count = 0usize;
        for r in 0..g.nranks() {
            let (x0, x1, y0, y1) = g.tile(r);
            assert!(x1 <= nx && y1 <= ny);
            count += (x1 - x0) * (y1 - y0);
        }
        assert_eq!(count, nx * ny);
    }
}

/// Every benchmark's signature validates for every workload class.
#[test]
fn signatures_always_validate() {
    let classes = [
        WorkloadClass::Test,
        WorkloadClass::Tiny,
        WorkloadClass::Small,
        WorkloadClass::Medium,
        WorkloadClass::Large,
    ];
    for b in spechpc::kernels::all_benchmarks() {
        for class in classes {
            let sig = b.signature(class);
            assert!(
                sig.validate().is_ok(),
                "{} @ {class:?}: {:?}",
                b.meta().name,
                sig.validate()
            );
        }
    }
}
