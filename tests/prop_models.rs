//! Property-based tests of the analytic models: bandwidth saturation,
//! pinning, the node performance model, power/energy identities, and
//! the decomposition helpers.

use proptest::prelude::*;
use spechpc::kernels::common::model::NodeModel;
use spechpc::kernels::{block_range, factor_2d, factor_3d, Grid2d, WorkloadSignature};
use spechpc::machine::affinity::{Pinning, PinningPolicy};
use spechpc::machine::memory::SaturationCurve;
use spechpc::machine::presets;
use spechpc::power::energy::energy_to_solution;
use spechpc::power::rapl::JobPower;
use spechpc::prelude::WorkloadClass;

fn arb_signature() -> impl Strategy<Value = WorkloadSignature> {
    (
        1e9..1e14f64,          // flops
        0.0..=1.0f64,          // simd
        0.05..=1.0f64,         // core_efficiency
        1e8..1e13f64,          // mem bytes
        0.0..1e9f64,           // per-rank bytes
        1e8..1e12f64,          // working set
        0.5..4.0f64,           // cache exponent
        0.0..=1.0f64,          // replicated fraction
        0.0..=1.0f64,          // heat
    )
        .prop_map(
            |(flops, simd, eff, mem, per_rank, ws, gamma, repl, heat)| WorkloadSignature {
                flops,
                simd_fraction: simd,
                core_efficiency: eff,
                mem_bytes: mem,
                mem_bytes_per_rank: per_rank,
                l2_bytes: mem * 1.5,
                l3_bytes: mem * 1.2,
                working_set_bytes: ws,
                cache_exponent: gamma,
                replicated_fraction: repl,
                heat,
                steps: 10,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Saturation curves are monotone and bounded by the plateau.
    #[test]
    fn saturation_monotone_bounded(
        single in 1.0..50.0f64,
        headroom in 1.1..20.0f64,
        n in 0usize..64,
    ) {
        let c = SaturationCurve { single_core: single, plateau: single * headroom };
        let bw_n = c.bandwidth(n);
        let bw_n1 = c.bandwidth(n + 1);
        prop_assert!(bw_n1 >= bw_n - 1e-12);
        prop_assert!(bw_n1 <= c.plateau + 1e-9);
    }

    /// Compact pinning partitions ranks over distinct cores, and the
    /// per-domain active counts sum to the rank count.
    #[test]
    fn pinning_partitions(nranks in 1usize..2304, scatter in any::<bool>()) {
        let cluster = presets::cluster_a();
        prop_assume!(nranks <= cluster.total_cores());
        let policy = if scatter { PinningPolicy::Scatter } else { PinningPolicy::Compact };
        let p = Pinning::new(&cluster, nranks, policy);
        let mut seen = std::collections::HashSet::new();
        for pl in &p.placements {
            prop_assert!(seen.insert((pl.node, pl.core)), "double booking");
        }
        let total: usize = p
            .active_per_domain(cluster.node.numa_domains())
            .iter()
            .flatten()
            .sum();
        prop_assert_eq!(total, nranks);
    }

    /// The node model: more ranks never increase the aggregate-work
    /// critical path by more than the penalty-free single-rank time,
    /// and utilization stays in [0, 1].
    #[test]
    fn node_model_sanity(sig in arb_signature(), nranks in 1usize..208) {
        let cluster = presets::cluster_b();
        prop_assume!(nranks <= cluster.total_cores());
        let model = NodeModel::new(&cluster, nranks);
        let ct = model.compute_times(&sig, &[]);
        prop_assert_eq!(ct.per_rank.len(), nranks);
        for (i, &t) in ct.per_rank.iter().enumerate() {
            prop_assert!(t.is_finite() && t >= 0.0, "rank {i} time {t}");
            prop_assert!((0.0..=1.0).contains(&ct.utilization[i]));
        }
        // Effective traffic never exceeds nominal (+ per-rank terms).
        let nominal = sig.mem_bytes + sig.mem_bytes_per_rank * nranks as f64;
        prop_assert!(ct.effective_mem_bytes <= nominal * (1.0 + 1e-9));
        // The victim L3 absorbs whatever memory traffic was dropped.
        prop_assert!(ct.effective_l3_bytes >= sig.l3_bytes - 1e-9);
    }

    /// Strong scaling in the model: the slowest rank's compute time
    /// never grows when adding ranks (penalty-free, fixed problem).
    #[test]
    fn node_model_monotone_scaling(sig in arb_signature()) {
        // Per-rank replicated traffic breaks strong scaling by design
        // (soma!); restrict to distributed workloads here.
        let mut sig = sig;
        sig.mem_bytes_per_rank = 0.0;
        sig.replicated_fraction = 0.0;
        let cluster = presets::cluster_a();
        let t: Vec<f64> = [1usize, 2, 4, 9, 18, 36, 72]
            .iter()
            .map(|&n| NodeModel::new(&cluster, n).compute_times(&sig, &[]).max_seconds())
            .collect();
        for w in t.windows(2) {
            prop_assert!(w[1] <= w[0] * 1.001, "scaling reversed: {:?}", t);
        }
    }

    /// Energy identities: total = cpu + dram; EDP = E·t; scaling time
    /// scales energy linearly.
    #[test]
    fn energy_identities(pkg in 0.0..2000.0f64, dram in 0.0..500.0f64, t in 0.0..1e5f64) {
        let p = JobPower { package_w: pkg, dram_w: dram };
        let e = energy_to_solution(p, t);
        prop_assert!((e.total_j() - (pkg + dram) * t).abs() < 1e-6 * e.total_j().max(1.0));
        prop_assert!((e.edp() - e.total_j() * t).abs() < 1e-6 * e.edp().max(1.0));
        let e2 = energy_to_solution(p, 2.0 * t);
        prop_assert!((e2.total_j() - 2.0 * e.total_j()).abs() < 1e-6 * e2.total_j().max(1.0));
    }

    /// block_range partitions exactly, with sizes differing by ≤ 1.
    #[test]
    fn block_range_partitions(n in 1usize..100_000, p in 1usize..512) {
        let mut next = 0;
        let mut min = usize::MAX;
        let mut max = 0;
        for i in 0..p {
            let (lo, hi) = block_range(n, p, i);
            prop_assert_eq!(lo, next);
            next = hi;
            let len = hi - lo;
            min = min.min(len);
            max = max.max(len);
        }
        prop_assert_eq!(next, n);
        prop_assert!(max - min <= 1);
    }

    /// factor_2d/3d factorizations multiply back and are ordered.
    #[test]
    fn factorizations(p in 1usize..5000) {
        let (a, b) = factor_2d(p);
        prop_assert_eq!(a * b, p);
        prop_assert!(a <= b);
        let (x, y, z) = factor_3d(p);
        prop_assert_eq!(x * y * z, p);
        prop_assert!(x <= y && y <= z);
    }

    /// Grid2d tiles cover the domain exactly for arbitrary shapes.
    #[test]
    fn grid2d_covers(nx in 1usize..300, ny in 1usize..300, p in 1usize..64) {
        prop_assume!(p <= nx * ny);
        let g = Grid2d::new(nx, ny, p);
        let mut count = 0usize;
        for r in 0..g.nranks() {
            let (x0, x1, y0, y1) = g.tile(r);
            prop_assert!(x1 <= nx && y1 <= ny);
            count += (x1 - x0) * (y1 - y0);
        }
        prop_assert_eq!(count, nx * ny);
    }

    /// Every benchmark's signature validates for every workload class.
    #[test]
    fn signatures_always_validate(idx in 0usize..9, class_idx in 0usize..5) {
        let classes = [
            WorkloadClass::Test,
            WorkloadClass::Tiny,
            WorkloadClass::Small,
            WorkloadClass::Medium,
            WorkloadClass::Large,
        ];
        let b = &spechpc::kernels::all_benchmarks()[idx];
        let sig = b.signature(classes[class_idx]);
        prop_assert!(sig.validate().is_ok());
    }
}
