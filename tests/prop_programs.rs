//! Property tests over the benchmarks' generated MPI programs: for any
//! rank count, every benchmark must produce programs that validate,
//! agree on the collective sequence across ranks, respect the node
//! model's compute budget, and replay deadlock-free in the engine.

use proptest::prelude::*;
use spechpc::kernels::common::model::NodeModel;
use spechpc::prelude::*;
use spechpc::simmpi::engine::{Engine, SimConfig};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::Op;

/// The collective fingerprint of a program: the ordered list of
/// collective op variants (every rank must match it exactly, or the
/// engine would detect a mismatch / deadlock).
fn collective_fingerprint(ops: &[Op]) -> Vec<&'static str> {
    ops.iter()
        .filter_map(|o| match o {
            Op::Allreduce { .. } => Some("allreduce"),
            Op::Barrier => Some("barrier"),
            Op::Bcast { .. } => Some("bcast"),
            Op::Reduce { .. } => Some("reduce"),
            Op::Allgather { .. } => Some("allgather"),
            Op::Alltoall { .. } => Some("alltoall"),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Structural properties of the step programs for every benchmark
    /// at arbitrary rank counts on both clusters.
    #[test]
    fn step_programs_are_well_formed(
        bench_idx in 0usize..9,
        nranks in 1usize..160,
        cluster_b in any::<bool>(),
    ) {
        let cluster = if cluster_b {
            presets::cluster_b()
        } else {
            presets::cluster_a()
        };
        prop_assume!(nranks <= cluster.total_cores());
        let bench = &all_benchmarks()[bench_idx];
        let sig = bench.signature(WorkloadClass::Tiny);
        let model = NodeModel::new(&cluster, nranks);
        let penalties = bench.penalties(WorkloadClass::Tiny, nranks);
        let ct = model.compute_times(&sig, &penalties);
        let progs = bench.step_programs(WorkloadClass::Tiny, &ct);

        prop_assert_eq!(progs.len(), nranks);
        let fp0 = collective_fingerprint(&progs[0].ops);
        for (r, p) in progs.iter().enumerate() {
            p.validate()
                .map_err(|e| TestCaseError::fail(format!(
                    "{} rank {r}: {e}", bench.meta().name)))?;
            // Identical collective sequences across ranks.
            let fp = collective_fingerprint(&p.ops);
            prop_assert!(
                fp == fp0,
                "{} rank {}: collective sequence differs",
                bench.meta().name,
                r
            );
            // The program's compute budget equals the node model's
            // per-rank compute time.
            let budget = p.compute_seconds();
            prop_assert!(
                (budget - ct.per_rank[r]).abs() < 1e-9 * ct.per_rank[r].max(1e-12),
                "{} rank {r}: compute budget {budget} vs model {}",
                bench.meta().name,
                ct.per_rank[r]
            );
        }
    }

    /// The engine replays one step of every benchmark without deadlock
    /// at small, awkward rank counts (primes included), and the step
    /// time is at least the slowest rank's compute time.
    #[test]
    fn one_step_replays_deadlock_free(
        bench_idx in 0usize..9,
        nranks in prop::sample::select(vec![1usize, 2, 3, 5, 7, 9, 11, 13, 17, 18, 19, 23, 29, 36]),
    ) {
        let cluster = presets::cluster_a();
        let bench = &all_benchmarks()[bench_idx];
        let sig = bench.signature(WorkloadClass::Tiny);
        let model = NodeModel::new(&cluster, nranks);
        let ct = model.compute_times(&sig, &bench.penalties(WorkloadClass::Tiny, nranks));
        let progs = bench.step_programs(WorkloadClass::Tiny, &ct);
        let net = NetModel::compact(&cluster, nranks);
        let result = Engine::new(SimConfig { trace: false }, net, progs)
            .run()
            .map_err(|e| TestCaseError::fail(format!(
                "{} @ {nranks}: {e}", bench.meta().name)))?;
        let floor = ct.max_seconds();
        prop_assert!(
            result.makespan >= floor - 1e-12,
            "{} @ {nranks}: makespan {} below compute floor {floor}",
            bench.meta().name,
            result.makespan
        );
    }

    /// Penalty vectors are sane: empty or one entry ≥ 1 per rank.
    #[test]
    fn penalties_are_sane(bench_idx in 0usize..9, nranks in 1usize..120) {
        let bench = &all_benchmarks()[bench_idx];
        for class in [WorkloadClass::Tiny, WorkloadClass::Small] {
            let p = bench.penalties(class, nranks);
            prop_assert!(p.is_empty() || p.len() == nranks);
            for (r, &x) in p.iter().enumerate() {
                prop_assert!(x >= 1.0 && x < 3.0 && x.is_finite(),
                    "{} rank {r}: penalty {x}", bench.meta().name);
            }
        }
    }
}
