//! Property-style tests over the benchmarks' generated MPI programs:
//! for a sweep of rank counts, every benchmark must produce programs
//! that validate, agree on the collective sequence across ranks,
//! respect the node model's compute budget, and replay deadlock-free in
//! the engine.
//!
//! Rank counts are sampled with the in-tree deterministic RNG (fixed
//! seeds) plus a hand-picked set of awkward values (primes, 1), so the
//! sweep is identical on every run.

use spechpc::kernels::common::model::NodeModel;
use spechpc::kernels::common::rng::Rng;
use spechpc::prelude::*;
use spechpc::simmpi::engine::{Engine, SimConfig};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::Op;

/// The collective fingerprint of a program: the ordered list of
/// collective op variants (every rank must match it exactly, or the
/// engine would detect a mismatch / deadlock).
fn collective_fingerprint(ops: &[Op]) -> Vec<&'static str> {
    ops.iter()
        .filter_map(|o| match o {
            Op::Allreduce { .. } => Some("allreduce"),
            Op::Barrier => Some("barrier"),
            Op::Bcast { .. } => Some("bcast"),
            Op::Reduce { .. } => Some("reduce"),
            Op::Allgather { .. } => Some("allgather"),
            Op::Alltoall { .. } => Some("alltoall"),
            _ => None,
        })
        .collect()
}

/// Structural properties of the step programs for every benchmark at a
/// sweep of rank counts on both clusters.
#[test]
fn step_programs_are_well_formed() {
    let mut rng = Rng::seed_from_u64(0xB1);
    for case in 0..40 {
        let cluster = if case % 2 == 0 {
            presets::cluster_a()
        } else {
            presets::cluster_b()
        };
        let nranks = (1 + rng.range(0.0, 159.0) as usize).min(cluster.total_cores());
        for bench in all_benchmarks() {
            let sig = bench.signature(WorkloadClass::Tiny);
            let model = NodeModel::new(&cluster, nranks);
            let penalties = bench.penalties(WorkloadClass::Tiny, nranks);
            let ct = model.compute_times(&sig, &penalties);
            let progs = bench.step_programs(WorkloadClass::Tiny, &ct);

            assert_eq!(progs.len(), nranks);
            let fp0 = collective_fingerprint(&progs[0].ops);
            for (r, p) in progs.iter().enumerate() {
                if let Err(e) = p.validate() {
                    panic!("{} rank {r}: {e}", bench.meta().name);
                }
                // Identical collective sequences across ranks.
                let fp = collective_fingerprint(&p.ops);
                assert!(
                    fp == fp0,
                    "{} rank {r}: collective sequence differs",
                    bench.meta().name,
                );
                // The program's compute budget equals the node model's
                // per-rank compute time.
                let budget = p.compute_seconds();
                assert!(
                    (budget - ct.per_rank[r]).abs() < 1e-9 * ct.per_rank[r].max(1e-12),
                    "{} rank {r}: compute budget {budget} vs model {}",
                    bench.meta().name,
                    ct.per_rank[r]
                );
            }
        }
    }
}

/// The engine replays one step of every benchmark without deadlock at
/// small, awkward rank counts (primes included), and the step time is
/// at least the slowest rank's compute time.
#[test]
fn one_step_replays_deadlock_free() {
    let cluster = presets::cluster_a();
    for nranks in [1usize, 2, 3, 5, 7, 9, 11, 13, 17, 18, 19, 23, 29, 36] {
        for bench in all_benchmarks() {
            let sig = bench.signature(WorkloadClass::Tiny);
            let model = NodeModel::new(&cluster, nranks);
            let ct = model.compute_times(&sig, &bench.penalties(WorkloadClass::Tiny, nranks));
            let progs = bench.step_programs(WorkloadClass::Tiny, &ct);
            let net = NetModel::compact(&cluster, nranks);
            let result = match Engine::new(SimConfig::default(), net, progs).run() {
                Ok(r) => r,
                Err(e) => panic!("{} @ {nranks}: {e}", bench.meta().name),
            };
            let floor = ct.max_seconds();
            assert!(
                result.makespan >= floor - 1e-12,
                "{} @ {nranks}: makespan {} below compute floor {floor}",
                bench.meta().name,
                result.makespan
            );
        }
    }
}

/// Penalty vectors are sane: empty or one entry ≥ 1 per rank.
#[test]
fn penalties_are_sane() {
    let mut rng = Rng::seed_from_u64(0xB3);
    for _ in 0..40 {
        let nranks = 1 + rng.range(0.0, 119.0) as usize;
        for bench in all_benchmarks() {
            for class in [WorkloadClass::Tiny, WorkloadClass::Small] {
                let p = bench.penalties(class, nranks);
                assert!(p.is_empty() || p.len() == nranks);
                for (r, &x) in p.iter().enumerate() {
                    assert!(
                        (1.0..3.0).contains(&x) && x.is_finite(),
                        "{} rank {r}: penalty {x}",
                        bench.meta().name
                    );
                }
            }
        }
    }
}
