//! End-to-end tests of the chaos fabric: the seeded fault-injecting
//! proxy (`spechpc chaos`) spliced between a real coordinator and real
//! worker daemons. The invariants under test: injury schedules are a
//! pure function of `(plan, seed, connection)` so runs replay
//! bit-identically; a clean plan is byte-invisible; and no matter what
//! the wire does, a client of the fleet sees either the exact bytes a
//! healthy daemon would have sent or a typed JSON error — never a
//! corrupt body, never an unbounded hang.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spechpc::harness::chaos::{
    load_chaos_plan, parse_chaos_plan, ChaosPlan, ChaosProxy, ChaosShutdownHandle,
};
use spechpc::harness::fleet::{Coordinator, FleetConfig, FleetShutdownHandle};
use spechpc::prelude::*;

/// A small resident executor: in-memory cache, few workers.
fn executor() -> Executor {
    Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2),
    )
}

/// Bind + spawn one worker daemon.
fn spawn_worker() -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<io::Result<()>>,
) {
    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(4)
        .with_log_requests(false);
    let server = Server::bind(executor(), cfg).expect("bind worker");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

/// Bind + spawn one chaos proxy injuring traffic towards `upstream`.
fn spawn_proxy(
    plan: ChaosPlan,
    upstream: String,
) -> (
    SocketAddr,
    ChaosShutdownHandle,
    std::thread::JoinHandle<io::Result<()>>,
) {
    let proxy = ChaosProxy::bind(plan, "127.0.0.1:0", upstream).expect("bind proxy");
    let addr = proxy.local_addr().expect("bound address");
    let handle = proxy.shutdown_handle();
    let join = std::thread::spawn(move || proxy.serve());
    (addr, handle, join)
}

/// Bind + spawn a coordinator over `workers`.
fn spawn_coordinator(
    workers: Vec<String>,
    probe_interval_s: f64,
) -> (
    SocketAddr,
    FleetShutdownHandle,
    std::thread::JoinHandle<io::Result<()>>,
) {
    let cfg = FleetConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(workers)
        .with_probe_interval_s(probe_interval_s);
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");
    let addr = coordinator.local_addr().expect("bound address");
    let handle = coordinator.shutdown_handle();
    let join = std::thread::spawn(move || coordinator.serve());
    (addr, handle, join)
}

/// One HTTP exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {text:?}"));
    let body = match text.find("\r\n\r\n") {
        Some(pos) => text[pos + 4..].to_string(),
        None => String::new(),
    };
    (status, body)
}

/// Extract an unsigned counter from a flat JSON body regardless of the
/// renderer's whitespace around the colon.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\"");
    let rest = &body[body.find(&needle).unwrap_or_else(|| {
        panic!("no {key} in {body}");
    }) + needle.len()..];
    let digits: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or_else(|e| {
        panic!("bad {key} counter in {body}: {e}");
    })
}

fn run_body(benchmark: &str, nranks: usize) -> String {
    RunRequest::new(benchmark, WorkloadClass::Tiny, nranks)
        .with_cluster("a")
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .to_json()
}

#[test]
fn shipped_presets_validate_and_replay_bit_identically() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for preset in ["plans/chaos-ci.toml", "plans/chaos-degraded-net.toml"] {
        let text = std::fs::read_to_string(root.join(preset)).expect(preset);
        let a = load_chaos_plan(&root.join(preset)).unwrap_or_else(|e| panic!("{preset}: {e}"));
        let b = parse_chaos_plan(&text).unwrap();
        assert!(!a.faults.is_empty(), "{preset} must injure something");
        assert_eq!(a, b, "{preset}: file and text parses must agree");

        // Determinism: two independently parsed plans derive identical
        // injury schedules for every connection ordinal...
        for conn in 0..512u64 {
            assert_eq!(
                a.schedule(conn),
                b.schedule(conn),
                "{preset}: schedule for conn {conn} must be pure"
            );
        }

        // ...while a different seed derives a genuinely different run.
        let reseeded = ChaosPlan {
            seed: a.seed.wrapping_add(1),
            faults: a.faults.clone(),
        };
        let diverged = (0..512u64)
            .filter(|&conn| a.schedule(conn) != reseeded.schedule(conn))
            .count();
        assert!(diverged > 0, "{preset}: reseeding must change the draw");
    }
}

#[test]
fn clean_plan_is_byte_invisible_end_to_end() {
    let (worker, wh, wj) = spawn_worker();
    let (proxy, ph, pj) = spawn_proxy(ChaosPlan::none(), worker.to_string());

    let (status, direct) = http(worker, "POST", "/v1/run", &run_body("lbm", 4));
    assert_eq!(status, 200, "{direct}");
    let (status, via_proxy) = http(proxy, "POST", "/v1/run", &run_body("lbm", 4));
    assert_eq!(status, 200, "{via_proxy}");
    assert_eq!(
        via_proxy, direct,
        "an empty plan must degenerate to a pure splice"
    );

    ph.request_drain();
    pj.join().unwrap().unwrap();
    wh.request_drain();
    wj.join().unwrap().unwrap();
}

#[test]
fn truncating_fabric_yields_clean_bytes_or_typed_errors_and_trips_breakers() {
    // Worker 1 sits behind a proxy that cuts every response at byte 64;
    // worker 2 is reachable directly, so a clean path always exists.
    let plan = parse_chaos_plan(
        "seed = 7\n\
         [[fault]]\n\
         kind = \"truncate\"\n\
         direction = \"downstream\"\n\
         prob = 1.0\n\
         after_bytes = 64\n",
    )
    .unwrap();
    let (w1, h1, j1) = spawn_worker();
    let (w2, h2, j2) = spawn_worker();
    let (proxy, ph, pj) = spawn_proxy(plan, w1.to_string());
    let (fleet, fh, fj) = spawn_coordinator(vec![proxy.to_string(), w2.to_string()], 600.0);

    // Issue distinct runs until the registry has tripped a breaker on
    // the injured path; every answer must be byte-identical to what a
    // healthy daemon returns (a typed 5xx JSON would also be legal, but
    // with a clean worker in the ring failover should always converge).
    let cases: Vec<(String, usize)> = ["lbm", "tealeaf", "pot3d", "cloverleaf", "minisweep"]
        .iter()
        .flat_map(|b| [1usize, 2, 4, 8].map(|n| (b.to_string(), n)))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut tripped = false;
    for (bench, nranks) in &cases {
        let body = run_body(bench, *nranks);
        let (status, got) = http(fleet, "POST", "/v1/run", &body);
        if status != 200 {
            assert!(
                (500..600).contains(&status) && got.contains("\"error\":"),
                "degradation must be a typed 5xx, got {status}: {got}"
            );
            continue;
        }
        let (ref_status, want) = http(w2, "POST", "/v1/run", &body);
        assert_eq!(ref_status, 200, "{want}");
        assert_eq!(got, want, "{bench}/{nranks}: fleet bytes must be clean");

        let (_, metrics) = http(fleet, "GET", "/v1/metrics", "");
        if json_u64(&metrics, "breaker_trips") > 0 {
            tripped = true;
            assert!(metrics.contains("\"breaker_states\""), "{metrics}");
            assert!(metrics.contains("\"hedges_fired\""), "{metrics}");
            assert!(metrics.contains("\"retries_spent\""), "{metrics}");
            break;
        }
        assert!(Instant::now() < deadline, "breaker never tripped");
    }
    assert!(tripped, "a fully-injured worker must trip its breaker");

    fh.request_drain();
    fj.join().unwrap().unwrap();
    ph.request_drain();
    pj.join().unwrap().unwrap();
    h1.request_drain();
    j1.join().unwrap().unwrap();
    h2.request_drain();
    j2.join().unwrap().unwrap();
}

/// A worker-shaped impostor: speaks well-formed HTTP/1.1 with an exact
/// Content-Length, but every body is JSON-shaped garbage. This is the
/// adversary `vet_response` exists for — framing alone can't catch it.
fn spawn_garbage_worker() -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind impostor");
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            let mut stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(_) => break,
            };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            // Drain the request: headers, then Content-Length bytes.
            let mut raw = Vec::new();
            let mut buf = [0u8; 4096];
            let header_end = loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break None,
                    Ok(n) => {
                        raw.extend_from_slice(&buf[..n]);
                        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                            break Some(pos + 4);
                        }
                    }
                }
            };
            let Some(header_end) = header_end else {
                continue;
            };
            let head = String::from_utf8_lossy(&raw[..header_end]).to_ascii_lowercase();
            let want: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            while raw.len() < header_end + want {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => raw.extend_from_slice(&buf[..n]),
                }
            }
            let body = "{\"result\": truncated-nonsense";
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(resp.as_bytes());
        }
    });
    (addr, stop)
}

#[test]
fn json_shaped_garbage_becomes_a_typed_502_not_a_spliced_body() {
    let (impostor, stop) = spawn_garbage_worker();
    let (fleet, fh, fj) = spawn_coordinator(vec![impostor.to_string()], 600.0);

    let (status, body) = http(fleet, "POST", "/v1/run", &run_body("lbm", 4));
    assert_eq!(status, 502, "{body}");
    assert!(body.contains("\"bad_upstream\""), "{body}");
    assert!(
        spechpc::harness::json::parse_json(&body).is_some(),
        "even the failure must be well-formed JSON: {body}"
    );

    stop.store(true, Ordering::SeqCst);
    fh.request_drain();
    fj.join().unwrap().unwrap();
}

#[test]
fn black_holes_are_bounded_by_the_client_deadline() {
    let plan = parse_chaos_plan("[[fault]]\nkind = \"black-hole\"\n").unwrap();
    // The upstream is never contacted, so any address will do.
    let (proxy, ph, pj) = spawn_proxy(plan, "127.0.0.1:1".to_string());

    let started = Instant::now();
    let mut stream = TcpStream::connect(proxy).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(1)))
        .unwrap();
    let body = run_body("lbm", 4);
    let req = format!(
        "POST /v1/run HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut buf = [0u8; 64];
    let got = stream.read(&mut buf);
    let stalled = matches!(
        &got,
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    );
    assert!(stalled, "black hole must answer with silence, got {got:?}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the client's own deadline bounds the stall"
    );
    drop(stream);

    ph.request_drain();
    pj.join().unwrap().unwrap();
}
