//! Golden wire-format fixtures: the exact bytes of every request and
//! response type, committed under `tests/golden/`. A failing test here
//! means the wire format changed — that is an API break, not a test to
//! update casually. When the change is intentional, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test wire_golden
//! ```
//!
//! and review the fixture diff like any other interface change.

use spechpc::harness::api::{self, ApiError, RunRequest, SuiteRequest};
use spechpc::harness::plan::{evaluate_plan, JobShape, PlanJob, PlanRequest, PlanVariant};
use spechpc::prelude::*;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, current: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, current).expect("write fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}) — run UPDATE_GOLDEN=1 cargo test --test wire_golden",
            path.display()
        )
    });
    assert_eq!(
        current, committed,
        "{name}: wire bytes drifted from the committed fixture — an API \
         break; regenerate with UPDATE_GOLDEN=1 only if intentional"
    );
}

fn fixture_run_request() -> RunRequest {
    RunRequest::new("tealeaf", WorkloadClass::Small, 144)
        .with_cluster("b")
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
}

fn fixture_plan_request() -> PlanRequest {
    PlanRequest::new()
        .with_cluster("a")
        .with_nodes(4)
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 72).with_count(3, 60.0))
        .with_job(PlanJob::new("pot3d", WorkloadClass::Tiny, 144).with_arrival(30.0))
        .with_variant(PlanVariant::new("capped").with_power_cap_w(1300.0))
        .with_variant(PlanVariant::new("spr").with_cluster("b"))
}

/// Engine-free shape oracle: nodes from rank packing, flat synthetic
/// power, a benchmark-keyed roofline split. Keeps the response fixture
/// independent of the performance model while still exercising every
/// field of the wire format.
fn synthetic_shape(
    cl: &ClusterSpec,
    benchmark: &str,
    _class: WorkloadClass,
    nranks: usize,
    _faults: &FaultPlan,
) -> Result<JobShape, ApiError> {
    let nodes = nranks.div_ceil(cl.node.cores()).max(1);
    Ok(JobShape {
        runtime_s: 100.0 + nranks as f64,
        nodes,
        package_w: 200.0 * nodes as f64,
        dram_w: 40.0 * nodes as f64,
        flops_fraction: match benchmark {
            "sph-exa" => 0.9,
            "lbm" => 0.2,
            _ => 0.5,
        },
    })
}

#[test]
fn request_fixtures_are_stable_and_round_trip() {
    let run = fixture_run_request();
    check("run_request.json", &run.to_json());
    assert_eq!(
        RunRequest::from_json(&run.to_json()).unwrap().to_json(),
        run.to_json()
    );

    let suite = SuiteRequest::new(WorkloadClass::Tiny)
        .with_cluster("a")
        .with_nranks(8)
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false));
    check("suite_request.json", &suite.to_json());
    assert_eq!(
        SuiteRequest::from_json(&suite.to_json()).unwrap().to_json(),
        suite.to_json()
    );

    let plan = fixture_plan_request();
    check("plan_request.json", &plan.to_json());
    assert_eq!(
        PlanRequest::from_json(&plan.to_json()).unwrap().to_json(),
        plan.to_json()
    );
}

#[test]
fn error_and_capabilities_fixtures_are_stable() {
    let err = ApiError::new(422, "invalid_plan", "plan has no jobs");
    check("api_error.json", &err.to_json());
    let back = ApiError::from_json(&err.to_json()).expect("round trip");
    assert_eq!(back.status, 422);
    assert_eq!(back.code, "invalid_plan");

    check("capabilities.json", &api::capabilities_json());
}

#[test]
fn engine_response_fixtures_are_stable() {
    let exec = Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2),
    );
    let run = api::dispatch_run(&exec, &fixture_run_request()).expect("run dispatch");
    check("run_response.json", &run.to_json());

    let suite = api::dispatch_suite(
        &exec,
        &SuiteRequest::new(WorkloadClass::Tiny)
            .with_cluster("a")
            .with_nranks(8)
            .with_config(RunConfig::default().with_repetitions(1).with_trace(false)),
    )
    .expect("suite dispatch");
    check("suite_response.json", &suite.to_json());
}

#[test]
fn plan_response_fixture_is_stable() {
    let resp = evaluate_plan(&fixture_plan_request(), &mut |cl, b, c, n, f| {
        synthetic_shape(cl, b, c, n, f)
    })
    .expect("synthetic plan evaluates");
    check("plan_response.json", &resp.to_json());
}

#[test]
fn service_reference_in_docs_matches_the_route_table() {
    // `docs/SERVICE.md` embeds the generated endpoint table verbatim;
    // regenerating it is part of changing the registry (see the marker
    // comment in the document).
    let doc = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/SERVICE.md"),
    )
    .expect("docs/SERVICE.md");
    let generated = api::reference_markdown();
    assert!(
        doc.contains(&generated),
        "docs/SERVICE.md is out of sync with harness::api::ENDPOINTS — \
         paste the output of api::reference_markdown() over the generated block"
    );
}
