//! Integration tests for the parallel, cached execution layer: the
//! determinism guarantee (any `--jobs` count produces byte-identical
//! output) and the on-disk cache round-trip/invalidation behaviour.

use std::path::PathBuf;

use spechpc::harness::cache::RunCache;
use spechpc::harness::cache::RunKey;
use spechpc::prelude::*;

fn quick() -> RunConfig {
    RunConfig::default()
        .with_warmup_steps(1)
        .with_measured_steps(2)
        .with_repetitions(1)
        .with_trace(false)
}

/// A mixed grid: several benchmarks at several rank counts on both
/// clusters' core grid, enough work that parallel scheduling actually
/// interleaves.
fn grid() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for name in ["tealeaf", "lbm", "soma", "pot3d", "minisweep", "weather"] {
        for n in [4, 18, 36] {
            specs.push(RunSpec::new(name, WorkloadClass::Tiny, n));
        }
    }
    specs
}

/// Render results through `{:?}`, which formats every `f64` with the
/// shortest decimal that round-trips to the identical bit pattern —
/// byte equality of this string is bit equality of the results.
fn render(results: &[RunResult]) -> String {
    format!("{results:#?}")
}

/// A scratch cache directory unique to this test process.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spechpc-exec-cache-{tag}-{}", std::process::id()))
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let cluster = presets::cluster_a();
    let specs = grid();

    let serial = Executor::serial(quick());
    let parallel = Executor::new(
        quick(),
        ExecConfig::default().with_jobs(8).with_no_cache(true),
    );

    let rs = serial.run_all(&cluster, &specs).into_results().unwrap();
    let rp = parallel.run_all(&cluster, &specs).into_results().unwrap();
    assert_eq!(
        render(&rs),
        render(&rp),
        "--jobs 8 must reproduce serial output byte for byte"
    );
}

#[test]
fn disk_cache_round_trips_and_second_run_hits_it() {
    let dir = scratch_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = presets::cluster_b();
    let specs = grid();

    let cold = Executor::new(
        quick(),
        ExecConfig::default()
            .with_jobs(4)
            .with_cache_dir(dir.clone()),
    );
    let first = cold.run_all(&cluster, &specs).into_results().unwrap();

    // Every untraced run must have landed in the store.
    let entries = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(entries, specs.len(), "one cache file per grid point");

    // A fresh executor (empty memory cache) sees every key on disk …
    let warm = Executor::new(
        quick(),
        ExecConfig::default()
            .with_jobs(4)
            .with_cache_dir(dir.clone()),
    );
    let store = RunCache::on_disk(&dir);
    for spec in &specs {
        let key = RunKey::new(
            &cluster.name,
            &spec.benchmark,
            &spec.class.to_string(),
            spec.nranks,
            &quick(),
        );
        assert!(
            store.get(&key).is_some(),
            "cache miss for {}",
            key.canonical()
        );
    }

    // … and replays the whole grid byte-identically.
    let second = warm.run_all(&cluster, &specs).into_results().unwrap();
    assert_eq!(render(&first), render(&second));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_invalidates_when_run_key_inputs_change() {
    let dir = scratch_dir("invalidate");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = presets::cluster_a();
    let spec = RunSpec::new("tealeaf", WorkloadClass::Tiny, 8);

    let exec = Executor::new(
        quick(),
        ExecConfig::default()
            .with_jobs(1)
            .with_cache_dir(dir.clone()),
    );
    exec.run_one(&cluster, &spec).unwrap();

    let store = RunCache::on_disk(&dir);
    let hit = RunKey::new(&cluster.name, "tealeaf", "tiny", 8, &quick());
    assert!(store.get(&hit).is_some());

    // Any change to a RunKey input addresses a different entry.
    let more_steps = quick().with_measured_steps(quick().measured_steps + 1);
    let misses = [
        RunKey::new(&cluster.name, "tealeaf", "tiny", 8, &more_steps),
        RunKey::new(&cluster.name, "tealeaf", "tiny", 9, &quick()),
        RunKey::new(&cluster.name, "tealeaf", "test", 8, &quick()),
        RunKey::new(&cluster.name, "lbm", "tiny", 8, &quick()),
        RunKey::new("ClusterB", "tealeaf", "tiny", 8, &quick()),
    ];
    for key in &misses {
        assert!(
            store.get(key).is_none(),
            "{} must not hit the entry written for {}",
            key.canonical(),
            hit.canonical()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
