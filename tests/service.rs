//! End-to-end tests of `spechpc serve`: a real daemon bound to an
//! ephemeral loopback port, driven by hand-rolled HTTP/1.1 clients over
//! `TcpStream` — the same byte path `curl` would take.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spechpc::harness::api;
use spechpc::prelude::*;

/// A small resident executor: in-memory cache, few workers.
fn executor() -> Executor {
    Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2),
    )
}

fn serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(4)
        .with_log_requests(false)
}

/// Bind + spawn a daemon; returns its address, drain handle, and the
/// join handle whose `Ok(())` is the daemon's exit-0 path.
fn spawn_server(
    exec: Executor,
    cfg: ServeConfig,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(exec, cfg).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

/// One HTTP exchange; returns (status, raw response bytes, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {text:?}"));
    let body = match text.find("\r\n\r\n") {
        Some(pos) => text[pos + 4..].to_string(),
        None => String::new(),
    };
    (status, raw, body)
}

/// One request WITHOUT `Connection: close` — HTTP/1.1 keep-alive.
fn keepalive_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Read exactly one response off a keep-alive connection, framed by its
/// `Content-Length`; returns (status, raw response bytes). Bytes read
/// past the frame (the next pipelined response) go into `carry` and are
/// consumed first on the next call.
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, Vec<u8>) {
    let mut raw = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response headers");
        assert!(
            n > 0,
            "EOF before response headers: {:?}",
            String::from_utf8_lossy(&raw)
        );
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line: {head:?}"));
    let content_length: usize = head
        .split("\r\n")
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("response carries Content-Length");
    let total = header_end + 4 + content_length;
    while raw.len() < total {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF mid-body");
        raw.extend_from_slice(&chunk[..n]);
    }
    *carry = raw.split_off(total);
    (status, raw)
}

/// [`read_framed`] for a connection that is not pipelining (no carry).
fn read_response(stream: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut carry = Vec::new();
    let got = read_framed(stream, &mut carry);
    assert!(carry.is_empty(), "unexpected trailing bytes: {carry:?}");
    got
}

/// A config whose simulation takes real wall time: DES cost scales
/// with the number of simulated steps (× ranks).
fn slow_config(measured_steps: usize) -> RunConfig {
    RunConfig::default()
        .with_measured_steps(measured_steps)
        .with_repetitions(1)
        .with_trace(false)
}

fn run_body(benchmark: &str, nranks: usize, repetitions: usize) -> String {
    RunRequest::new(benchmark, WorkloadClass::Tiny, nranks)
        .with_cluster("a")
        .with_config(
            RunConfig::default()
                .with_repetitions(repetitions)
                .with_trace(false),
        )
        .to_json()
}

/// Poll `/v1/health` until the in-flight gauge reaches `want`.
fn wait_for_inflight(addr: SocketAddr, want: usize) {
    let needle = format!("\"inflight\":{want}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = http(addr, "GET", "/v1/health", "");
        assert_eq!(status, 200, "health must always be served: {body}");
        if body.contains(&needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "in-flight gauge never reached {want}: {body}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn run_suite_profile_metrics_and_health_roundtrip() {
    let (addr, _, join) = spawn_server(executor(), serve_config());

    // Liveness first: a fresh daemon is idle and not draining.
    let (status, _, health) = http(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"inflight\":0"), "{health}");
    assert!(health.contains("\"draining\":false"), "{health}");

    // POST /v1/run: a typed request in, a typed result out.
    let (status, first, body) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 200, "{body}");
    let resp = RunResponse::from_json(&body).expect("decodable run response");
    assert_eq!(resp.result.benchmark, "lbm");
    assert_eq!(resp.result.nranks, 4);
    assert!(resp.result.runtime_s > 0.0);

    // The identical request again: served from cache, byte-identical
    // down to the HTTP framing (no Date header, no cache markers).
    let (status, second, _) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 200);
    assert_eq!(first, second, "cached replay must be byte-identical");

    // The metrics ledger saw one simulation and one memory hit.
    let (status, _, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"runs_executed\":1"), "{metrics}");
    assert!(metrics.contains("\"hits_mem\":1"), "{metrics}");

    // POST /v1/suite: all nine benchmarks, complete.
    let suite_req = SuiteRequest::new(WorkloadClass::Tiny)
        .with_cluster("a")
        .with_nranks(8)
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .to_json();
    let (status, _, suite) = http(addr, "POST", "/v1/suite", &suite_req);
    assert_eq!(status, 200, "{suite}");
    assert!(suite.contains("\"complete\": true"), "{suite}");
    assert!(suite.contains("\"tealeaf\""), "{suite}");

    // GET /v1/profile/{benchmark}: the Fig.-2-style tables as JSON.
    let (status, _, profile) = http(addr, "GET", "/v1/profile/lbm?class=tiny&n=4", "");
    assert_eq!(status, 200, "{profile}");
    for key in [
        "\"run\":\"lbm/tiny/4@ClusterA\"",
        "\"ranks\"",
        "\"histogram\"",
        "\"matrix\"",
    ] {
        assert!(profile.contains(key), "missing {key} in {profile}");
    }

    // Error surface: unknown routes 404, malformed bodies 400, unknown
    // benchmarks 400 — all as typed ApiError JSON.
    let (status, _, body) = http(addr, "GET", "/v2/run", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\":\"not_found\""), "{body}");
    let (status, _, body) = http(addr, "POST", "/v1/run", "{\"class\":\"tiny\"}");
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = http(addr, "POST", "/v1/run", &run_body("quantum-foo", 4, 1));
    assert_eq!(status, 400);
    assert!(body.contains("unknown_benchmark"), "{body}");

    // Graceful shutdown over the wire; serve() returns the exit-0 path.
    let (status, _, body) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    join.join()
        .expect("server thread")
        .expect("clean drain exits Ok");
}

#[test]
fn plan_and_capabilities_roundtrip_over_the_wire() {
    use spechpc::harness::plan::{PlanJob, PlanRequest, PlanVariant};
    let (addr, _, join) = spawn_server(executor(), serve_config());

    // GET /v1/capabilities: the whole route table, straight from the
    // registry both dispatchers consume.
    let (status, first_caps, caps) = http(addr, "GET", "/v1/capabilities", "");
    assert_eq!(status, 200, "{caps}");
    for ep in api::ENDPOINTS {
        assert!(
            caps.contains(&format!("\"path\":\"{}\"", ep.display_path)),
            "capabilities must list {}: {caps}",
            ep.display_path
        );
    }
    let (_, second_caps, _) = http(addr, "GET", "/v1/capabilities", "");
    assert_eq!(first_caps, second_caps, "capabilities must be stable");

    // POST /v1/plan: a small queue with a capped variant. The identical
    // request again must replay byte-identically down to the framing —
    // every job shape comes out of the run cache.
    let body = PlanRequest::new()
        .with_cluster("a")
        .with_nodes(4)
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 72).with_count(6, 10.0))
        .with_job(PlanJob::new("tealeaf", WorkloadClass::Tiny, 144).with_arrival(5.0))
        .with_variant(PlanVariant::new("capped").with_power_cap_w(1300.0))
        .to_json();
    let (status, first, plan) = http(addr, "POST", "/v1/plan", &body);
    assert_eq!(status, 200, "{plan}");
    assert!(plan.contains("\"jobs\":7"), "{plan}");
    assert!(plan.contains("\"name\":\"capped\""), "{plan}");
    assert!(plan.contains("\"comparison\""), "{plan}");
    let (status, second, _) = http(addr, "POST", "/v1/plan", &body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "plan replay must be byte-identical");

    // Semantic impossibility → typed 422, and the daemon keeps serving.
    let wide = PlanRequest::new()
        .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 1_000_000))
        .to_json();
    let (status, _, body) = http(addr, "POST", "/v1/plan", &wide);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("invalid_plan"), "{body}");

    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn a_failing_run_is_a_typed_422_not_a_crash() {
    let (addr, handle, join) = spawn_server(executor(), serve_config());
    let req = RunRequest::new("tealeaf", WorkloadClass::Tiny, 8)
        .with_config(
            RunConfig::default()
                .with_repetitions(1)
                .with_trace(false)
                .with_faults(FaultPlan {
                    seed: 1,
                    events: vec![FaultEvent::Crash { rank: 3, at_s: 0.0 }],
                }),
        )
        .to_json();
    let (status, _, body) = http(addr, "POST", "/v1/run", &req);
    assert_eq!(status, 422, "{body}");
    let err = ApiError::from_json(&body).expect("typed error body");
    assert_eq!(err.code, "rank_failed");
    // The daemon survives the failure and keeps serving.
    let (status, _, _) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 200);
    handle.request_drain();
    join.join().unwrap().unwrap();
}

#[test]
fn saturation_answers_429_with_retry_after() {
    // One simulation slot: the second concurrent run must be refused,
    // while health stays served throughout.
    let cfg = serve_config().with_workers(3).with_max_inflight(1);
    let (addr, _, join) = spawn_server(executor(), cfg);

    // Occupy the slot with a deliberately heavy run: simulated work
    // scales with measured_steps × nranks, so a few hundred steps at
    // 1152 ranks holds the slot for seconds even on a fast host.
    let slow = std::thread::spawn(move || {
        let req = RunRequest::new("pot3d", WorkloadClass::Large, 1152)
            .with_config(slow_config(250))
            .to_json();
        http(addr, "POST", "/v1/run", &req)
    });
    wait_for_inflight(addr, 1);

    let (status, raw, body) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"error\":\"saturated\""), "{body}");
    let head = String::from_utf8_lossy(&raw);
    // Retry-After is derived from the inflight/capacity load factor:
    // at refusal the single slot is fully occupied (inflight 1, cap 1),
    // so the hint is 1 + 4·1/1 = 5 s rather than the idle-daemon 1 s.
    assert!(head.contains("Retry-After: 5"), "{head}");

    // The fast routes are exempt from admission control.
    let (status, _, _) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);

    let (status, _, body) = slow.join().unwrap();
    assert_eq!(status, 200, "the occupying run still completes: {body}");
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn thirty_two_concurrent_clients_are_all_served() {
    let cfg = serve_config().with_workers(8).with_queue_depth(8);
    let (addr, _, join) = spawn_server(executor(), cfg);

    // Prime the cache so the storm replays one entry.
    let (status, reference, _) = http(addr, "POST", "/v1/run", &run_body("tealeaf", 8, 1));
    assert_eq!(status, 200);
    let reference = Arc::new(reference);

    // 32 simultaneous clients, each retrying politely on 429 (the
    // bounded queue and in-flight cap are allowed to push back; they
    // are not allowed to drop or corrupt anyone).
    let clients: Vec<_> = (0..32)
        .map(|i| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(60);
                loop {
                    let (status, raw, body) =
                        http(addr, "POST", "/v1/run", &run_body("tealeaf", 8, 1));
                    match status {
                        200 => {
                            assert_eq!(
                                raw, *reference,
                                "client {i}: replay must be byte-identical"
                            );
                            return;
                        }
                        429 => {
                            assert!(Instant::now() < deadline, "client {i} starved: {body}");
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        other => panic!("client {i}: unexpected status {other}: {body}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Exactly one simulation ever ran; everything else hit the cache.
    let (_, _, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert!(metrics.contains("\"runs_executed\":1"), "{metrics}");

    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn requests_over_the_time_budget_answer_a_typed_504() {
    // The daemon runs every simulation under the executor's
    // cooperative cancel token: a run that blows its budget surfaces
    // as a typed 504, and the worker is free for the next request.
    let exec = Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2).with_timeout_s(0.05),
    );
    let (addr, _, join) = spawn_server(exec, serve_config());

    let req = RunRequest::new("pot3d", WorkloadClass::Large, 1152)
        .with_config(slow_config(400))
        .to_json();
    let (status, _, body) = http(addr, "POST", "/v1/run", &req);
    assert_eq!(status, 504, "{body}");
    let err = ApiError::from_json(&body).expect("typed error body");
    assert_eq!(err.code, "timeout");

    // A cheap run fits the same budget; the daemon kept serving.
    let (status, _, body) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 200, "{body}");

    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_inflight_work_before_exiting() {
    let (addr, handle, join) = spawn_server(executor(), serve_config());

    let slow = std::thread::spawn(move || {
        let req = RunRequest::new("pot3d", WorkloadClass::Large, 1152)
            .with_config(slow_config(150))
            .to_json();
        http(addr, "POST", "/v1/run", &req)
    });
    wait_for_inflight(addr, 1);

    // Drain while the run is mid-flight: the daemon must finish it,
    // answer 200, and only then let serve() return.
    handle.request_drain();
    let (status, _, body) = slow.join().unwrap();
    assert_eq!(status, 200, "in-flight work must complete: {body}");
    join.join().unwrap().unwrap();
    assert!(handle.draining());
}

#[test]
fn api_metrics_flush_to_csv_on_drain() {
    let dir = std::env::temp_dir().join(format!("spechpc-serve-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = serve_config().with_metrics_dir(&dir);
    let (addr, _, join) = spawn_server(executor(), cfg);
    let (status, _, _) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 200);
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
    let csv = dir.join("serve.csv");
    let text = std::fs::read_to_string(&csv)
        .unwrap_or_else(|e| panic!("drain must flush {}: {e}", csv.display()));
    assert!(text.contains("runs_executed"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keepalive_connection_replays_byte_identically_and_health_counts_it() {
    let (addr, _, join) = spawn_server(executor(), serve_config());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();

    // First request simulates; the identical second replays from cache
    // over the SAME connection — byte-identical down to the framing.
    let req = keepalive_request("POST", "/v1/run", &run_body("lbm", 4, 1));
    conn.write_all(req.as_bytes()).unwrap();
    let (status, first) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&first).contains("Connection: keep-alive"),
        "keep-alive requests must be answered keep-alive"
    );
    conn.write_all(req.as_bytes()).unwrap();
    let (status, second) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert_eq!(first, second, "keep-alive replay must be byte-identical");

    // The health gauge distinguishes open connections from in-flight
    // simulations: our idle keep-alive connection plus health's own.
    let (status, _, health) = http(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"connections\":2"), "{health}");
    assert!(health.contains("\"inflight\":0"), "{health}");

    drop(conn);
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (addr, _, join) = spawn_server(executor(), serve_config());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();

    // Two fast requests in one write: both answered, in order.
    let pair = format!(
        "{}{}",
        keepalive_request("GET", "/v1/health", ""),
        keepalive_request("GET", "/v1/metrics", "")
    );
    conn.write_all(pair.as_bytes()).unwrap();
    let mut carry = Vec::new();
    let (status, raw) = read_framed(&mut conn, &mut carry);
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&raw).contains("\"status\":\"ok\""));
    let (status, raw) = read_framed(&mut conn, &mut carry);
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&raw).contains("runs_executed"));

    // A simulating request with a fast one pipelined behind it: the
    // buffered successor must be served after the completion lands.
    let pair = format!(
        "{}{}",
        keepalive_request("POST", "/v1/run", &run_body("lbm", 4, 1)),
        keepalive_request("GET", "/v1/health", "")
    );
    conn.write_all(pair.as_bytes()).unwrap();
    let (status, raw) = read_framed(&mut conn, &mut carry);
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&raw).contains("\"benchmark\""));
    let (status, raw) = read_framed(&mut conn, &mut carry);
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&raw).contains("\"status\":\"ok\""));

    drop(conn);
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn requests_split_at_arbitrary_byte_boundaries_still_parse() {
    let (addr, _, join) = spawn_server(executor(), serve_config());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = keepalive_request("POST", "/v1/run", &run_body("lbm", 4, 1));
    for chunk in req.as_bytes().chunks(3) {
        conn.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, _) = read_response(&mut conn);
    assert_eq!(status, 200, "a dribbled request must still parse");
    drop(conn);
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_headers_are_refused_with_431() {
    let (addr, _, join) = spawn_server(executor(), serve_config());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut req = b"GET /v1/health HTTP/1.1\r\nHost: loopback\r\n".to_vec();
    req.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "y".repeat(20_000)).as_bytes());
    conn.write_all(&req).unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read refusal");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 431"), "{text}");
    assert!(text.contains("headers_too_large"), "{text}");
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn slow_loris_is_reaped_by_the_read_deadline() {
    let cfg = serve_config().with_read_timeout_s(0.2);
    let (addr, _, join) = spawn_server(executor(), cfg);
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    // Start a request and never finish it.
    conn.write_all(b"GET /v1/health HTTP/1.1\r\nHost: lo")
        .unwrap();
    let t0 = Instant::now();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read reap answer");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("read_timeout"), "{text}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "reaper took {:?}",
        t0.elapsed()
    );
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn connections_beyond_the_cap_get_a_canned_503() {
    let cfg = serve_config().with_max_conns(3);
    let (addr, handle, join) = spawn_server(executor(), cfg);
    let _c1 = TcpStream::connect(addr).expect("connect c1");
    let _c2 = TcpStream::connect(addr).expect("connect c2");

    // Hold the third (and last) slot with a keep-alive connection and
    // wait until the gauge confirms all three are registered.
    let mut c3 = TcpStream::connect(addr).expect("connect c3");
    c3.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        c3.write_all(keepalive_request("GET", "/v1/health", "").as_bytes())
            .unwrap();
        let (status, raw) = read_response(&mut c3);
        assert_eq!(status, 200);
        if String::from_utf8_lossy(&raw).contains("\"connections\":3") {
            break;
        }
        assert!(Instant::now() < deadline, "cap never filled");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The fourth connection is refused at accept time.
    let mut c4 = TcpStream::connect(addr).expect("connect c4");
    c4.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let mut raw = Vec::new();
    c4.read_to_end(&mut raw).expect("read refusal");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("connection_limit"), "{text}");

    // Drain via the in-process handle: an HTTP shutdown would race the
    // still-full cap and could itself be refused.
    drop((_c1, _c2, c3));
    handle.request_drain();
    join.join().unwrap().unwrap();
}

#[test]
fn keepalive_request_cap_closes_the_connection() {
    let cfg = serve_config().with_keepalive_requests(2);
    let (addr, _, join) = spawn_server(executor(), cfg);
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = keepalive_request("GET", "/v1/health", "");
    conn.write_all(req.as_bytes()).unwrap();
    let (status, raw) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&raw).contains("Connection: keep-alive"));
    conn.write_all(req.as_bytes()).unwrap();
    let (status, raw) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&raw).contains("Connection: close"),
        "the capped request must be framed close"
    );
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("read close");
    assert!(rest.is_empty(), "no bytes after the final response");
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn a_thousand_keepalive_connections_replay_byte_identically() {
    // The acceptance bar for the event loop: ≥ 1024 concurrent
    // keep-alive connections on one daemon, two full request rounds,
    // zero refusals, every cached replay byte-identical.
    let cfg = serve_config()
        .with_workers(4)
        .with_queue_depth(2048)
        .with_max_inflight(2048)
        .with_max_conns(2048)
        .with_idle_timeout_s(300.0);
    let (addr, _, join) = spawn_server(executor(), cfg);

    // Prime the cache so the fleet replays one entry.
    let (status, _, _) = http(addr, "POST", "/v1/run", &run_body("lbm", 4, 1));
    assert_eq!(status, 200);

    const FLEET: usize = 1024;
    let req = keepalive_request("POST", "/v1/run", &run_body("lbm", 4, 1));
    let mut conns: Vec<TcpStream> = (0..FLEET)
        .map(|i| {
            let s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
            s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
            s
        })
        .collect();

    let mut reference: Option<Vec<u8>> = None;
    for round in 0..2 {
        for (i, c) in conns.iter_mut().enumerate() {
            c.write_all(req.as_bytes())
                .unwrap_or_else(|e| panic!("round {round} conn {i} write: {e}"));
        }
        for (i, c) in conns.iter_mut().enumerate() {
            let (status, raw) = read_response(c);
            assert_eq!(status, 200, "round {round} conn {i}");
            if reference.is_none() {
                reference = Some(raw.clone());
            }
            assert_eq!(
                Some(&raw),
                reference.as_ref(),
                "round {round} conn {i}: replay must be byte-identical"
            );
        }
    }

    // All of them survived both rounds: the health gauge sees the whole
    // fleet plus its own connection.
    let (status, _, health) = http(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(
        health.contains(&format!("\"connections\":{}", FLEET + 1)),
        "{health}"
    );

    drop(conns);
    let (status, _, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap().unwrap();
}

#[test]
fn cli_request_types_and_wire_requests_are_the_same_dispatch_path() {
    // What the CLI builds and what the daemon decodes are literally the
    // same value — the API round-trip is the contract.
    let cli_side = RunRequest::new("lbm", WorkloadClass::Tiny, 4)
        .with_cluster("a")
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false));
    let wire_side = RunRequest::from_json(&cli_side.to_json()).unwrap();
    let exec = executor();
    let a = api::dispatch_run(&exec, &cli_side).unwrap();
    let b = api::dispatch_run(&exec, &wire_side).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}
