//! The capacity planner end to end: the committed 500-job CI plan
//! through the real engine, the power-cap physics against the DVFS
//! model, and randomized safety properties of the EASY backfill
//! scheduler.

use spechpc::harness::plan::{
    cap_clock_ghz, dispatch_plan, easy_schedule, flops_fraction, PlanRequest, SchedJob,
};
use spechpc::power::dvfs;
use spechpc::prelude::*;

fn executor() -> Executor {
    Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2),
    )
}

fn ci_plan() -> PlanRequest {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/plans/capacity-ci.json");
    let body = std::fs::read_to_string(path).expect("committed CI plan");
    PlanRequest::from_json(&body).expect("plans/capacity-ci.json must stay valid")
}

#[test]
fn the_500_job_ci_plan_is_deterministic_and_cache_backed() {
    let req = ci_plan();
    let exec = executor();

    let first = dispatch_plan(&exec, &req).expect("plan evaluates");
    assert_eq!(first.jobs, 500);
    assert_eq!(first.scenarios.len(), 3, "baseline + spr + capped");
    let after_first = exec.metrics().runs_executed;
    // 5 templates × 2 distinct clusters; the capped variant reuses the
    // baseline shapes (the cap rescales, it never re-simulates).
    assert_eq!(after_first, 10, "one engine run per distinct job shape");

    // The identical request replays byte-identically — every shape
    // comes back out of the run cache, no new simulations.
    let second = dispatch_plan(&exec, &req).expect("replay evaluates");
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "plan must be deterministic"
    );
    assert_eq!(
        exec.metrics().runs_executed,
        after_first,
        "replay must not simulate"
    );
    assert!(
        exec.metrics().cache.hits_mem >= 10,
        "replay must hit the cache"
    );

    // Scenario physics: every scenario scheduled all 500 jobs within
    // capacity, and the 20%-below-hot power cap trades makespan for
    // strictly lower job energy on this memory-leaning mix.
    let baseline = &first.scenarios[0];
    let capped = first
        .scenarios
        .iter()
        .find(|s| s.name == "capped")
        .expect("capped scenario");
    assert_eq!(baseline.per_job.len(), 500);
    assert!(
        capped.cap_ghz < 2.4,
        "a 6250 W cap must bind below base clock"
    );
    assert!(
        capped.total_j() < baseline.total_j(),
        "capped queue must use strictly less job energy: {} vs {}",
        capped.total_j(),
        baseline.total_j()
    );
    assert!(
        capped.makespan_s > baseline.makespan_s,
        "the cap's slowdown must show up in the makespan"
    );
}

#[test]
fn capped_job_durations_match_the_throttle_slowdown_law() {
    let req = ci_plan();
    let exec = executor();
    let resp = dispatch_plan(&exec, &req).expect("plan evaluates");
    let baseline = &resp.scenarios[0];
    let capped = resp
        .scenarios
        .iter()
        .find(|s| s.name == "capped")
        .expect("capped scenario");

    let cl = spechpc::harness::api::resolve_cluster("a").unwrap();
    let per_node = capped.power_cap_w / capped.nodes as f64;
    let cap = cap_clock_ghz(&cl, per_node).unwrap();
    assert!(
        (cap - capped.cap_ghz).abs() < 1e-12,
        "{cap} vs {}",
        capped.cap_ghz
    );

    // The five templates expand in order, 100 submissions each: job
    // i*100 is the first submission of template i. Each capped duration
    // must be the baseline duration stretched by exactly the roofline
    // throttle model at that job's flops fraction.
    for (i, job) in req.jobs.iter().enumerate() {
        let b = &baseline.per_job[i * 100];
        let c = &capped.per_job[i * 100];
        let phi = flops_fraction(&cl, &job.benchmark, job.class, job.nranks);
        let want = dvfs::throttle_slowdown(cl.node.cpu.base_clock_ghz, cap, phi);
        let got = (c.end_s - c.start_s) / (b.end_s - b.start_s);
        assert!(
            (got - want).abs() < 1e-9,
            "{}: slowdown {got} != throttle_slowdown {want}",
            job.benchmark
        );
    }
}

/// xorshift64* — the same in-tree generator the engine property tests
/// use; deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Node occupancy at instant `t` under half-open `[start, end)` spans.
fn used_at(jobs: &[SchedJob], placed: &[spechpc::harness::plan::Placement], t: f64) -> usize {
    jobs.iter()
        .zip(placed)
        .filter(|(j, p)| p.start_s <= t && t < p.start_s + j.duration_s.max(0.0) && p.end_s > t)
        .map(|(j, _)| j.nodes)
        .sum()
}

#[test]
fn prop_backfill_never_violates_capacity() {
    for seed in 1..=60u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15));
        let total_nodes = 1 + rng.below(24) as usize;
        let n = 1 + rng.below(80) as usize;
        let jobs: Vec<SchedJob> = (0..n)
            .map(|_| SchedJob {
                arrival_s: rng.below(2_000) as f64 * 0.25,
                nodes: 1 + rng.below(total_nodes as u64) as usize,
                duration_s: rng.below(400) as f64 * 0.5,
            })
            .collect();
        let placed = easy_schedule(&jobs, total_nodes);

        // At every start instant (the only points where occupancy can
        // grow) the running widths must fit the cluster.
        for p in &placed {
            let used = used_at(&jobs, &placed, p.start_s);
            assert!(
                used <= total_nodes,
                "seed {seed}: {used} nodes in use > {total_nodes} at t={}",
                p.start_s
            );
        }
    }
}

#[test]
fn prop_backfill_never_starves_a_job() {
    for seed in 1..=60u64 {
        let mut rng = Rng(seed ^ 0xD1B54A32D192ED03);
        let total_nodes = 1 + rng.below(16) as usize;
        let n = 1 + rng.below(60) as usize;
        let jobs: Vec<SchedJob> = (0..n)
            .map(|_| SchedJob {
                arrival_s: rng.below(1_000) as f64,
                nodes: 1 + rng.below(total_nodes as u64) as usize,
                duration_s: 1.0 + rng.below(300) as f64,
            })
            .collect();
        let placed = easy_schedule(&jobs, total_nodes);

        // EASY's no-starvation bound: nothing starts before it arrives,
        // and nothing waits past the drain of the entire workload —
        // the head's reservation guarantees progress, so every start is
        // bounded by the last arrival plus the sum of all durations.
        let last_arrival = jobs.iter().map(|j| j.arrival_s).fold(0.0, f64::max);
        let drain: f64 = jobs.iter().map(|j| j.duration_s).sum();
        for (i, (j, p)) in jobs.iter().zip(&placed).enumerate() {
            assert!(
                p.start_s >= j.arrival_s,
                "seed {seed} job {i}: starts before it arrives"
            );
            assert!(
                p.end_s - p.start_s == j.duration_s,
                "seed {seed} job {i}: duration not preserved"
            );
            assert!(
                p.start_s <= last_arrival + drain,
                "seed {seed} job {i}: wait {} exceeds the drain bound {}",
                p.start_s - j.arrival_s,
                last_arrival + drain
            );
        }
    }
}
