//! Native multi-rank execution of every real kernel over the in-process
//! message layer: data really moves, and global physical invariants
//! must hold across the decomposition.

use spechpc::prelude::*;

/// Run one kernel natively and return per-rank (checksum-before,
/// checksum-after, validation).
fn run_native(name: &str, ranks: usize, steps: usize) -> Vec<(f64, f64, Result<(), String>)> {
    let bench = benchmark_by_name(name).expect("known benchmark");
    ThreadWorld::run(ranks, |rank, comm| {
        let mut k = bench.make_kernel(WorkloadClass::Test, rank, ranks, 42);
        let before = k.checksum();
        for _ in 0..steps {
            k.step(comm);
        }
        (before, k.checksum(), k.validate())
    })
}

#[test]
fn every_kernel_validates_on_four_ranks() {
    for name in BENCHMARK_NAMES {
        let out = run_native(name, 4, 3);
        for (r, (_, _, v)) in out.iter().enumerate() {
            if let Err(e) = v {
                panic!("{name} rank {r}: {e}");
            }
        }
    }
}

#[test]
fn conservative_kernels_conserve_globally() {
    // lbm: mass; cloverleaf: mass+energy checksum; weather: tracer
    // totals; tealeaf: heat. All conserved by construction.
    for name in ["lbm", "cloverleaf", "weather", "tealeaf"] {
        let out = run_native(name, 3, 4);
        let before: f64 = out.iter().map(|(b, _, _)| b).sum();
        let after: f64 = out.iter().map(|(_, a, _)| a).sum();
        assert!(
            (after - before).abs() / before.abs().max(1.0) < 1e-7,
            "{name}: global invariant drift {before} → {after}"
        );
    }
}

#[test]
fn decomposition_invariance_of_solvers() {
    // pot3d's CG must produce the same global solution sum on 1, 2 and
    // 4 ranks.
    let sums: Vec<f64> = [1usize, 2, 4]
        .iter()
        .map(|&n| {
            run_native("pot3d", n, 1)
                .iter()
                .map(|(_, a, _)| a)
                .sum::<f64>()
        })
        .collect();
    for w in sums.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-5 * w[0].abs().max(1.0),
            "pot3d solution depends on the decomposition: {sums:?}"
        );
    }
}

#[test]
fn kernels_are_deterministic_across_runs() {
    for name in ["soma", "minisweep", "sph-exa", "hpgmgfv"] {
        let a: f64 = run_native(name, 2, 2).iter().map(|(_, c, _)| c).sum();
        let b: f64 = run_native(name, 2, 2).iter().map(|(_, c, _)| c).sum();
        assert_eq!(a, b, "{name}: nondeterministic checksum");
    }
}

#[test]
fn kernels_make_progress() {
    // Stepping must change the state (no trivially frozen kernels).
    for name in BENCHMARK_NAMES {
        // hpgmgfv converges toward a fixed point but within 2 cycles
        // the solution still moves; soma moves beads; etc.
        let out = run_native(name, 2, 2);
        let moved = out.iter().any(|(b, a, _)| (a - b).abs() > 1e-12);
        assert!(moved, "{name}: state did not change after stepping");
    }
}
