//! Cross-crate integration: run the full simulated suite end-to-end on
//! both clusters and check the pipeline's internal consistency
//! (machine model → node model → DES → counters → power → energy).

use spechpc::prelude::*;

fn quick() -> RunConfig {
    RunConfig::default().with_repetitions(2).with_trace(false)
}

#[test]
fn tiny_suite_full_node_pipeline_consistency() {
    for cluster in [presets::cluster_a(), presets::cluster_b()] {
        let suite = Suite::tiny_full_node(&cluster);
        let report = suite.run(&cluster, quick());
        assert!(report.is_complete(), "{}", report.render());
        assert_eq!(report.results.len(), 9);
        let rapl = RaplModel::new(&cluster);
        for r in &report.results {
            // Energy = power × runtime, exactly.
            let expect = r.power.total() * r.runtime_s;
            assert!(
                (r.energy.total_j() - expect).abs() < 1e-6 * expect,
                "{}: energy integration inconsistent",
                r.benchmark
            );
            // Power between the allocated baseline and the TDP.
            assert!(r.power.package_w >= rapl.baseline_power(r.nodes_used));
            assert!(r.power.package_w <= rapl.tdp(r.nodes_used) + 1e-9);
            // Counters: vectorization ratio within [0, 1], bandwidth
            // below the hardware limit.
            let v = r.counters.vectorization_ratio();
            assert!((0.0..=1.0).contains(&v), "{}: ratio {v}", r.benchmark);
            let bw = r.counters.mem_bandwidth();
            let limit = cluster.node.saturated_mem_bandwidth() * r.nodes_used as f64;
            assert!(
                bw <= limit * 1.02,
                "{}: {bw} GB/s exceeds the {limit} GB/s envelope",
                r.benchmark
            );
            // DRAM is a minor contributor to energy (§4.3.2).
            assert!(
                r.energy.dram_fraction() < 0.25,
                "{}: DRAM energy share {}",
                r.benchmark,
                r.energy.dram_fraction()
            );
            // Statistics bracket the mean.
            assert!(r.step_seconds_min <= r.step_seconds);
            assert!(r.step_seconds_max >= r.step_seconds);
        }
        // The victim-L3 effect: the strong saturators show more L3 than
        // memory volume (§4.1.4).
        let pot3d = report.result("pot3d").unwrap();
        assert!(pot3d.counters.shows_victim_l3());
    }
}

#[test]
fn small_suite_multi_node_runs_on_both_clusters() {
    let runner = SimRunner::new(quick());
    for cluster in [presets::cluster_a(), presets::cluster_b()] {
        let two_nodes = 2 * cluster.node.cores();
        for name in ["tealeaf", "weather", "soma"] {
            let b = benchmark_by_name(name).unwrap();
            let r = runner
                .run(&cluster, &*b, WorkloadClass::Small, two_nodes)
                .expect("multi-node run");
            assert_eq!(r.nodes_used, 2);
            assert!(r.runtime_s > 0.0);
        }
    }
}

#[test]
fn suite_report_renders_complete_table() {
    let cluster = presets::cluster_a();
    let suite = Suite {
        class: WorkloadClass::Tiny,
        nranks: 36,
    };
    let report = suite.run(&cluster, quick());
    let text = report.render();
    for name in BENCHMARK_NAMES {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn workload_classes_scale_the_footprint() {
    // small must be a strictly larger problem than tiny for every code.
    for b in all_benchmarks() {
        let tiny = b.signature(WorkloadClass::Tiny);
        let small = b.signature(WorkloadClass::Small);
        assert!(
            small.flops * small.steps as f64 > tiny.flops * tiny.steps as f64,
            "{}: small not larger than tiny",
            b.meta().name
        );
        assert!(
            small.working_set_bytes >= tiny.working_set_bytes,
            "{}: small working set shrank",
            b.meta().name
        );
    }
}

#[test]
fn spec_names_cover_both_measured_suites() {
    for b in all_benchmarks() {
        let m = b.meta();
        let t = m.spec_name(WorkloadClass::Tiny);
        let s = m.spec_name(WorkloadClass::Small);
        assert!(t.starts_with('5') && t.ends_with("_t"), "{t}");
        assert!(s.starts_with('6') && s.ends_with("_s"), "{s}");
    }
}
