//! Power and energy study (paper Fig. 3/4, §4.2–4.3): per-benchmark
//! power at the full node, hot/cool classification, the Z-plot with
//! E/EDP minima, the zero-core baseline comparison across CPU
//! generations, and the race-to-idle verdict.
//!
//! ```text
//! cargo run --release --example power_energy
//! ```

use spechpc::harness::experiments::node_level::fig1;
use spechpc::harness::experiments::power_energy::{baseline_table, fig3, fig4, hot_cool_table};
use spechpc::power::classify::{classify_heat, HeatClass};
use spechpc::power::race::{analyze, concurrency_sweep, saturating_speedup};
use spechpc::prelude::*;

fn main() {
    let config = RunConfig::default();
    let a = presets::cluster_a();
    let b = presets::cluster_b();

    println!("== §4.2.1 hot and cool benchmarks (full node, tiny suite) ==");
    println!(
        "{:<12} {:>14} {:>8} {:>6} | {:>14} {:>8} {:>6}",
        "benchmark", "A [W/socket]", "%TDP", "class", "B [W/socket]", "%TDP", "class"
    );
    let f1a = fig1(&a, &config, 8).expect("sweep A");
    let f1b = fig1(&b, &config, 8).expect("sweep B");
    let hca = hot_cool_table(&f1a, &a);
    let hcb = hot_cool_table(&f1b, &b);
    for ((name, wa, fa), (_, wb, fb)) in hca.iter().zip(&hcb) {
        let cls = |f: f64| {
            if f >= 0.95 {
                "hot"
            } else if f >= 0.90 {
                "warm"
            } else {
                "cool"
            }
        };
        println!(
            "{name:<12} {wa:>14.0} {:>7.0}% {:>6} | {wb:>14.0} {:>7.0}% {:>6}",
            fa * 100.0,
            cls(*fa),
            fb * 100.0,
            cls(*fb)
        );
    }

    println!("\n== Fig. 3 — zero-core baseline extrapolation ==");
    let f3a = fig3(&f1a, &a);
    let f3b = fig3(&f1b, &b);
    println!(
        "{}: extrapolated {:.0} W/socket (configured {:.0} W, {:.0}% of TDP)",
        a.name,
        f3a.extrapolated_baseline_w,
        a.node.cpu.baseline_power_w,
        100.0 * a.node.cpu.baseline_power_w / a.node.cpu.tdp_w
    );
    println!(
        "{}: extrapolated {:.0} W/socket (configured {:.0} W, {:.0}% of TDP)",
        b.name,
        f3b.extrapolated_baseline_w,
        b.node.cpu.baseline_power_w,
        100.0 * b.node.cpu.baseline_power_w / b.node.cpu.tdp_w
    );

    println!("\n== §4.2.3 baseline power across CPU generations ==");
    let sb = presets::sandy_bridge_node();
    print!("{}", baseline_table(&[&a.node, &b.node, &sb]).render());

    println!(
        "\n== Fig. 4 — Z-plot (energy vs. speedup) for pot3d on {} ==",
        a.name
    );
    let f4 = fig4(&f1a);
    let z = f4
        .zplots
        .iter()
        .find(|z| z.label.starts_with("pot3d"))
        .expect("pot3d swept");
    print!("{}", z.render_ascii(60, 14));
    let e_min = z.energy_minimum().unwrap();
    let edp_min = z.edp_minimum().unwrap();
    println!(
        "E minimum at {} cores ({:.0} kJ); EDP minimum at {} cores — separated by {} sweep step(s).",
        e_min.resources,
        e_min.value / 1e3,
        edp_min.resources,
        z.min_separation_steps().unwrap()
    );

    println!("\n== §4.3.1 race-to-idle vs. concurrency throttling ==");
    for (label, cpu, domain, s_max) in [
        (
            "Ice Lake (ClusterA)",
            &a.node.cpu,
            a.node.cores_per_domain(),
            6.0,
        ),
        (
            "Sapphire Rapids (ClusterB)",
            &b.node.cpu,
            b.node.cores_per_domain(),
            6.0,
        ),
        ("Sandy Bridge (2012)", &sb.cpu, sb.cores(), 3.5),
    ] {
        let sweep = concurrency_sweep(
            cpu,
            domain,
            0.4,
            100.0,
            saturating_speedup(s_max, 1.0),
            move |n| (s_max / n as f64).min(1.0),
        );
        let v = analyze(&sweep).unwrap();
        println!(
            "{label:<28} E-opt {:>2} cores, EDP-opt {:>2}, throttling saves {:>4.1}% → {}",
            v.energy_optimal_cores,
            v.edp_optimal_cores,
            v.throttling_gain * 100.0,
            if v.race_to_idle_is_optimal {
                "race-to-idle wins"
            } else {
                "concurrency throttling pays off"
            }
        );
    }

    println!("\n== heat classes per §4.2.1 calibration ==");
    for bench in all_benchmarks() {
        let heat = bench.signature(WorkloadClass::Tiny).heat;
        let c = classify_heat(&a.node.cpu, heat);
        let marker = match c {
            HeatClass::Hot => "🔥 hot",
            HeatClass::Warm => "warm",
            HeatClass::Cool => "cool",
        };
        println!("{:<12} heat {:.2} → {marker}", bench.meta().name, heat);
    }
}
