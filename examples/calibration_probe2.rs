//! Internal probe: minisweep detail + MPI fractions + power numbers.
use spechpc::prelude::*;

fn main() {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let runner = SimRunner::new(RunConfig { repetitions: 1, ..RunConfig::default() });
    let ms = benchmark_by_name("minisweep").unwrap();
    for (cl, n) in [(&a, 58), (&a, 59), (&a, 72), (&b, 104)] {
        let r = runner.run(cl, &*ms, WorkloadClass::Tiny, n).unwrap();
        println!("minisweep {} n={n}: step {:.4} s  mpi {:.1}%  dominant {:?}",
            r.cluster, r.step_seconds, r.breakdown.mpi_fraction()*100.0, r.breakdown.dominant_mpi());
    }
    println!();
    println!("== power at full node (paper: sph-exa 244/333 W/socket, soma 222/298) ==");
    for name in ["sph-exa", "soma", "pot3d", "tealeaf", "lbm", "minisweep"] {
        let bench = benchmark_by_name(name).unwrap();
        let ra = runner.run(&a, &*bench, WorkloadClass::Tiny, 72).unwrap();
        let rb = runner.run(&b, &*bench, WorkloadClass::Tiny, 104).unwrap();
        println!("{name:10} A pkg/socket {:5.1} W dram/dom {:4.1} W | B pkg/socket {:5.1} W dram/dom {:4.1} W | mpiA {:4.1}%",
            ra.power.package_w/2.0, ra.power.dram_w/4.0, rb.power.package_w/2.0, rb.power.dram_w/8.0,
            ra.breakdown.mpi_fraction()*100.0);
    }
}
