//! Multi-node scaling study (paper Fig. 5/6, §5): run the small suite
//! over 1–16 nodes on both clusters, classify every benchmark into the
//! §5.1 scaling cases, show the soma anomaly and the power/energy
//! scaling.
//!
//! ```text
//! cargo run --release --example multi_node [max_nodes]
//! ```

use spechpc::harness::experiments::multi_node::{
    comm_breakdown, fig5, fig6, scaling_cases, soma_anomaly,
};
use spechpc::prelude::*;

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut nodes = vec![1usize];
    while *nodes.last().unwrap() * 2 <= max_nodes {
        let n = nodes.last().unwrap() * 2;
        nodes.push(n);
    }
    let config = RunConfig::default().with_repetitions(1);

    for cluster in [presets::cluster_a(), presets::cluster_b()] {
        let cores = cluster.node.cores();
        println!(
            "== {}: small suite over {:?} nodes (up to {} ranks) ==",
            cluster.name,
            nodes,
            nodes.last().unwrap() * cores
        );
        let f5 = fig5(&cluster, &config, &nodes).expect("multi-node sweep failed");

        println!("\n-- Fig. 5: speedup / per-node bandwidth / aggregate volume --");
        println!(
            "{:<12} {:>6} {:>9} {:>12} {:>14} {:>7}",
            "benchmark", "nodes", "speedup", "BW/node", "volume/step", "MPI"
        );
        for s in &f5.sweeps {
            let t1 = s.results[0].step_seconds;
            for r in &s.results {
                let steps = r.runtime_s / r.step_seconds;
                println!(
                    "{:<12} {:>6} {:>9.2} {:>9.0} GB/s {:>11.1} GB {:>6.1}%",
                    s.benchmark,
                    r.nodes_used,
                    t1 / r.step_seconds,
                    r.mem_bandwidth_per_node(),
                    r.counters.mem_bytes / steps / 1e9,
                    r.breakdown.mpi_fraction() * 100.0
                );
            }
        }

        println!("\n-- §5.1 scaling-case classification --");
        for (name, case) in scaling_cases(&f5) {
            println!("{name:<12} {case}");
        }

        println!("\n-- §5.1.2 the soma anomaly --");
        let soma = soma_anomaly(&f5).expect("soma swept");
        for ((n, bw), (_, vol)) in soma.per_node_bw.iter().zip(&soma.volume) {
            println!(
                "  {n:>2} node(s): {bw:>5.0} GB/s per node, {:>6.1} GB aggregate per step",
                vol / 1e9
            );
        }
        println!(
            "  MPI_Allreduce share at scale: {:.0} % (the suite's most reduction-bound code)",
            soma.allreduce_fraction * 100.0
        );

        println!("\n-- §5 communication-routine ranking at the largest node count --");
        let mut ranking = comm_breakdown(&f5);
        ranking.sort_by(|a, b| b.2.total_cmp(&a.2));
        for (bench, kind, frac) in ranking.iter().take(10) {
            println!("  {bench:<12} {kind:<14} {:>5.1} %", frac * 100.0);
        }

        println!("\n-- Fig. 6: total power and energy scaling --");
        let f6 = fig6(&f5);
        for (name, pts) in &f6.series {
            let parts: Vec<String> = pts
                .iter()
                .map(|(n, kw, mj)| format!("{n}n: {kw:.1} kW/{:.0} kJ", mj * 1e3))
                .collect();
            println!("  {name:<12} {}", parts.join("  "));
        }
        println!();
    }
}
