//! Quickstart: run one benchmark of the simulated SPEChpc 2021 suite on
//! both clusters of the paper and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use spechpc::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tealeaf".into());
    let bench = benchmark_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'; available: {BENCHMARK_NAMES:?}");
        std::process::exit(1);
    });

    println!("SPEChpc 2021 case-study reproduction — quickstart");
    println!("benchmark: {} ({})", name, bench.meta().numerics);
    println!();

    let runner = SimRunner::new(RunConfig::default());
    for cluster in [presets::cluster_a(), presets::cluster_b()] {
        let cores = cluster.node.cores();
        let r = runner
            .run(&cluster, &*bench, WorkloadClass::Tiny, cores)
            .expect("simulation failed");
        let roof = Roofline::of_node(&cluster.node);
        println!(
            "{} — full node ({} cores, {} ccNUMA domains):",
            cluster.name,
            cores,
            cluster.node.numa_domains()
        );
        println!(
            "  tiny workload runtime  : {:8.1} s  ({:.4} s/step ± {:.1}%)",
            r.runtime_s,
            r.step_seconds,
            100.0 * (r.step_seconds_max - r.step_seconds_min) / r.step_seconds
        );
        println!(
            "  performance            : {:8.1} Gflop/s (DP), {:.1} Gflop/s vectorized",
            r.counters.dp_gflops(),
            r.counters.dp_avx_gflops()
        );
        println!(
            "  memory bandwidth       : {:8.1} GB/s of {:.0} GB/s saturated ({}.)",
            r.counters.mem_bandwidth(),
            roof.mem_bandwidth_gbps,
            if roof.is_memory_bound(r.counters.intensity()) {
                "memory-bound"
            } else {
                "compute-bound"
            }
        );
        println!(
            "  MPI share of runtime   : {:8.1} %",
            r.breakdown.mpi_fraction() * 100.0
        );
        println!(
            "  power (package + DRAM) : {:8.1} W  ({:.0} % of node TDP)",
            r.power.total(),
            100.0 * r.power.package_w / cluster.node.tdp()
        );
        println!(
            "  energy to solution     : {:8.1} kJ  (EDP {:.2e} J·s, DRAM share {:.1} %)",
            r.energy.total_j() / 1e3,
            r.energy.edp(),
            r.energy.dram_fraction() * 100.0
        );
        println!();
    }
}
