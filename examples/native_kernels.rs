//! Run the real mini-kernels natively on host threads: data actually
//! moves through the in-process message layer, and every kernel's
//! numerical invariants are verified (conservation laws, residual
//! decrease, positivity).
//!
//! ```text
//! cargo run --release --example native_kernels [ranks] [steps]
//! ```

use spechpc::prelude::*;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!(
        "native execution: {ranks} ranks on host threads, {steps} steps each, test-scale configs\n"
    );
    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "benchmark", "wall [ms]", "checksum", "invariants"
    );

    for bench in all_benchmarks() {
        let name = bench.meta().name;
        let t0 = std::time::Instant::now();
        let outcomes = ThreadWorld::run(ranks, |rank, comm| {
            let mut kernel = bench.make_kernel(WorkloadClass::Test, rank, ranks, 42);
            for _ in 0..steps {
                kernel.step(comm);
            }
            (kernel.checksum(), kernel.validate())
        });
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let checksum: f64 = outcomes.iter().map(|(c, _)| c).sum();
        let failures: Vec<String> = outcomes
            .into_iter()
            .enumerate()
            .filter_map(|(r, (_, v))| v.err().map(|e| format!("rank {r}: {e}")))
            .collect();
        let verdict = if failures.is_empty() {
            "ok".to_string()
        } else {
            failures.join("; ")
        };
        println!("{name:<12} {wall:>12.1} {checksum:>14.4} {verdict:>10}");
    }

    println!("\nreproducibility check (same seed ⇒ identical checksums):");
    let bench = benchmark_by_name("soma").unwrap();
    let run = || -> f64 {
        ThreadWorld::run(ranks, |rank, comm| {
            let mut k = bench.make_kernel(WorkloadClass::Test, rank, ranks, 7);
            for _ in 0..steps {
                k.step(comm);
            }
            k.checksum()
        })
        .iter()
        .sum()
    };
    let a = run();
    let b = run();
    println!("  soma checksum run 1: {a:.9}");
    println!("  soma checksum run 2: {b:.9}");
    assert_eq!(a, b, "determinism violated");
    println!("  deterministic ✓");
}
