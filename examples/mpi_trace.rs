//! MPI tracing study: record ITAC-style timelines of the two pathology
//! cases (minisweep@59, lbm@71), print likwid-perfctr-style counter
//! reports, and export the traces as CSV.
//!
//! ```text
//! cargo run --release --example mpi_trace [outdir]
//! ```

use spechpc::analysis::perfctr;
use spechpc::prelude::*;
use spechpc::simmpi::export;

fn main() {
    let outdir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&outdir).expect("create output directory");

    let cluster = presets::cluster_a();
    // Tracing is off by default; this study is *about* the timelines.
    let runner = SimRunner::new(RunConfig::default().with_trace(true));

    for (name, nranks) in [("minisweep", 59usize), ("lbm", cluster.node.cores() - 1)] {
        let bench = benchmark_by_name(name).unwrap();
        let r = runner
            .run(&cluster, &*bench, WorkloadClass::Tiny, nranks)
            .expect("simulation failed");

        println!("=== {name} @ {nranks} ranks on {} ===", cluster.name);
        println!("step time {:.4} s; MPI breakdown:", r.step_seconds);
        for kind in EventKind::ALL {
            let f = r.breakdown.fraction(kind);
            if f > 0.001 {
                println!("  {:<14} {:>6.1} %", kind.to_string(), f * 100.0);
            }
        }

        println!("\nITAC-style timeline (first 12 ranks):");
        for line in r.timeline.render_ascii(96).lines().take(12) {
            println!("  {line}");
        }

        println!("\nlikwid-perfctr-style report:");
        print!(
            "{}",
            perfctr::render_all(&r.counters, &format!("{name}_tiny"))
        );

        let path = format!("{outdir}/{name}_{nranks}.trace.csv");
        let csv = export::to_csv(&r.timeline);
        std::fs::write(&path, &csv).expect("write trace");
        println!(
            "trace: {} events written to {path} ({} KiB)\n",
            r.timeline.events.len(),
            csv.len() / 1024
        );

        // Round-trip sanity.
        let back = export::from_csv(&csv).expect("parse back");
        assert_eq!(back.events.len(), r.timeline.events.len());
    }
}
