//! Node-level scaling study (paper Fig. 1/2, §4.1): sweep the tiny
//! suite across the cores of one node on both clusters, print the
//! parallel-efficiency, acceleration-factor and vectorization tables,
//! and show the minisweep/lbm pathology insets.
//!
//! ```text
//! cargo run --release --example node_scaling [step]
//! ```
//! `step` is the core-count sampling stride (default 4; the paper uses
//! 1, which takes a few minutes here).

use spechpc::harness::experiments::node_level::{
    acceleration_table, efficiency_table, fig1, fig2, vectorization_table,
};
use spechpc::prelude::*;

fn main() {
    let step: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let config = RunConfig::default();

    let a = presets::cluster_a();
    let b = presets::cluster_b();
    println!(
        "running the tiny suite across 1..{} cores of {} and 1..{} cores of {} (stride {step})…",
        a.node.cores(),
        a.name,
        b.node.cores(),
        b.name
    );
    let f1a = fig1(&a, &config, step).expect("ClusterA sweep failed");
    let f1b = fig1(&b, &config, step).expect("ClusterB sweep failed");

    println!("\n== §4.1.1 parallel efficiency: one ccNUMA domain → full node [%] ==");
    println!("{:<12} {:>9} {:>9}", "benchmark", a.name, b.name);
    let ea = efficiency_table(&f1a, &a);
    let eb = efficiency_table(&f1b, &b);
    for ((name, ea), (_, eb)) in ea.iter().zip(&eb) {
        println!("{name:<12} {ea:>9.0} {eb:>9.0}");
    }

    println!("\n== §4.1.2 acceleration factor: ClusterB over ClusterA (full node) ==");
    for (name, acc) in acceleration_table(&f1a, &f1b) {
        println!("{name:<12} {acc:>6.2}");
    }

    println!("\n== §4.1.3 vectorization ratio [% of flops in AVX-512] ==");
    for (name, v) in vectorization_table(&f1a) {
        println!("{name:<12} {v:>6.1}");
    }

    println!(
        "\n== Fig. 2 insets — the two node-level pathologies on {} ==",
        a.name
    );
    let f2 = fig2(&a, &config, a.node.cores()).expect("fig2 failed");
    let ms = f2.minisweep_59;
    println!(
        "minisweep @ 59 processes: {:.3} s/step — {:.0}% MPI_Recv, {:.0}% compute (dominant: {:?})",
        ms.step_seconds,
        ms.recv_fraction * 100.0,
        ms.compute_fraction * 100.0,
        ms.dominant
    );
    println!("ITAC-style timeline (r = MPI_Recv, # = compute, s = send):");
    for line in f2.minisweep_inset.lines().take(16) {
        println!("  {line}");
    }
    println!("  … ({} ranks total)", ms.nranks);

    let lb = f2.lbm_odd;
    println!(
        "\nlbm @ {} processes: {:.3} s/step — {:.0}% compute, {:.0}% wait+barrier",
        lb.nranks,
        lb.step_seconds,
        lb.compute_fraction * 100.0,
        (lb.wait_fraction + lb.barrier_fraction) * 100.0
    );
    for line in f2.lbm_inset.lines().take(12) {
        println!("  {line}");
    }
    println!("  … ({} ranks total)", lb.nranks);
}
