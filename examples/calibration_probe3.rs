//! Internal probe: multi-node small-suite behaviour.
use spechpc::prelude::*;
use spechpc::harness::experiments::multi_node::{fig5, scaling_cases};

fn main() {
    let cfg = RunConfig { repetitions: 1, trace: true, ..RunConfig::default() };
    for cluster in [presets::cluster_a(), presets::cluster_b()] {
        println!("== {} small suite, nodes 1/2/4/8 ==", cluster.name);
        let f5 = fig5(&cluster, &cfg, &[1, 2, 4, 8]).unwrap();
        for s in &f5.sweeps {
            let e = s.evidence();
            let v = s.mem_volume();
            let vol_growth = v.last().unwrap().1 / v[0].1;
            let bw1 = s.results[0].mem_bandwidth_per_node();
            let bwn = s.results.last().unwrap().mem_bandwidth_per_node();
            println!("{:11} eff {:5.2}  cache_gain {:5.2}  comm {:4.1}%  volx {:4.2}  bw/node {:5.0}->{:5.0}",
                s.benchmark, e.efficiency(), e.cache_gain(),
                e.comm_fraction*100.0, vol_growth, bw1, bwn);
        }
        for (b, c) in scaling_cases(&f5) {
            print!("{b}:{c:?} ");
        }
        println!("\n");
    }
}
