//! Internal calibration probe (not part of the deliverable examples).
use spechpc::prelude::*;

fn main() {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let runner = SimRunner::new(RunConfig { repetitions: 1, trace: false, ..RunConfig::default() });

    println!("== §4.1.1 parallel efficiency (domain -> node) & §4.1.2 acceleration B/A ==");
    for bench in all_benchmarks() {
        let name = bench.meta().name;
        let ra_dom = runner.run(&a, &*bench, WorkloadClass::Tiny, 18).unwrap();
        let ra_node = runner.run(&a, &*bench, WorkloadClass::Tiny, 72).unwrap();
        let rb_dom = runner.run(&b, &*bench, WorkloadClass::Tiny, 13).unwrap();
        let rb_node = runner.run(&b, &*bench, WorkloadClass::Tiny, 104).unwrap();
        let eff_a = 100.0 * (ra_dom.step_seconds / ra_node.step_seconds) / 4.0;
        let eff_b = 100.0 * (rb_dom.step_seconds / rb_node.step_seconds) / 8.0;
        let accel = ra_node.step_seconds / rb_node.step_seconds;
        println!("{name:11} effA {eff_a:6.1}%  effB {eff_b:6.1}%  accel B/A {accel:5.2}  bwA_node {:6.1} GB/s  mpiA {:4.1}%",
            ra_node.counters.mem_bandwidth(), 0.0);
    }
}
