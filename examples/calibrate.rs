//! Calibration probe: prints the model's headline numbers next to the
//! targets from the paper, so drift is visible after touching any of
//! the machine, kernel or power parameters.
//!
//! Three sections (formerly three separate probes):
//!
//! 1. node-level efficiency/acceleration (§4.1.1–§4.1.2 targets),
//! 2. minisweep's serialization collapse and the §4.2.1 per-socket
//!    power table,
//! 3. multi-node small-suite scaling evidence (§5.1).
//!
//! Everything funnels through the harness's parallel, cached
//! [`Executor`], so a rerun after an unrelated edit replays from cache
//! in milliseconds:
//!
//! ```text
//! cargo run --release --example calibrate
//! ```

use spechpc::harness::experiments::multi_node::{fig5_with, scaling_cases};
use spechpc::prelude::*;

fn main() {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let exec = Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default(),
    );

    // -- 1. node level: one ccNUMA domain vs. the full node -----------
    println!("== §4.1.1 parallel efficiency (domain -> node) & §4.1.2 acceleration B/A ==");
    for bench in all_benchmarks() {
        let name = bench.meta().name;
        let run = |cl: &ClusterSpec, n| {
            exec.run_one(cl, &RunSpec::new(name, WorkloadClass::Tiny, n))
                .unwrap()
        };
        let (ra_dom, ra_node) = (run(&a, 18), run(&a, 72));
        let (rb_dom, rb_node) = (run(&b, 13), run(&b, 104));
        let eff_a = 100.0 * (ra_dom.step_seconds / ra_node.step_seconds) / 4.0;
        let eff_b = 100.0 * (rb_dom.step_seconds / rb_node.step_seconds) / 8.0;
        let accel = ra_node.step_seconds / rb_node.step_seconds;
        println!(
            "{name:11} effA {eff_a:6.1}%  effB {eff_b:6.1}%  accel B/A {accel:5.2}  \
             bwA_node {:6.1} GB/s  mpiA {:4.1}%",
            ra_node.counters.mem_bandwidth(),
            ra_node.breakdown.mpi_fraction() * 100.0
        );
    }

    // -- 2. minisweep collapse + per-socket power ---------------------
    println!();
    println!("== §4.1.5 minisweep serialization (58 -> 59 collapse) ==");
    for (cl, n) in [(&a, 58), (&a, 59), (&a, 72), (&b, 104)] {
        let r = exec
            .run_one(cl, &RunSpec::new("minisweep", WorkloadClass::Tiny, n))
            .unwrap();
        println!(
            "minisweep {} n={n}: step {:.4} s  mpi {:.1}%  dominant {:?}",
            r.cluster,
            r.step_seconds,
            r.breakdown.mpi_fraction() * 100.0,
            r.breakdown.dominant_mpi()
        );
    }
    println!();
    println!("== §4.2.1 power at full node (paper: sph-exa 244/333 W/socket, soma 222/298) ==");
    for name in ["sph-exa", "soma", "pot3d", "tealeaf", "lbm", "minisweep"] {
        let ra = exec
            .run_one(&a, &RunSpec::new(name, WorkloadClass::Tiny, 72))
            .unwrap();
        let rb = exec
            .run_one(&b, &RunSpec::new(name, WorkloadClass::Tiny, 104))
            .unwrap();
        println!(
            "{name:10} A pkg/socket {:5.1} W dram/dom {:4.1} W | \
             B pkg/socket {:5.1} W dram/dom {:4.1} W | mpiA {:4.1}%",
            ra.power.package_w / 2.0,
            ra.power.dram_w / 4.0,
            rb.power.package_w / 2.0,
            rb.power.dram_w / 8.0,
            ra.breakdown.mpi_fraction() * 100.0
        );
    }

    // -- 3. multi-node small suite ------------------------------------
    println!();
    for cluster in [&a, &b] {
        println!("== {} small suite, nodes 1/2/4/8 ==", cluster.name);
        let f5 = fig5_with(&exec, cluster, &[1, 2, 4, 8]).unwrap();
        for s in &f5.sweeps {
            let e = s.evidence();
            let v = s.mem_volume();
            let vol_growth = v.last().unwrap().1 / v[0].1;
            let bw1 = s.results[0].mem_bandwidth_per_node();
            let bwn = s.results.last().unwrap().mem_bandwidth_per_node();
            println!(
                "{:11} eff {:5.2}  cache_gain {:5.2}  comm {:4.1}%  volx {:4.2}  \
                 bw/node {:5.0}->{:5.0}",
                s.benchmark,
                e.efficiency(),
                e.cache_gain(),
                e.comm_fraction * 100.0,
                vol_growth,
                bw1,
                bwn
            );
        }
        for (bench, case) in scaling_cases(&f5) {
            print!("{bench}:{case:?} ");
        }
        println!("\n");
    }
}
