//! Typed failure modes of the execution layer.
//!
//! The harness used to panic its way out of trouble (unknown benchmark
//! names, poisoned locks, worker panics). Under fault injection a
//! failed run is an *expected* outcome — a crashed rank must surface as
//! a report line, not tear down the whole grid — so every way a run can
//! go wrong is a [`HarnessError`] variant and
//! [`Executor::run_all`](crate::exec::Executor::run_all) degrades to
//! partial results plus a per-spec failure report.

use spechpc_simmpi::engine::SimError;

/// Everything that can go wrong executing one grid point.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The simulation itself failed (deadlock, injected crash,
    /// cancellation, invalid program …).
    Sim(SimError),
    /// The run spec names a benchmark the registry does not know.
    UnknownBenchmark { name: String },
    /// The worker running this point panicked; the panic was caught at
    /// the run boundary so the rest of the grid kept going.
    Panic { label: String, message: String },
    /// The run exceeded the per-run wall-clock budget and was
    /// cooperatively cancelled.
    Timeout { label: String, limit_s: f64 },
}

impl HarnessError {
    /// Whether a retry could plausibly succeed. Simulation errors are
    /// deterministic — the same inputs fail the same way — and so are
    /// panics; only a wall-clock timeout can be an artifact of host
    /// contention rather than of the run itself.
    pub fn is_transient(&self) -> bool {
        matches!(self, HarnessError::Timeout { .. })
    }

    /// The rank an injected crash blamed, if this error is one.
    pub fn failed_rank(&self) -> Option<usize> {
        match self {
            HarnessError::Sim(SimError::RankFailed { rank, .. }) => Some(*rank),
            _ => None,
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Sim(e) => write!(f, "{e}"),
            HarnessError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark '{name}' in run spec")
            }
            HarnessError::Panic { label, message } => {
                write!(f, "worker panicked running {label}: {message}")
            }
            HarnessError::Timeout { label, limit_s } => {
                write!(f, "{label} exceeded the {limit_s:.3}s per-run timeout")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for HarnessError {
    fn from(e: SimError) -> Self {
        HarnessError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_timeouts_are_transient() {
        assert!(HarnessError::Timeout {
            label: "x".into(),
            limit_s: 1.0
        }
        .is_transient());
        assert!(!HarnessError::Sim(SimError::Cancelled).is_transient());
        assert!(!HarnessError::UnknownBenchmark { name: "hpl".into() }.is_transient());
        assert!(!HarnessError::Panic {
            label: "x".into(),
            message: "boom".into()
        }
        .is_transient());
    }

    #[test]
    fn display_and_blame_are_informative() {
        let e = HarnessError::Sim(SimError::RankFailed {
            rank: 3,
            op_index: 7,
            at_s: 0.5,
        });
        assert_eq!(e.failed_rank(), Some(3));
        assert!(e.to_string().contains("rank 3"));
        let u = HarnessError::UnknownBenchmark { name: "hpl".into() };
        assert!(u.to_string().contains("unknown benchmark 'hpl'"));
        assert_eq!(u.failed_rank(), None);
    }
}
