//! # spechpc-harness — SPEC-like run rules and experiment drivers
//!
//! Glues the substrates together: the [`runner`] executes one benchmark
//! configuration on one simulated cluster (node performance model →
//! per-rank MPI programs → discrete-event replay → counters, trace
//! breakdowns, power and energy), honouring the paper's methodology
//! (§3): warm-up steps with global synchronization before measurement,
//! repeated executions with min/max/avg statistics, compact pinning at
//! fixed base clock.
//!
//! [`experiments`] holds one driver per table/figure of the paper — the
//! per-experiment index lives in `DESIGN.md` and the measured-vs-paper
//! comparison in `EXPERIMENTS.md`.
//!
//! All drivers execute through the [`exec::Executor`]: runs are
//! memoized content-addressed by their [`cache::RunKey`] and experiment
//! grids are spread across host cores with deterministic (byte-stable)
//! result assembly. See `docs/ARCHITECTURE.md` for the full data flow.

pub mod api;
pub mod cache;
pub mod chaos;
pub mod epoll;
pub mod error;
pub mod exec;
pub mod experiments;
pub mod faultcfg;
pub mod fleet;
pub mod json;
pub mod obs;
pub mod plan;
pub mod report;
pub mod runner;
pub mod serve;
pub mod snapshot;
pub mod suite;

pub use api::{ApiError, RunRequest, RunResponse, SuiteRequest, SuiteResponse};
pub use cache::{CacheMetrics, RunCache, RunKey};
pub use chaos::{load_chaos_plan, parse_chaos_plan, ChaosPlan, ChaosProxy, ChaosShutdownHandle};
pub use error::HarnessError;
pub use exec::{ExecConfig, ExecMetrics, Executor, GridFailure, GridReport, RunSpec};
pub use fleet::{
    peer_fetcher, run_loadgen, Coordinator, FleetConfig, FleetShutdownHandle, HashRing,
    LoadgenConfig, LoadgenReport, WorkerRegistry,
};
pub use plan::{dispatch_plan, PlanJob, PlanRequest, PlanResponse, PlanVariant};
pub use runner::{RunConfig, RunResult, SimRunner};
pub use serve::{install_signal_handlers, ServeConfig, Server, ShutdownHandle};
pub use suite::{Suite, SuiteReport};
