//! Parallel, cached, fault-tolerant execution of experiment grids.
//!
//! The [`Executor`] is the single entry point every experiment driver,
//! the suite, the CLI and the benches funnel their runs through. It
//! combines:
//!
//! * the [`RunCache`] — each run is looked up
//!   by its [`RunKey`] before the simulation is
//!   ever constructed, and stored afterwards;
//! * a work-stealing thread pool over the host cores
//!   ([`Executor::run_all`]) with **deterministic result assembly**:
//!   workers claim grid points through an atomic cursor and write into
//!   pre-allocated slots, so the output order (and therefore every
//!   rendered table) is byte-identical to a serial run regardless of
//!   the job count or scheduling interleavings. The simulation itself
//!   is pure — a result never depends on *when* it was computed;
//! * **graceful degradation**: a failed grid point (injected rank
//!   crash, deadlock, worker panic, per-run timeout) never takes the
//!   grid down. Panics are caught at the run boundary, a per-run
//!   wall-clock budget cancels runaway simulations cooperatively,
//!   transient failures retry with bounded backoff, and
//!   [`Executor::run_all`] always returns a [`GridReport`] carrying
//!   the completed results plus a per-spec failure report.
//!
//! Traced runs ([`Executor::run_traced`]) bypass the cache: timelines
//! are large and only the Fig. 2 insets and CSV export want them.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use spechpc_kernels::common::benchmark::Benchmark;
use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::registry::benchmark_by_name;
use spechpc_machine::cluster::ClusterSpec;

use crate::cache::{CacheMetrics, RunCache, RunKey};
use crate::error::HarnessError;
use crate::runner::{RunConfig, RunResult, SimRunner};

/// Resolver for results computed elsewhere in a fleet: given a
/// [`RunKey`], return the verified [`RunResult`] a peer daemon already
/// has cached, or `None` to fall through to local simulation. Consulted
/// only after a local cache miss; a hit is stored locally so subsequent
/// replays answer from memory (see [`Executor::with_peer_fetch`]).
pub type PeerFetch = Arc<dyn Fn(&RunKey) -> Option<RunResult> + Send + Sync>;

/// How the executor schedules, memoizes and supervises runs.
///
/// Marked `#[non_exhaustive]`: construct with [`ExecConfig::default`]
/// plus the `with_*` builders, so new scheduling knobs stop being
/// breaking changes for downstream crates.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Worker threads for grid execution; `0` means one per available
    /// host core.
    pub jobs: usize,
    /// Persist results under this directory (usually
    /// [`RunCache::default_dir`]); `None` keeps the cache in-memory
    /// only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Disable memoization entirely (every run re-simulates).
    pub no_cache: bool,
    /// Per-run wall-clock budget in seconds; `0.0` disables the
    /// timeout. A run over budget is cancelled cooperatively through
    /// the engine's cancellation token and reported as
    /// [`HarnessError::Timeout`].
    pub timeout_s: f64,
    /// Bounded retries for transient failures (timeouts — simulation
    /// errors are deterministic and never retried). Retry `i` backs
    /// off `10 · 2^(i-1)` ms before re-running.
    pub retries: u32,
}

impl ExecConfig {
    /// Builder: worker threads for grid execution (`0` = one per core).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Builder: persist results under `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Builder: disable memoization entirely.
    pub fn with_no_cache(mut self, no_cache: bool) -> Self {
        self.no_cache = no_cache;
        self
    }

    /// Builder: per-run wall-clock budget in seconds (`0.0` = off).
    pub fn with_timeout_s(mut self, timeout_s: f64) -> Self {
        self.timeout_s = timeout_s;
        self
    }

    /// Builder: bounded retries for transient failures.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// `jobs` resolved against the host.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One point of an experiment grid.
///
/// Marked `#[non_exhaustive]`: construct with [`RunSpec::new`] plus
/// the `with_*` builders.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RunSpec {
    /// Registry name of the benchmark (see
    /// [`spechpc_kernels::registry`]).
    pub benchmark: String,
    pub class: WorkloadClass,
    pub nranks: usize,
}

impl RunSpec {
    pub fn new(benchmark: impl Into<String>, class: WorkloadClass, nranks: usize) -> Self {
        RunSpec {
            benchmark: benchmark.into(),
            class,
            nranks,
        }
    }

    /// Builder: replace the workload class.
    pub fn with_class(mut self, class: WorkloadClass) -> Self {
        self.class = class;
        self
    }

    /// Builder: replace the rank count.
    pub fn with_nranks(mut self, nranks: usize) -> Self {
        self.nranks = nranks;
        self
    }
}

/// One failed grid point of a [`GridReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridFailure {
    /// Index into the spec slice passed to [`Executor::run_all`].
    pub index: usize,
    /// `benchmark/class/nranks@cluster`.
    pub label: String,
    pub error: HarnessError,
}

/// Outcome of a grid execution: one result slot per spec (in spec
/// order; `None` where the point failed) plus the per-spec failure
/// report. A grid always runs to the end — failures degrade the
/// report, they never abort the remaining points.
#[derive(Debug, Clone, Default)]
pub struct GridReport {
    pub results: Vec<Option<RunResult>>,
    /// Failed points in grid order.
    pub failures: Vec<GridFailure>,
}

impl GridReport {
    /// Did every point complete?
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The completed results, in grid order.
    pub fn completed(&self) -> impl Iterator<Item = &RunResult> {
        self.results.iter().flatten()
    }

    /// All-or-nothing view: the full result vector when the grid
    /// completed, otherwise the first failure (in grid order) — the
    /// adapter the all-points-required experiment drivers use.
    pub fn into_results(self) -> Result<Vec<RunResult>, HarnessError> {
        match self.failures.into_iter().next() {
            Some(f) => Err(f.error),
            None => Ok(self.results.into_iter().flatten().collect()),
        }
    }

    /// Human-readable failure report, one line per failed point;
    /// empty for a complete grid.
    pub fn render_failures(&self) -> String {
        self.failures
            .iter()
            .map(|f| format!("FAILED [{}] {}: {}\n", f.index, f.label, f.error))
            .collect()
    }
}

/// Observability snapshot of an [`Executor`] — what actually happened
/// behind the scenes of an experiment (the execution-layer analog of
/// the LIKWID counters the paper's §4.2 methodology leans on).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Simulations actually constructed and run (cache hits excluded;
    /// retries count each attempt).
    pub runs_executed: u64,
    /// Cache behaviour; all-zero when the executor runs uncached.
    pub cache: CacheMetrics,
    /// Grid points completed per worker slot during `run_all`
    /// (index = worker id; sums over the executor's lifetime).
    pub per_worker_runs: Vec<u64>,
    /// Wall-clock seconds per completed grid point, in completion
    /// order, labelled `benchmark/class/nranks@cluster`.
    pub point_wall_s: Vec<(String, f64)>,
    /// Results served from a fleet peer's cache instead of simulating
    /// locally (zero without [`Executor::with_peer_fetch`]).
    pub peer_hits: u64,
    /// Engine runs that reused a template-derived
    /// [`Prepass`](spechpc_simmpi::engine::Prepass) instead of
    /// re-walking their concatenated programs — two per simulation (the
    /// warm-up and the full run share one per-step analysis).
    pub prepass_reuses: u64,
}

impl ExecMetrics {
    /// Total wall seconds across all timed grid points.
    pub fn total_wall_s(&self) -> f64 {
        self.point_wall_s.iter().map(|(_, s)| s).sum()
    }
}

/// Interior-mutable counters behind [`ExecMetrics`].
#[derive(Default)]
struct ExecCounters {
    runs_executed: AtomicU64,
    per_worker: Mutex<Vec<u64>>,
    point_wall: Mutex<Vec<(String, f64)>>,
    peer_hits: AtomicU64,
    /// Shared with every [`SimRunner`] this executor constructs (behind
    /// its own [`Arc`] so watchdog-thread runners can hold it too).
    prepass_reuses: Arc<AtomicU64>,
}

/// Parallel, memoizing, fault-tolerant run executor (see the module
/// docs).
///
/// The cache and the counters sit behind [`Arc`] so a resident service
/// can fork per-request executors with [`Executor::with_run_config`]
/// while every fork keeps hitting the *same* memoization store and
/// accumulating into the *same* metrics.
pub struct Executor {
    runner: SimRunner,
    jobs: usize,
    timeout_s: f64,
    retries: u32,
    cache: Option<Arc<RunCache>>,
    counters: Arc<ExecCounters>,
    peer_fetch: Option<PeerFetch>,
}

impl Executor {
    pub fn new(run_config: RunConfig, exec: ExecConfig) -> Self {
        let cache = if exec.no_cache {
            None
        } else {
            Some(Arc::new(match &exec.cache_dir {
                Some(dir) => RunCache::on_disk(dir.clone()),
                None => RunCache::in_memory(),
            }))
        };
        let counters = Arc::new(ExecCounters::default());
        Executor {
            jobs: exec.effective_jobs(),
            timeout_s: exec.timeout_s,
            retries: exec.retries,
            runner: SimRunner::new(run_config)
                .with_prepass_counter(Arc::clone(&counters.prepass_reuses)),
            cache,
            counters,
            peer_fetch: None,
        }
    }

    /// Builder: consult a fleet peer's cache after a local miss, before
    /// simulating. A peer hit is stored in the local cache so the next
    /// replay answers from memory with the same bytes.
    pub fn with_peer_fetch(mut self, fetch: PeerFetch) -> Self {
        self.peer_fetch = Some(fetch);
        self
    }

    /// The memoization store, when this executor runs cached — how the
    /// daemon's `GET /v1/cache/{key}` route serves raw entries to
    /// fleet peers.
    pub fn cache(&self) -> Option<&RunCache> {
        self.cache.as_deref()
    }

    /// Serial, in-memory-cached executor — the drop-in replacement the
    /// compatibility wrappers (`fig1(cluster, config, step)` …) use.
    pub fn serial(run_config: RunConfig) -> Self {
        Executor::new(run_config, ExecConfig::default().with_jobs(1))
    }

    /// The run rules this executor applies.
    pub fn run_config(&self) -> &RunConfig {
        &self.runner.config
    }

    /// Fork an executor that applies different run rules but shares
    /// this executor's cache and metrics counters — how the `serve`
    /// daemon answers requests with arbitrary per-request
    /// [`RunConfig`]s against one resident cache. (Distinct run rules
    /// hash to distinct [`RunKey`]s, so sharing the store is safe.)
    pub fn with_run_config(&self, run_config: RunConfig) -> Executor {
        Executor {
            runner: SimRunner::new(run_config)
                .with_prepass_counter(Arc::clone(&self.counters.prepass_reuses)),
            jobs: self.jobs,
            timeout_s: self.timeout_s,
            retries: self.retries,
            cache: self.cache.clone(),
            counters: Arc::clone(&self.counters),
            peer_fetch: self.peer_fetch.clone(),
        }
    }

    fn key_of(&self, cluster: &ClusterSpec, spec: &RunSpec) -> RunKey {
        RunKey::new(
            &cluster.name,
            &spec.benchmark,
            &spec.class.to_string(),
            spec.nranks,
            &self.runner.config,
        )
    }

    /// `benchmark/class/nranks@cluster` — the label metrics rows carry.
    fn label_of(cluster: &ClusterSpec, spec: &RunSpec) -> String {
        format!(
            "{}/{}/{}@{}",
            spec.benchmark, spec.class, spec.nranks, cluster.name
        )
    }

    /// Execute one grid point, consulting the cache first. Traced
    /// configurations always re-simulate (timelines are not cached).
    pub fn run_one(
        &self,
        cluster: &ClusterSpec,
        spec: &RunSpec,
    ) -> Result<RunResult, HarnessError> {
        let t0 = Instant::now();
        let outcome = self.run_one_untimed(cluster, spec);
        self.counters
            .point_wall
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((Self::label_of(cluster, spec), t0.elapsed().as_secs_f64()));
        outcome
    }

    fn run_one_untimed(
        &self,
        cluster: &ClusterSpec,
        spec: &RunSpec,
    ) -> Result<RunResult, HarnessError> {
        // Surface bad names as a typed failure before any cache or
        // simulation work.
        resolve(&spec.benchmark)?;
        let cacheable = !self.runner.config.trace;
        if cacheable {
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(&self.key_of(cluster, spec)) {
                    return Ok(hit);
                }
            }
            // Local miss: a fleet peer may already have this result.
            if let Some(fetch) = &self.peer_fetch {
                let key = self.key_of(cluster, spec);
                if let Some(result) = fetch(&key) {
                    self.counters.peer_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(cache) = &self.cache {
                        cache.put(&key, &result);
                    }
                    return Ok(result);
                }
            }
        }
        let mut attempt: u32 = 0;
        let result = loop {
            match self.simulate(cluster, spec) {
                Err(e) if e.is_transient() && attempt < self.retries => {
                    attempt += 1;
                    std::thread::sleep(backoff(attempt));
                }
                other => break other,
            }
        }?;
        if cacheable {
            if let Some(cache) = &self.cache {
                cache.put(&self.key_of(cluster, spec), &result);
            }
        }
        Ok(result)
    }

    /// One supervised simulation attempt: panics are caught at this
    /// boundary, and with a timeout configured the run executes on a
    /// watchdog thread that is cancelled cooperatively when over
    /// budget.
    fn simulate(&self, cluster: &ClusterSpec, spec: &RunSpec) -> Result<RunResult, HarnessError> {
        self.counters.runs_executed.fetch_add(1, Ordering::Relaxed);
        let label = Self::label_of(cluster, spec);
        if self.timeout_s > 0.0 {
            return self.simulate_with_deadline(cluster, spec, label);
        }
        let bench = resolve(&spec.benchmark)?;
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.runner
                .run(cluster, &*bench, spec.class, spec.nranks)
                .map_err(HarnessError::from)
        }));
        outcome.unwrap_or_else(|p| {
            Err(HarnessError::Panic {
                label,
                message: panic_message(p.as_ref()),
            })
        })
    }

    /// Run on a helper thread under the per-run wall-clock budget. On
    /// timeout the engine's cancellation token is set — the simulation
    /// observes it at the next op boundary and unwinds — and the
    /// detached thread's late result is dropped with the channel.
    ///
    /// The budget is authoritative: a result that lands after the
    /// deadline is still reported as [`HarnessError::Timeout`], so a
    /// briefly descheduled parent thread cannot un-time-out a run
    /// that was already over budget when it finished.
    fn simulate_with_deadline(
        &self,
        cluster: &ClusterSpec,
        spec: &RunSpec,
        label: String,
    ) -> Result<RunResult, HarnessError> {
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let config = self.runner.config.clone();
        let cluster = cluster.clone();
        let spec = spec.clone();
        let flag = Arc::clone(&cancel);
        let thread_label = label.clone();
        let reuses = Arc::clone(&self.counters.prepass_reuses);
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let bench = resolve(&spec.benchmark)?;
                SimRunner::new(config)
                    .with_prepass_counter(reuses)
                    .run_cancellable(&cluster, &*bench, spec.class, spec.nranks, Some(flag))
                    .map_err(HarnessError::from)
            }));
            let _ = tx.send(outcome.unwrap_or_else(|p| {
                Err(HarnessError::Panic {
                    label: thread_label,
                    message: panic_message(p.as_ref()),
                })
            }));
        });
        let budget = Duration::from_secs_f64(self.timeout_s);
        let started = Instant::now();
        match rx.recv_timeout(budget) {
            Ok(r) if started.elapsed() <= budget => r,
            _ => {
                cancel.store(true, Ordering::Relaxed);
                Err(HarnessError::Timeout {
                    label,
                    limit_s: self.timeout_s,
                })
            }
        }
    }

    /// Run with full event tracing, bypassing the cache — for the
    /// Fig. 2 insets and CSV export.
    pub fn run_traced(
        &self,
        cluster: &ClusterSpec,
        spec: &RunSpec,
    ) -> Result<RunResult, HarnessError> {
        let traced = SimRunner::new(self.runner.config.clone().with_trace(true))
            .with_prepass_counter(Arc::clone(&self.counters.prepass_reuses));
        let bench = resolve(&spec.benchmark)?;
        let t0 = Instant::now();
        let outcome = traced
            .run(cluster, &*bench, spec.class, spec.nranks)
            .map_err(HarnessError::from);
        self.counters.runs_executed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .point_wall
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((Self::label_of(cluster, spec), t0.elapsed().as_secs_f64()));
        outcome
    }

    /// Snapshot of the execution-layer counters accumulated so far.
    pub fn metrics(&self) -> ExecMetrics {
        ExecMetrics {
            runs_executed: self.counters.runs_executed.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.metrics()).unwrap_or_default(),
            per_worker_runs: self
                .counters
                .per_worker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            point_wall_s: self
                .counters
                .point_wall
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            peer_hits: self.counters.peer_hits.load(Ordering::Relaxed),
            prepass_reuses: self.counters.prepass_reuses.load(Ordering::Relaxed),
        }
    }

    /// Credit one completed grid point to `worker`.
    fn credit_worker(&self, worker: usize) {
        let mut per = self
            .counters
            .per_worker
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if per.len() <= worker {
            per.resize(worker + 1, 0);
        }
        per[worker] += 1;
    }

    /// Execute a whole grid concurrently across `jobs` workers.
    ///
    /// Results come back in `specs` order, identical to running the
    /// specs one by one — workers claim points through an atomic cursor
    /// and deposit into the point's own slot, and the simulation is
    /// deterministic, so scheduling cannot leak into the output.
    ///
    /// The grid always runs to completion: a failed point (unknown
    /// benchmark, injected crash, deadlock, panic, timeout) leaves a
    /// `None` slot and a [`GridFailure`] entry while every other point
    /// still executes.
    pub fn run_all(&self, cluster: &ClusterSpec, specs: &[RunSpec]) -> GridReport {
        let workers = self.jobs.min(specs.len()).max(1);
        let slots: Vec<Mutex<Option<Result<RunResult, HarnessError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();

        if workers == 1 {
            for (i, spec) in specs.iter().enumerate() {
                let outcome = self.run_one(cluster, spec);
                self.credit_worker(0);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (slots, cursor) = (&slots, &cursor);
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { return };
                        let outcome = self.run_one(cluster, spec);
                        self.credit_worker(w);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                    });
                }
            });
        }

        let mut report = GridReport {
            results: Vec::with_capacity(specs.len()),
            failures: Vec::new(),
        };
        for (i, slot) in slots.into_iter().enumerate() {
            let label = Self::label_of(cluster, &specs[i]);
            match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(Ok(r)) => report.results.push(Some(r)),
                Some(Err(error)) => {
                    report.results.push(None);
                    report.failures.push(GridFailure {
                        index: i,
                        label,
                        error,
                    });
                }
                // Unreachable with healthy workers (every claimed slot
                // is deposited into), but a dead worker must degrade to
                // a reported failure, not a panic.
                None => {
                    report.results.push(None);
                    report.failures.push(GridFailure {
                        index: i,
                        label,
                        error: HarnessError::Panic {
                            label: Self::label_of(cluster, &specs[i]),
                            message: "worker died before depositing a result".into(),
                        },
                    });
                }
            }
        }
        report
    }

    /// Strong-scaling sweep of one benchmark over `counts`, executed
    /// concurrently. All-or-nothing: the first failure is returned.
    pub fn sweep(
        &self,
        cluster: &ClusterSpec,
        benchmark: &str,
        class: WorkloadClass,
        counts: &[usize],
    ) -> Result<Vec<RunResult>, HarnessError> {
        let specs: Vec<RunSpec> = counts
            .iter()
            .map(|&n| RunSpec::new(benchmark, class, n))
            .collect();
        self.run_all(cluster, &specs).into_results()
    }
}

/// Backoff before transient-failure retry `attempt` (1-based):
/// `10 · 2^(attempt-1)` ms, capped at 640 ms.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(10u64 << (attempt - 1).min(6))
}

/// Resolve a registry name to its benchmark, or a typed failure.
fn resolve(name: &str) -> Result<Box<dyn Benchmark>, HarnessError> {
    benchmark_by_name(name).ok_or_else(|| HarnessError::UnknownBenchmark {
        name: name.to_string(),
    })
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;
    use spechpc_simmpi::faults::{FaultEvent, FaultPlan};

    fn quick() -> RunConfig {
        RunConfig::default().with_repetitions(1).with_trace(false)
    }

    fn render(results: &[RunResult]) -> String {
        results
            .iter()
            .map(|r| {
                format!(
                    "{} n={} step={:?} e={:?}\n",
                    r.benchmark,
                    r.nranks,
                    r.step_seconds,
                    r.energy.total_j()
                )
            })
            .collect()
    }

    fn grid() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for name in ["tealeaf", "lbm", "minisweep", "soma"] {
            for n in [1usize, 7, 18, 36] {
                specs.push(RunSpec::new(name, WorkloadClass::Tiny, n));
            }
        }
        specs
    }

    #[test]
    fn parallel_grid_matches_serial_byte_for_byte() {
        let cluster = presets::cluster_a();
        let specs = grid();
        let serial = Executor::new(
            quick(),
            ExecConfig::default().with_jobs(1).with_no_cache(true),
        );
        let parallel = Executor::new(
            quick(),
            ExecConfig::default().with_jobs(8).with_no_cache(true),
        );
        let a = serial.run_all(&cluster, &specs).into_results().unwrap();
        let b = parallel.run_all(&cluster, &specs).into_results().unwrap();
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn memory_cache_hits_return_identical_results() {
        let cluster = presets::cluster_b();
        let exec = Executor::new(quick(), ExecConfig::default().with_jobs(2));
        let spec = RunSpec::new("cloverleaf", WorkloadClass::Tiny, 26);
        let fresh = exec.run_one(&cluster, &spec).unwrap();
        let cached = exec.run_one(&cluster, &spec).unwrap();
        assert_eq!(fresh.step_seconds.to_bits(), cached.step_seconds.to_bits());
        assert_eq!(fresh.breakdown, cached.breakdown);
    }

    #[test]
    fn traced_runs_bypass_cache_and_keep_timelines() {
        let cluster = presets::cluster_a();
        let exec = Executor::serial(quick());
        let spec = RunSpec::new("lbm", WorkloadClass::Tiny, 4);
        let plain = exec.run_one(&cluster, &spec).unwrap();
        assert!(plain.timeline.events.is_empty());
        let traced = exec.run_traced(&cluster, &spec).unwrap();
        assert!(!traced.timeline.events.is_empty());
        // Tracing never changes the physics.
        assert_eq!(plain.step_seconds.to_bits(), traced.step_seconds.to_bits());
    }

    #[test]
    fn grid_results_stay_in_spec_order() {
        let cluster = presets::cluster_a();
        let exec = Executor::new(
            quick(),
            ExecConfig::default().with_jobs(4).with_no_cache(true),
        );
        // All points valid → full result set, order preserved.
        let specs = grid();
        let report = exec.run_all(&cluster, &specs);
        assert!(report.is_complete());
        let out = report.into_results().unwrap();
        assert_eq!(out.len(), specs.len());
        for (r, s) in out.iter().zip(&specs) {
            assert_eq!(r.benchmark, s.benchmark);
            assert_eq!(r.nranks, s.nranks);
        }
    }

    #[test]
    fn unknown_benchmark_is_a_typed_failure_not_a_panic() {
        let cluster = presets::cluster_a();
        let exec = Executor::serial(quick());
        let specs = [
            RunSpec::new("hpl", WorkloadClass::Tiny, 1),
            RunSpec::new("lbm", WorkloadClass::Tiny, 4),
        ];
        let report = exec.run_all(&cluster, &specs);
        // The bad point degrades; the good one still runs.
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 0);
        assert!(matches!(
            report.failures[0].error,
            HarnessError::UnknownBenchmark { ref name } if name == "hpl"
        ));
        assert!(report.results[0].is_none());
        assert!(report.results[1].is_some());
        assert!(report.render_failures().contains("unknown benchmark 'hpl'"));
        let err = exec
            .run_one(&cluster, &RunSpec::new("hpl", WorkloadClass::Tiny, 1))
            .unwrap_err();
        assert!(matches!(err, HarnessError::UnknownBenchmark { .. }));
    }

    #[test]
    fn injected_crash_yields_partial_results_and_a_report() {
        let cluster = presets::cluster_a();
        let faulted = quick().with_faults(FaultPlan {
            seed: 1,
            events: vec![FaultEvent::Crash { rank: 2, at_s: 0.0 }],
        });
        let exec = Executor::new(
            faulted,
            ExecConfig::default().with_jobs(2).with_no_cache(true),
        );
        // Rank 2 exists only in the larger runs: those crash, the
        // smaller ones complete.
        let specs = [
            RunSpec::new("lbm", WorkloadClass::Tiny, 2),
            RunSpec::new("lbm", WorkloadClass::Tiny, 8),
            RunSpec::new("tealeaf", WorkloadClass::Tiny, 2),
            RunSpec::new("tealeaf", WorkloadClass::Tiny, 8),
        ];
        let report = exec.run_all(&cluster, &specs);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.completed().count(), 2);
        for f in &report.failures {
            assert_eq!(f.error.failed_rank(), Some(2), "{}", f.error);
        }
        assert!(report.results[0].is_some() && report.results[2].is_some());
        assert!(report.results[1].is_none() && report.results[3].is_none());
        let text = report.render_failures();
        assert!(text.contains("injected crash"), "{text}");
    }

    #[test]
    fn worker_panics_are_isolated_per_point() {
        let cluster = presets::cluster_a();
        let exec = Executor::new(
            quick(),
            ExecConfig::default().with_jobs(2).with_no_cache(true),
        );
        // nranks = 0 trips the runner's assertion — a genuine panic,
        // caught at the run boundary.
        let specs = [
            RunSpec::new("lbm", WorkloadClass::Tiny, 0),
            RunSpec::new("lbm", WorkloadClass::Tiny, 4),
        ];
        let report = exec.run_all(&cluster, &specs);
        assert_eq!(report.failures.len(), 1);
        assert!(matches!(
            report.failures[0].error,
            HarnessError::Panic { .. }
        ));
        assert!(report.results[1].is_some());
    }

    #[test]
    fn timeouts_cancel_and_retry_with_bounded_attempts() {
        let cluster = presets::cluster_a();
        // No simulation finishes in a nanosecond.
        let exec = Executor::new(
            quick(),
            ExecConfig::default()
                .with_jobs(1)
                .with_no_cache(true)
                .with_timeout_s(1e-9)
                .with_retries(2),
        );
        let spec = RunSpec::new("lbm", WorkloadClass::Tiny, 16);
        let err = exec.run_one(&cluster, &spec).unwrap_err();
        assert!(matches!(err, HarnessError::Timeout { .. }), "{err}");
        // Transient failure: the initial attempt plus both retries ran.
        assert_eq!(exec.metrics().runs_executed, 3);
    }

    #[test]
    fn metrics_track_runs_hits_and_wall_time() {
        let cluster = presets::cluster_a();
        let exec = Executor::serial(quick());
        let spec = RunSpec::new("lbm", WorkloadClass::Tiny, 4);
        exec.run_one(&cluster, &spec).unwrap();
        exec.run_one(&cluster, &spec).unwrap(); // memory hit
        let m = exec.metrics();
        assert_eq!(m.runs_executed, 1);
        // One simulation = one template analysis reused twice (warm-up
        // and full run); the cache hit re-simulates nothing.
        assert_eq!(m.prepass_reuses, 2);
        assert_eq!(m.cache.hits_mem, 1);
        assert_eq!(m.cache.misses, 1);
        assert_eq!(m.point_wall_s.len(), 2);
        assert_eq!(m.point_wall_s[0].0, "lbm/tiny/4@ClusterA");
        assert!(m.total_wall_s() >= 0.0);
    }

    #[test]
    fn peer_fetch_answers_misses_and_fills_the_local_cache() {
        let cluster = presets::cluster_a();
        let origin = Arc::new(Executor::new(quick(), ExecConfig::default().with_jobs(1)));
        let spec = RunSpec::new("lbm", WorkloadClass::Tiny, 6);
        let fresh = origin.run_one(&cluster, &spec).unwrap();

        let peer = Arc::clone(&origin);
        let local = Executor::new(quick(), ExecConfig::default().with_jobs(1)).with_peer_fetch(
            Arc::new(move |key: &RunKey| peer.cache().and_then(|c| c.get(key))),
        );
        let replayed = local.run_one(&cluster, &spec).unwrap();
        assert_eq!(
            fresh.step_seconds.to_bits(),
            replayed.step_seconds.to_bits()
        );
        let m = local.metrics();
        assert_eq!(m.peer_hits, 1);
        assert_eq!(m.runs_executed, 0, "a peer hit must not simulate");
        // The hit was stored locally: the next replay answers from
        // memory without consulting the peer again.
        local.run_one(&cluster, &spec).unwrap();
        let m = local.metrics();
        assert_eq!(m.peer_hits, 1);
        assert_eq!(m.cache.hits_mem, 1);
    }

    #[test]
    fn metrics_attribute_grid_points_to_workers() {
        let cluster = presets::cluster_a();
        let exec = Executor::new(
            quick(),
            ExecConfig::default().with_jobs(3).with_no_cache(true),
        );
        let specs = grid();
        assert!(exec.run_all(&cluster, &specs).is_complete());
        let m = exec.metrics();
        assert_eq!(m.runs_executed, specs.len() as u64);
        // Every grid point reuses its template prepass twice.
        assert_eq!(m.prepass_reuses, 2 * specs.len() as u64);
        assert_eq!(
            m.per_worker_runs.iter().sum::<u64>(),
            specs.len() as u64,
            "every grid point must be credited to exactly one worker"
        );
        // Uncached executor: the cache counters stay zero.
        assert_eq!(m.cache, CacheMetrics::default());
    }
}
