//! Parallel, cached execution of experiment grids.
//!
//! The [`Executor`] is the single entry point every experiment driver,
//! the suite, the CLI and the benches funnel their runs through. It
//! combines:
//!
//! * the [`RunCache`] — each run is looked up
//!   by its [`RunKey`] before the simulation is
//!   ever constructed, and stored afterwards;
//! * a work-stealing thread pool over the host cores
//!   ([`Executor::run_all`]) with **deterministic result assembly**:
//!   workers claim grid points through an atomic cursor and write into
//!   pre-allocated slots, so the output order (and therefore every
//!   rendered table) is byte-identical to a serial run regardless of
//!   the job count or scheduling interleavings. The simulation itself
//!   is pure — a result never depends on *when* it was computed.
//!
//! Traced runs ([`Executor::run_traced`]) bypass the cache: timelines
//! are large and only the Fig. 2 insets and CSV export want them.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use spechpc_kernels::common::benchmark::Benchmark;
use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::registry::benchmark_by_name;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_simmpi::engine::SimError;

use crate::cache::{CacheMetrics, RunCache, RunKey};
use crate::runner::{RunConfig, RunResult, SimRunner};

/// How the executor schedules and memoizes runs.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Worker threads for grid execution; `0` means one per available
    /// host core.
    pub jobs: usize,
    /// Persist results under this directory (usually
    /// [`RunCache::default_dir`]); `None` keeps the cache in-memory
    /// only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Disable memoization entirely (every run re-simulates).
    pub no_cache: bool,
}

impl ExecConfig {
    /// `jobs` resolved against the host.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One point of an experiment grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Registry name of the benchmark (see
    /// [`spechpc_kernels::registry`]).
    pub benchmark: String,
    pub class: WorkloadClass,
    pub nranks: usize,
}

impl RunSpec {
    pub fn new(benchmark: impl Into<String>, class: WorkloadClass, nranks: usize) -> Self {
        RunSpec {
            benchmark: benchmark.into(),
            class,
            nranks,
        }
    }
}

/// Observability snapshot of an [`Executor`] — what actually happened
/// behind the scenes of an experiment (the execution-layer analog of
/// the LIKWID counters the paper's §4.2 methodology leans on).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Simulations actually constructed and run (cache hits excluded).
    pub runs_executed: u64,
    /// Cache behaviour; all-zero when the executor runs uncached.
    pub cache: CacheMetrics,
    /// Grid points completed per worker slot during `run_all`
    /// (index = worker id; sums over the executor's lifetime).
    pub per_worker_runs: Vec<u64>,
    /// Wall-clock seconds per completed grid point, in completion
    /// order, labelled `benchmark/class/nranks@cluster`.
    pub point_wall_s: Vec<(String, f64)>,
}

impl ExecMetrics {
    /// Total wall seconds across all timed grid points.
    pub fn total_wall_s(&self) -> f64 {
        self.point_wall_s.iter().map(|(_, s)| s).sum()
    }
}

/// Interior-mutable counters behind [`ExecMetrics`].
#[derive(Default)]
struct ExecCounters {
    runs_executed: AtomicU64,
    per_worker: Mutex<Vec<u64>>,
    point_wall: Mutex<Vec<(String, f64)>>,
}

/// Parallel, memoizing run executor (see the module docs).
pub struct Executor {
    runner: SimRunner,
    jobs: usize,
    cache: Option<RunCache>,
    counters: ExecCounters,
}

impl Executor {
    pub fn new(run_config: RunConfig, exec: ExecConfig) -> Self {
        let cache = if exec.no_cache {
            None
        } else {
            Some(match &exec.cache_dir {
                Some(dir) => RunCache::on_disk(dir.clone()),
                None => RunCache::in_memory(),
            })
        };
        Executor {
            jobs: exec.effective_jobs(),
            runner: SimRunner::new(run_config),
            cache,
            counters: ExecCounters::default(),
        }
    }

    /// Serial, in-memory-cached executor — the drop-in replacement the
    /// compatibility wrappers (`fig1(cluster, config, step)` …) use.
    pub fn serial(run_config: RunConfig) -> Self {
        Executor::new(
            run_config,
            ExecConfig {
                jobs: 1,
                ..ExecConfig::default()
            },
        )
    }

    /// The run rules this executor applies.
    pub fn run_config(&self) -> &RunConfig {
        &self.runner.config
    }

    fn key_of(&self, cluster: &ClusterSpec, spec: &RunSpec) -> RunKey {
        RunKey::new(
            &cluster.name,
            &spec.benchmark,
            &spec.class.to_string(),
            spec.nranks,
            &self.runner.config,
        )
    }

    /// `benchmark/class/nranks@cluster` — the label metrics rows carry.
    fn label_of(cluster: &ClusterSpec, spec: &RunSpec) -> String {
        format!(
            "{}/{}/{}@{}",
            spec.benchmark, spec.class, spec.nranks, cluster.name
        )
    }

    /// Execute one grid point, consulting the cache first. Traced
    /// configurations always re-simulate (timelines are not cached).
    pub fn run_one(&self, cluster: &ClusterSpec, spec: &RunSpec) -> Result<RunResult, SimError> {
        let t0 = Instant::now();
        let outcome = self.run_one_untimed(cluster, spec);
        self.counters
            .point_wall
            .lock()
            .expect("metrics lock poisoned")
            .push((Self::label_of(cluster, spec), t0.elapsed().as_secs_f64()));
        outcome
    }

    fn run_one_untimed(
        &self,
        cluster: &ClusterSpec,
        spec: &RunSpec,
    ) -> Result<RunResult, SimError> {
        let cacheable = !self.runner.config.trace;
        if cacheable {
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(&self.key_of(cluster, spec)) {
                    return Ok(hit);
                }
            }
        }
        let bench = resolve(&spec.benchmark);
        let result = self.runner.run(cluster, &*bench, spec.class, spec.nranks)?;
        self.counters.runs_executed.fetch_add(1, Ordering::Relaxed);
        if cacheable {
            if let Some(cache) = &self.cache {
                cache.put(&self.key_of(cluster, spec), &result);
            }
        }
        Ok(result)
    }

    /// Run with full event tracing, bypassing the cache — for the
    /// Fig. 2 insets and CSV export.
    pub fn run_traced(&self, cluster: &ClusterSpec, spec: &RunSpec) -> Result<RunResult, SimError> {
        let traced = SimRunner::new(RunConfig {
            trace: true,
            ..self.runner.config.clone()
        });
        let bench = resolve(&spec.benchmark);
        let t0 = Instant::now();
        let outcome = traced.run(cluster, &*bench, spec.class, spec.nranks);
        self.counters.runs_executed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .point_wall
            .lock()
            .expect("metrics lock poisoned")
            .push((Self::label_of(cluster, spec), t0.elapsed().as_secs_f64()));
        outcome
    }

    /// Snapshot of the execution-layer counters accumulated so far.
    pub fn metrics(&self) -> ExecMetrics {
        ExecMetrics {
            runs_executed: self.counters.runs_executed.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.metrics()).unwrap_or_default(),
            per_worker_runs: self
                .counters
                .per_worker
                .lock()
                .expect("metrics lock poisoned")
                .clone(),
            point_wall_s: self
                .counters
                .point_wall
                .lock()
                .expect("metrics lock poisoned")
                .clone(),
        }
    }

    /// Credit one completed grid point to `worker`.
    fn credit_worker(&self, worker: usize) {
        let mut per = self
            .counters
            .per_worker
            .lock()
            .expect("metrics lock poisoned");
        if per.len() <= worker {
            per.resize(worker + 1, 0);
        }
        per[worker] += 1;
    }

    /// Execute a whole grid concurrently across `jobs` workers.
    ///
    /// Results come back in `specs` order, identical to running the
    /// specs one by one — workers claim points through an atomic cursor
    /// and deposit into the point's own slot, and the simulation is
    /// deterministic, so scheduling cannot leak into the output. The
    /// first error (in grid order) is reported; in-flight points finish,
    /// pending ones are abandoned.
    pub fn run_all(
        &self,
        cluster: &ClusterSpec,
        specs: &[RunSpec],
    ) -> Result<Vec<RunResult>, SimError> {
        // Fail on unknown names before spawning anything.
        for spec in specs {
            resolve(&spec.benchmark);
        }
        let workers = self.jobs.min(specs.len()).max(1);
        if workers == 1 {
            return specs
                .iter()
                .map(|s| {
                    let r = self.run_one(cluster, s);
                    self.credit_worker(0);
                    r
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<Result<RunResult, SimError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let (slots, cursor, failed) = (&slots, &cursor, &failed);
                scope.spawn(move || loop {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { return };
                    let outcome = self.run_one(cluster, spec);
                    self.credit_worker(w);
                    if outcome.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("slot lock poisoned") = Some(outcome);
                });
            }
        });

        // Assemble in grid order. Empty slots can only exist when a
        // failure stopped the workers early, in which case the error
        // wins anyway.
        let mut results = Vec::with_capacity(specs.len());
        let mut first_err = None;
        for slot in slots {
            match slot.into_inner().expect("slot lock poisoned") {
                Some(Ok(r)) if first_err.is_none() => results.push(r),
                Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                _ => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }

    /// Strong-scaling sweep of one benchmark over `counts`, executed
    /// concurrently.
    pub fn sweep(
        &self,
        cluster: &ClusterSpec,
        benchmark: &str,
        class: WorkloadClass,
        counts: &[usize],
    ) -> Result<Vec<RunResult>, SimError> {
        let specs: Vec<RunSpec> = counts
            .iter()
            .map(|&n| RunSpec::new(benchmark, class, n))
            .collect();
        self.run_all(cluster, &specs)
    }
}

/// Resolve a registry name; grid specs are constructed from the
/// registry itself, so a miss is a programming error.
fn resolve(name: &str) -> Box<dyn Benchmark> {
    benchmark_by_name(name).unwrap_or_else(|| panic!("unknown benchmark '{name}' in run spec"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    fn quick() -> RunConfig {
        RunConfig {
            repetitions: 1,
            trace: false,
            ..RunConfig::default()
        }
    }

    fn render(results: &[RunResult]) -> String {
        results
            .iter()
            .map(|r| {
                format!(
                    "{} n={} step={:?} e={:?}\n",
                    r.benchmark,
                    r.nranks,
                    r.step_seconds,
                    r.energy.total_j()
                )
            })
            .collect()
    }

    fn grid() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for name in ["tealeaf", "lbm", "minisweep", "soma"] {
            for n in [1usize, 7, 18, 36] {
                specs.push(RunSpec::new(name, WorkloadClass::Tiny, n));
            }
        }
        specs
    }

    #[test]
    fn parallel_grid_matches_serial_byte_for_byte() {
        let cluster = presets::cluster_a();
        let specs = grid();
        let serial = Executor::new(
            quick(),
            ExecConfig {
                jobs: 1,
                no_cache: true,
                ..ExecConfig::default()
            },
        );
        let parallel = Executor::new(
            quick(),
            ExecConfig {
                jobs: 8,
                no_cache: true,
                ..ExecConfig::default()
            },
        );
        let a = serial.run_all(&cluster, &specs).unwrap();
        let b = parallel.run_all(&cluster, &specs).unwrap();
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn memory_cache_hits_return_identical_results() {
        let cluster = presets::cluster_b();
        let exec = Executor::new(
            quick(),
            ExecConfig {
                jobs: 2,
                ..ExecConfig::default()
            },
        );
        let spec = RunSpec::new("cloverleaf", WorkloadClass::Tiny, 26);
        let fresh = exec.run_one(&cluster, &spec).unwrap();
        let cached = exec.run_one(&cluster, &spec).unwrap();
        assert_eq!(fresh.step_seconds.to_bits(), cached.step_seconds.to_bits());
        assert_eq!(fresh.breakdown, cached.breakdown);
    }

    #[test]
    fn traced_runs_bypass_cache_and_keep_timelines() {
        let cluster = presets::cluster_a();
        let exec = Executor::serial(quick());
        let spec = RunSpec::new("lbm", WorkloadClass::Tiny, 4);
        let plain = exec.run_one(&cluster, &spec).unwrap();
        assert!(plain.timeline.events.is_empty());
        let traced = exec.run_traced(&cluster, &spec).unwrap();
        assert!(!traced.timeline.events.is_empty());
        // Tracing never changes the physics.
        assert_eq!(plain.step_seconds.to_bits(), traced.step_seconds.to_bits());
    }

    #[test]
    fn grid_results_stay_in_spec_order() {
        let cluster = presets::cluster_a();
        let exec = Executor::new(
            quick(),
            ExecConfig {
                jobs: 4,
                no_cache: true,
                ..ExecConfig::default()
            },
        );
        // All points valid → full result set, order preserved.
        let specs = grid();
        let out = exec.run_all(&cluster, &specs).unwrap();
        assert_eq!(out.len(), specs.len());
        for (r, s) in out.iter().zip(&specs) {
            assert_eq!(r.benchmark, s.benchmark);
            assert_eq!(r.nranks, s.nranks);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics_before_spawning() {
        let cluster = presets::cluster_a();
        let exec = Executor::serial(quick());
        let _ = exec.run_all(&cluster, &[RunSpec::new("hpl", WorkloadClass::Tiny, 1)]);
    }

    #[test]
    fn metrics_track_runs_hits_and_wall_time() {
        let cluster = presets::cluster_a();
        let exec = Executor::serial(quick());
        let spec = RunSpec::new("lbm", WorkloadClass::Tiny, 4);
        exec.run_one(&cluster, &spec).unwrap();
        exec.run_one(&cluster, &spec).unwrap(); // memory hit
        let m = exec.metrics();
        assert_eq!(m.runs_executed, 1);
        assert_eq!(m.cache.hits_mem, 1);
        assert_eq!(m.cache.misses, 1);
        assert_eq!(m.point_wall_s.len(), 2);
        assert_eq!(m.point_wall_s[0].0, "lbm/tiny/4@ClusterA");
        assert!(m.total_wall_s() >= 0.0);
    }

    #[test]
    fn metrics_attribute_grid_points_to_workers() {
        let cluster = presets::cluster_a();
        let exec = Executor::new(
            quick(),
            ExecConfig {
                jobs: 3,
                no_cache: true,
                ..ExecConfig::default()
            },
        );
        let specs = grid();
        exec.run_all(&cluster, &specs).unwrap();
        let m = exec.metrics();
        assert_eq!(m.runs_executed, specs.len() as u64);
        assert_eq!(
            m.per_worker_runs.iter().sum::<u64>(),
            specs.len() as u64,
            "every grid point must be credited to exactly one worker"
        );
        // Uncached executor: the cache counters stay zero.
        assert_eq!(m.cache, CacheMetrics::default());
    }
}
