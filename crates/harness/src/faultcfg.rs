//! Loading fault plans from `.toml` files (see `plans/` in the repo
//! root for examples).
//!
//! The workspace carries no external dependencies, so this is a
//! hand-rolled parser for the TOML subset fault plans actually use:
//! top-level `key = value` pairs, `[[event]]` array-of-table headers,
//! quoted strings, numbers and `#` comments. Anything fancier
//! (nested tables, arrays, multi-line strings) is rejected with a
//! line-numbered error.
//!
//! ## Plan format
//!
//! ```toml
//! seed = 42                    # optional, default 0; CLI --fault-seed overrides
//!
//! [[event]]
//! kind = "os-noise"            # per-rank compute jitter
//! ranks = "all"                # "all", "5", or "0,4,7"
//! amplitude = 0.08             # mean relative inflation
//!
//! [[event]]
//! kind = "straggler"           # one persistently slow rank
//! rank = 5
//! slowdown = 1.35              # multiplies every compute op
//!
//! [[event]]
//! kind = "flaky-link"          # degraded wire, one direction
//! from = 0
//! to = 12
//! drop_prob = 0.02             # per-transfer retransmit probability
//! retransmit_latency_s = 25e-6
//!
//! [[event]]
//! kind = "throttle"            # thermal / power-cap window
//! ranks = "all"
//! t_start_s = 0.5
//! t_end_s = 2.0
//! slowdown = 1.25              # either given directly…
//! # cap_ghz = 1.6              # …or derived from a frequency cap via
//! # base_clock_ghz = 2.4       #    spechpc_power::dvfs::throttle_slowdown
//! # flops_fraction = 0.6       #    (optional, default 0.6)
//!
//! [[event]]
//! kind = "crash"               # hard rank failure, MPI-abort semantics
//! rank = 3
//! at_s = 1.0
//! ```

use std::collections::HashMap;
use std::path::Path;

use spechpc_power::dvfs::throttle_slowdown;
use spechpc_simmpi::faults::{FaultEvent, FaultPlan, RankSet};

/// Share of the base-clock runtime assumed frequency-sensitive when a
/// throttle event gives a frequency cap without a `flops_fraction`.
const DEFAULT_FLOPS_FRACTION: f64 = 0.6;

/// A fault-plan file could not be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based line of the offending input, when attributable.
    pub line: Option<usize>,
    pub message: String,
}

impl PlanError {
    pub(crate) fn at(line: usize, message: impl Into<String>) -> Self {
        PlanError {
            line: Some(line),
            message: message.into(),
        }
    }

    pub(crate) fn new(message: impl Into<String>) -> Self {
        PlanError {
            line: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "fault plan line {line}: {}", self.message),
            None => write!(f, "fault plan: {}", self.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// One parsed value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

/// One `key = value` table with the line each key was set on (for
/// error messages).
#[derive(Debug, Default)]
struct TableData {
    entries: HashMap<String, (Value, usize)>,
}

impl TableData {
    fn str(&self, key: &str) -> Option<Result<&str, PlanError>> {
        self.entries.get(key).map(|(v, line)| match v {
            Value::Str(s) => Ok(s.as_str()),
            Value::Num(_) => Err(PlanError::at(*line, format!("'{key}' must be a string"))),
        })
    }

    fn num(&self, key: &str) -> Option<Result<f64, PlanError>> {
        self.entries.get(key).map(|(v, line)| match v {
            Value::Num(n) => Ok(*n),
            Value::Str(_) => Err(PlanError::at(*line, format!("'{key}' must be a number"))),
        })
    }

    fn require_num(&self, key: &str, kind: &str, line: usize) -> Result<f64, PlanError> {
        self.num(key)
            .unwrap_or_else(|| Err(PlanError::at(line, format!("'{kind}' event needs '{key}'"))))
    }

    fn require_rank(&self, key: &str, kind: &str, line: usize) -> Result<usize, PlanError> {
        let n = self.require_num(key, kind, line)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(PlanError::at(
                line,
                format!("'{key}' must be a non-negative integer, got {n}"),
            ));
        }
        Ok(n as usize)
    }
}

/// Load and validate a fault plan from a `.toml` file.
pub fn load_plan(path: &Path) -> Result<FaultPlan, PlanError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PlanError::new(format!("cannot read {}: {e}", path.display())))?;
    parse_plan(&text)
}

/// Parse and validate a fault plan from TOML text.
pub fn parse_plan(text: &str) -> Result<FaultPlan, PlanError> {
    // Pass 1: split into the top-level table and one table per
    // `[[event]]` header (recording each event's header line).
    let mut top = TableData::default();
    let mut events: Vec<(TableData, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[event]]" {
            events.push((TableData::default(), lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(PlanError::at(
                lineno,
                format!("unsupported section '{line}' (only [[event]] is recognized)"),
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(PlanError::at(
                lineno,
                format!("expected 'key = value', got '{line}'"),
            ));
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim(), lineno)?;
        let table = match events.last_mut() {
            Some((t, _)) => t,
            None => &mut top,
        };
        if table.entries.insert(key.clone(), (value, lineno)).is_some() {
            return Err(PlanError::at(lineno, format!("duplicate key '{key}'")));
        }
    }

    // Pass 2: convert the tables into typed events.
    let seed = match top.num("seed").transpose()? {
        Some(s) if s >= 0.0 && s.fract() == 0.0 => s as u64,
        Some(s) => {
            return Err(PlanError::new(format!(
                "seed must be a non-negative integer, got {s}"
            )))
        }
        None => 0,
    };
    for key in top.entries.keys() {
        if key != "seed" {
            return Err(PlanError::new(format!("unknown top-level key '{key}'")));
        }
    }
    let events = events
        .iter()
        .map(|(t, line)| convert_event(t, *line))
        .collect::<Result<Vec<FaultEvent>, PlanError>>()?;

    let plan = FaultPlan { seed, events };
    plan.validate().map_err(PlanError::new)?;
    Ok(plan)
}

/// Drop a `#` comment, respecting (single-line, non-escaping) quoted
/// strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<Value, PlanError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(PlanError::at(line, format!("unterminated string: {text}")));
        };
        if inner.contains('"') {
            return Err(PlanError::at(
                line,
                format!("stray quote in string: {text}"),
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| PlanError::at(line, format!("cannot parse value '{text}'")))
}

fn parse_rank_set(text: &str, line: usize) -> Result<RankSet, PlanError> {
    if text == "all" {
        return Ok(RankSet::All);
    }
    let ranks = text
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| PlanError::at(line, format!("bad rank '{}' in rank set", part.trim())))
        })
        .collect::<Result<Vec<usize>, PlanError>>()?;
    match ranks.as_slice() {
        [] => Err(PlanError::at(line, "empty rank set")),
        [one] => Ok(RankSet::One(*one)),
        _ => Ok(RankSet::List(ranks)),
    }
}

fn convert_event(t: &TableData, line: usize) -> Result<FaultEvent, PlanError> {
    let kind = t
        .str("kind")
        .unwrap_or_else(|| Err(PlanError::at(line, "event needs a 'kind'")))?;
    let ranks = |keys: &[&str]| -> Result<RankSet, PlanError> {
        match t.str("ranks").transpose()? {
            Some(text) => parse_rank_set(text, line),
            None => Err(PlanError::at(line, format!("'{kind}' event needs 'ranks'"))),
        }
        .and_then(|set| {
            check_keys(t, keys, kind, line)?;
            Ok(set)
        })
    };
    match kind {
        "os-noise" => {
            let amplitude = t.require_num("amplitude", kind, line)?;
            let ranks = ranks(&["kind", "ranks", "amplitude"])?;
            Ok(FaultEvent::OsNoise { ranks, amplitude })
        }
        "straggler" => {
            check_keys(t, &["kind", "rank", "slowdown"], kind, line)?;
            Ok(FaultEvent::Straggler {
                rank: t.require_rank("rank", kind, line)?,
                slowdown: t.require_num("slowdown", kind, line)?,
            })
        }
        "flaky-link" => {
            check_keys(
                t,
                &["kind", "from", "to", "drop_prob", "retransmit_latency_s"],
                kind,
                line,
            )?;
            Ok(FaultEvent::FlakyLink {
                from: t.require_rank("from", kind, line)?,
                to: t.require_rank("to", kind, line)?,
                drop_prob: t.require_num("drop_prob", kind, line)?,
                retransmit_latency_s: t.require_num("retransmit_latency_s", kind, line)?,
            })
        }
        "throttle" => {
            let slowdown = match (
                t.num("slowdown").transpose()?,
                t.num("cap_ghz").transpose()?,
            ) {
                (Some(_), Some(_)) => {
                    return Err(PlanError::at(
                        line,
                        "'throttle' takes either 'slowdown' or 'cap_ghz', not both",
                    ))
                }
                (Some(s), None) => {
                    check_keys(
                        t,
                        &["kind", "ranks", "t_start_s", "t_end_s", "slowdown"],
                        kind,
                        line,
                    )?;
                    s
                }
                (None, Some(cap)) => {
                    check_keys(
                        t,
                        &[
                            "kind",
                            "ranks",
                            "t_start_s",
                            "t_end_s",
                            "cap_ghz",
                            "base_clock_ghz",
                            "flops_fraction",
                        ],
                        kind,
                        line,
                    )?;
                    let base = t.require_num("base_clock_ghz", kind, line)?;
                    let phi = t
                        .num("flops_fraction")
                        .transpose()?
                        .unwrap_or(DEFAULT_FLOPS_FRACTION);
                    if base <= 0.0 || cap <= 0.0 {
                        return Err(PlanError::at(line, "clocks must be positive"));
                    }
                    throttle_slowdown(base, cap, phi)
                }
                (None, None) => {
                    return Err(PlanError::at(
                        line,
                        "'throttle' needs 'slowdown' or 'cap_ghz' + 'base_clock_ghz'",
                    ))
                }
            };
            let ranks = match t.str("ranks").transpose()? {
                Some(text) => parse_rank_set(text, line)?,
                None => return Err(PlanError::at(line, "'throttle' event needs 'ranks'")),
            };
            Ok(FaultEvent::Throttle {
                ranks,
                t_start_s: t.require_num("t_start_s", kind, line)?,
                t_end_s: t.require_num("t_end_s", kind, line)?,
                slowdown,
            })
        }
        "crash" => {
            check_keys(t, &["kind", "rank", "at_s"], kind, line)?;
            Ok(FaultEvent::Crash {
                rank: t.require_rank("rank", kind, line)?,
                at_s: t.require_num("at_s", kind, line)?,
            })
        }
        other => Err(PlanError::at(
            line,
            format!(
                "unknown event kind '{other}' \
                 (expected os-noise, straggler, flaky-link, throttle or crash)"
            ),
        )),
    }
}

/// Reject keys the event kind does not understand — a typo in a plan
/// must not silently become a no-op.
fn check_keys(t: &TableData, allowed: &[&str], kind: &str, line: usize) -> Result<(), PlanError> {
    for key in t.entries.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(PlanError::at(
                line,
                format!("'{kind}' event does not take '{key}'"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_round_trips_every_event_kind() {
        let text = r#"
# a kitchen-sink plan
seed = 42

[[event]]
kind = "os-noise"
ranks = "all"
amplitude = 0.08

[[event]]
kind = "straggler"
rank = 5
slowdown = 1.35

[[event]]
kind = "flaky-link"
from = 0
to = 12
drop_prob = 0.02
retransmit_latency_s = 25e-6

[[event]]
kind = "throttle"
ranks = "0,4,7"   # the hot sockets
t_start_s = 0.5
t_end_s = 2.0
slowdown = 1.25

[[event]]
kind = "crash"
rank = 3
at_s = 1.0
"#;
        let plan = parse_plan(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.events.len(), 5);
        assert!(matches!(
            plan.events[0],
            FaultEvent::OsNoise {
                ranks: RankSet::All,
                ..
            }
        ));
        assert!(matches!(
            plan.events[3],
            FaultEvent::Throttle {
                ranks: RankSet::List(ref l),
                ..
            } if l == &[0, 4, 7]
        ));
        assert!(matches!(plan.events[4], FaultEvent::Crash { rank: 3, .. }));
    }

    #[test]
    fn frequency_caps_convert_to_slowdowns() {
        let text = r#"
[[event]]
kind = "throttle"
ranks = "all"
t_start_s = 0.0
t_end_s = 10.0
cap_ghz = 1.2
base_clock_ghz = 2.4
flops_fraction = 1.0
"#;
        let plan = parse_plan(text).unwrap();
        let FaultEvent::Throttle { slowdown, .. } = plan.events[0] else {
            panic!("expected a throttle event");
        };
        // Pure compute at half clock: exactly 2×.
        assert!((slowdown - 2.0).abs() < 1e-12, "slowdown {slowdown}");
    }

    #[test]
    fn empty_input_is_the_empty_plan() {
        let plan = parse_plan("# nothing but comments\n\n").unwrap();
        assert!(plan.is_none());
    }

    #[test]
    fn errors_carry_line_numbers_and_reject_typos() {
        let bad_kind =
            parse_plan("[[event]]\nkind = \"os-nose\"\nranks = \"all\"\namplitude = 0.1\n");
        let e = bad_kind.unwrap_err();
        assert!(e.to_string().contains("os-nose"), "{e}");

        let typo = parse_plan("[[event]]\nkind = \"crash\"\nrank = 3\nat = 1.0\n");
        let e = typo.unwrap_err();
        assert!(e.to_string().contains("does not take 'at'"), "{e}");

        let syntax = parse_plan("seed 42\n");
        let e = syntax.unwrap_err();
        assert_eq!(e.line, Some(1));

        let both = parse_plan(
            "[[event]]\nkind = \"throttle\"\nranks = \"all\"\nt_start_s = 0.0\nt_end_s = 1.0\nslowdown = 1.5\ncap_ghz = 1.0\n",
        );
        assert!(both.unwrap_err().to_string().contains("not both"));
    }

    #[test]
    fn invalid_physics_fail_validation() {
        // drop_prob = 1.0 would retransmit forever; FaultPlan::validate
        // rejects it.
        let e = parse_plan(
            "[[event]]\nkind = \"flaky-link\"\nfrom = 0\nto = 1\ndrop_prob = 1.0\nretransmit_latency_s = 1e-6\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("drop_prob"), "{e}");
    }

    #[test]
    fn load_plan_reads_files_and_reports_missing_ones() {
        let dir = std::env::temp_dir().join(format!("spechpc-faultcfg-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("plan.toml");
        std::fs::write(
            &path,
            "seed = 7\n[[event]]\nkind = \"straggler\"\nrank = 1\nslowdown = 2.0\n",
        )
        .unwrap();
        let plan = load_plan(&path).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 1);
        let missing = load_plan(&dir.join("absent.toml")).unwrap_err();
        assert!(missing.to_string().contains("cannot read"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
