//! Perf-trajectory snapshots (`BENCH_engine.json`).
//!
//! The discrete-event engine is the substrate every experiment funnels
//! through, so its throughput is tracked as a committed artifact: a
//! snapshot measures engine ops/s on a fixed reference workload plus
//! the tiny-suite wall time, stamps the git revision, and writes
//! `BENCH_engine.json` at the repository root. CI re-measures in quick
//! mode and fails when throughput regresses more than
//! [`DEFAULT_TOLERANCE`] against the committed file.
//!
//! Raw ops/s is machine-dependent, so every snapshot also records a
//! *calibration score* — a fixed scalar workload measured on the same
//! host, in the same process, right before the engine. Comparisons use
//! the ratio `engine ops/s ÷ calibration score`, which cancels the
//! host's overall speed and leaves (mostly) the engine's efficiency.

use std::time::Instant;

use spechpc_kernels::common::config::WorkloadClass;
use spechpc_machine::presets;
use spechpc_simmpi::engine::{Engine, SimConfig};
use spechpc_simmpi::netmodel::NetModel;
use spechpc_simmpi::program::{Op, Program};

use crate::exec::{ExecConfig, Executor};
use crate::json::parse_json;
use crate::runner::RunConfig;
use crate::suite::Suite;

/// Relative throughput loss CI tolerates before failing.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// One engine-throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Simulated MPI operations per engine run.
    pub ops_per_iter: usize,
    /// Timed engine runs.
    pub iters: usize,
    /// Fastest single run (seconds) — the minimum is the
    /// noise-resistant statistic.
    pub wall_s: f64,
    /// `ops_per_iter / wall_s`.
    pub ops_per_s: f64,
}

/// The numbers a snapshot preserves from before a rewrite, so the file
/// documents the trajectory (the acceptance bar of the event-driven
/// scheduler was ≥3× against this).
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    pub git_rev: String,
    pub engine_ops_per_s: f64,
    pub note: String,
}

/// A complete perf snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub git_rev: String,
    pub engine: Measurement,
    /// Wall seconds of one uncached tiny-class suite run (ClusterA,
    /// full node).
    pub suite_wall_s: f64,
    /// Host-speed calibration (arbitrary units; see module docs).
    pub calibration_score: f64,
    /// Pre-rewrite numbers, carried over from the committed file.
    pub baseline: Option<Baseline>,
}

impl Snapshot {
    /// Engine throughput with the host's overall speed divided out.
    pub fn normalized_throughput(&self) -> f64 {
        self.engine.ops_per_s / self.calibration_score
    }
}

/// The reference workload: the `engine_ring_allreduce_256r` shape from
/// `crates/bench` — 256 ranks × 20 steps of compute + ring sendrecv +
/// allreduce. Kept in sync with the bench so the two numbers are
/// comparable.
pub fn reference_programs() -> Vec<Program> {
    let n = 256;
    (0..n)
        .map(|r| {
            let mut p = Program::new();
            for _ in 0..20 {
                p.push(Op::compute(1e-3));
                p.push(Op::sendrecv((r + 1) % n, 8192, (r + n - 1) % n, 0));
                p.push(Op::allreduce(8));
            }
            p
        })
        .collect()
}

/// Measure engine throughput over `iters` runs (min wall time, after
/// two untimed warm-up runs — the first runs also fault in the
/// allocator arenas and instruction cache).
fn measure_engine(iters: usize) -> Measurement {
    let cluster = presets::cluster_a();
    let template = reference_programs();
    let n = template.len();
    let ops_per_iter: usize = template.iter().map(|p| p.ops.len()).sum();
    for _ in 0..2 {
        let net = NetModel::compact(&cluster, n);
        let r = Engine::new(SimConfig::default(), net, template.clone())
            .run()
            .expect("reference workload simulates");
        std::hint::black_box(r.makespan);
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let net = NetModel::compact(&cluster, n);
        let programs = template.clone();
        let t0 = Instant::now();
        let r = Engine::new(SimConfig::default(), net, programs)
            .run()
            .expect("reference workload simulates");
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(r.makespan);
        best = best.min(dt);
    }
    Measurement {
        ops_per_iter,
        iters,
        wall_s: best,
        ops_per_s: ops_per_iter as f64 / best,
    }
}

/// Fixed scalar workload whose throughput tracks the host's speed: a
/// xorshift stream folded into a checksum. Independent of the engine,
/// so engine regressions do not cancel out of the normalized ratio.
fn calibration_score(iters: usize) -> f64 {
    const STEPS: usize = 2_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut sum = 0u64;
        let t0 = Instant::now();
        for _ in 0..STEPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sum = sum.wrapping_add(x);
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(sum);
        best = best.min(dt);
    }
    STEPS as f64 / best
}

/// One uncached tiny-class suite run on a full ClusterA node.
fn measure_suite() -> Result<f64, String> {
    let cluster = presets::cluster_a();
    let executor = Executor::new(
        RunConfig::default().with_trace(false),
        ExecConfig::default().with_jobs(0).with_no_cache(true),
    );
    let suite = Suite {
        class: WorkloadClass::Tiny,
        nranks: cluster.node.cores(),
    };
    let t0 = Instant::now();
    let report = suite.run_with(&executor, &cluster);
    if !report.is_complete() {
        return Err(format!("suite run failed: {}", report.failures[0].error));
    }
    Ok(t0.elapsed().as_secs_f64())
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Take a snapshot. Quick mode (CI) uses fewer engine iterations;
/// both modes use minimum-of-N wall times, so quick mode is noisier
/// but unbiased.
pub fn measure(quick: bool) -> Result<Snapshot, String> {
    let iters = if quick { 15 } else { 40 };
    let calibration = calibration_score(if quick { 5 } else { 10 });
    let engine = measure_engine(iters);
    let suite_wall_s = measure_suite()?;
    Ok(Snapshot {
        git_rev: git_rev(),
        engine,
        suite_wall_s,
        calibration_score: calibration,
        baseline: None,
    })
}

/// Compare a fresh measurement against a committed snapshot.
/// `Err` describes the regression when the normalized throughput fell
/// by more than `tolerance` (a relative fraction).
pub fn check(current: &Snapshot, committed: &Snapshot, tolerance: f64) -> Result<(), String> {
    let cur = current.normalized_throughput();
    let old = committed.normalized_throughput();
    if !(cur.is_finite() && old.is_finite() && old > 0.0) {
        return Err(format!(
            "cannot compare snapshots: normalized throughputs {cur} vs {old}"
        ));
    }
    if cur < old * (1.0 - tolerance) {
        return Err(format!(
            "engine throughput regressed: {:.3e} ops/s normalized {:.4} vs committed {:.4} \
             ({} @ {}) — more than {:.0}% below",
            current.engine.ops_per_s,
            cur,
            old,
            committed.engine.ops_per_s,
            committed.git_rev,
            tolerance * 100.0
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

pub fn to_json(s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", s.git_rev));
    out.push_str(&format!(
        "  \"engine\": {{ \"ops_per_iter\": {}, \"iters\": {}, \"wall_s\": {:.6e}, \"ops_per_s\": {:.6e} }},\n",
        s.engine.ops_per_iter, s.engine.iters, s.engine.wall_s, s.engine.ops_per_s
    ));
    out.push_str(&format!("  \"suite_wall_s\": {:.6e},\n", s.suite_wall_s));
    out.push_str(&format!(
        "  \"calibration_score\": {:.6e}",
        s.calibration_score
    ));
    if let Some(b) = &s.baseline {
        out.push_str(&format!(
            ",\n  \"baseline\": {{ \"git_rev\": \"{}\", \"engine_ops_per_s\": {:.6e}, \"note\": \"{}\" }}",
            b.git_rev, b.engine_ops_per_s, b.note
        ));
    }
    out.push_str("\n}\n");
    out
}

pub fn from_json(text: &str) -> Option<Snapshot> {
    let j = parse_json(text)?;
    let e = j.get("engine")?;
    let baseline = j.get("baseline").map(|b| Baseline {
        git_rev: b.str_of("git_rev").unwrap_or_else(|| "unknown".into()),
        engine_ops_per_s: b.f64_of("engine_ops_per_s").unwrap_or(f64::NAN),
        note: b.str_of("note").unwrap_or_default(),
    });
    Some(Snapshot {
        git_rev: j.str_of("git_rev")?,
        engine: Measurement {
            ops_per_iter: e.f64_of("ops_per_iter")? as usize,
            iters: e.f64_of("iters")? as usize,
            wall_s: e.f64_of("wall_s")?,
            ops_per_s: e.f64_of("ops_per_s")?,
        },
        suite_wall_s: j.f64_of("suite_wall_s")?,
        calibration_score: j.f64_of("calibration_score")?,
        baseline,
    })
}

pub fn read(path: &std::path::Path) -> Result<Snapshot, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    from_json(&text).ok_or_else(|| format!("{} is not a snapshot file", path.display()))
}

pub fn write(path: &std::path::Path, s: &Snapshot) -> Result<(), String> {
    std::fs::write(path, to_json(s)).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// One-line human summary.
pub fn render(s: &Snapshot) -> String {
    let mut line = format!(
        "engine {:.2e} ops/s ({} ops × {} iters, best {:.3} ms) · suite {:.2} s · \
         calibration {:.2e} · normalized {:.4} · rev {}",
        s.engine.ops_per_s,
        s.engine.ops_per_iter,
        s.engine.iters,
        s.engine.wall_s * 1e3,
        s.suite_wall_s,
        s.calibration_score,
        s.normalized_throughput(),
        s.git_rev
    );
    if let Some(b) = &s.baseline {
        line.push_str(&format!(
            "\nbaseline {:.2e} ops/s ({}) — speedup ×{:.2} [{}]",
            b.engine_ops_per_s,
            b.git_rev,
            s.engine.ops_per_s / b.engine_ops_per_s,
            b.note
        ));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            git_rev: "abc1234".into(),
            engine: Measurement {
                ops_per_iter: 15360,
                iters: 20,
                wall_s: 3.6e-4,
                ops_per_s: 4.27e7,
            },
            suite_wall_s: 0.21,
            calibration_score: 1.9e9,
            baseline: Some(Baseline {
                git_rev: "6ee02c6".into(),
                engine_ops_per_s: 1.3e7,
                note: "polling scheduler".into(),
            }),
        }
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let parsed = from_json(&to_json(&s)).expect("round trip");
        assert_eq!(parsed.git_rev, s.git_rev);
        assert_eq!(parsed.engine.ops_per_iter, s.engine.ops_per_iter);
        assert!((parsed.engine.ops_per_s - s.engine.ops_per_s).abs() < 1.0);
        assert!((parsed.suite_wall_s - s.suite_wall_s).abs() < 1e-9);
        let b = parsed.baseline.expect("baseline survives");
        assert_eq!(b.git_rev, "6ee02c6");
        assert!((b.engine_ops_per_s - 1.3e7).abs() < 1.0);
    }

    #[test]
    fn round_trip_without_baseline() {
        let s = Snapshot {
            baseline: None,
            ..sample()
        };
        let parsed = from_json(&to_json(&s)).expect("round trip");
        assert!(parsed.baseline.is_none());
    }

    #[test]
    fn check_passes_within_tolerance_and_across_hosts() {
        let committed = sample();
        // Same efficiency on a host 4× slower: both numbers scale, the
        // normalized ratio is unchanged — no false positive.
        let slower_host = Snapshot {
            engine: Measurement {
                ops_per_s: committed.engine.ops_per_s / 4.0,
                ..committed.engine
            },
            calibration_score: committed.calibration_score / 4.0,
            ..committed.clone()
        };
        assert!(check(&slower_host, &committed, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn check_fails_on_regression() {
        let committed = sample();
        let regressed = Snapshot {
            engine: Measurement {
                ops_per_s: committed.engine.ops_per_s / 2.0,
                ..committed.engine
            },
            ..committed.clone()
        };
        let err = check(&regressed, &committed, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");
    }

    #[test]
    fn reference_workload_matches_bench_shape() {
        let ps = reference_programs();
        assert_eq!(ps.len(), 256);
        let ops: usize = ps.iter().map(|p| p.ops.len()).sum();
        assert_eq!(ops, 256 * 20 * 3);
    }

    #[test]
    fn quick_snapshot_measures_and_checks_against_itself() {
        // End-to-end: measure (few iterations), round-trip through
        // JSON, self-check never regresses.
        let snap = {
            let engine = measure_engine(1);
            Snapshot {
                git_rev: git_rev(),
                engine,
                suite_wall_s: 0.0,
                calibration_score: calibration_score(1),
                baseline: None,
            }
        };
        assert!(snap.engine.ops_per_s > 0.0);
        assert!(snap.calibration_score > 0.0);
        let parsed = from_json(&to_json(&snap)).expect("round trip");
        assert!(check(&parsed, &snap, DEFAULT_TOLERANCE).is_ok());
    }
}
