//! Perf-trajectory snapshots (`BENCH_engine.json`, `BENCH_service.json`).
//!
//! The discrete-event engine is the substrate every experiment funnels
//! through, so its throughput is tracked as a committed artifact: a
//! snapshot measures engine ops/s on a fixed reference workload plus
//! the tiny-suite wall time, stamps the git revision, and writes
//! `BENCH_engine.json` at the repository root. CI re-measures in quick
//! mode and fails when throughput regresses more than
//! [`DEFAULT_TOLERANCE`] against the committed file.
//!
//! Raw ops/s is machine-dependent, so every snapshot also records a
//! *calibration score* — a fixed scalar workload measured on the same
//! host, in the same process, right before the engine. Comparisons use
//! the ratio `engine ops/s ÷ calibration score`, which cancels the
//! host's overall speed and leaves (mostly) the engine's efficiency.
//!
//! The **service path** gets the same treatment ([`measure_service`] →
//! `BENCH_service.json`): an in-process `spechpc serve` daemon is
//! hammered by the [`fleet`](crate::fleet) load generator and the
//! snapshot pins requests/s, p50/p99 latency and the cache-hit ratio.
//! Latency percentiles are recorded for the trajectory but only the
//! calibration-normalized throughput is checked (against the looser
//! [`SERVICE_TOLERANCE`] — request latency on shared CI runners is far
//! noisier than pure-CPU engine throughput).

use std::time::Instant;

use spechpc_kernels::common::config::WorkloadClass;
use spechpc_machine::presets;
use spechpc_simmpi::engine::{Engine, SimConfig};
use spechpc_simmpi::netmodel::NetModel;
use spechpc_simmpi::program::{Op, Program};

use crate::exec::{ExecConfig, Executor};
use crate::json::parse_json;
use crate::runner::RunConfig;
use crate::suite::Suite;

/// Relative throughput loss CI tolerates before failing.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Relative service-throughput loss CI tolerates before failing —
/// looser than the engine's because request latency includes the
/// kernel's network stack and scheduler noise.
pub const SERVICE_TOLERANCE: f64 = 0.50;

/// One engine-throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Simulated MPI operations per engine run.
    pub ops_per_iter: usize,
    /// Timed engine runs.
    pub iters: usize,
    /// Fastest single run (seconds) — the minimum is the
    /// noise-resistant statistic.
    pub wall_s: f64,
    /// `ops_per_iter / wall_s`.
    pub ops_per_s: f64,
}

/// Floor the committed parallel point is held to when the checking
/// host actually has the cores: the PDES engine must be at least this
/// much faster than sequential at its recorded thread count.
pub const PARALLEL_SPEEDUP_FLOOR: f64 = 2.0;

/// One parallel-engine (PDES) measurement: the partition-friendly
/// reference workload at `threads` workers next to the same workload
/// sequential, on the same host, in the same process.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelMeasurement {
    /// Ranks in the parallel reference workload.
    pub ranks: usize,
    /// Engine worker threads of the parallel run.
    pub threads: usize,
    /// Simulated MPI operations per engine run.
    pub ops_per_iter: usize,
    /// Fastest parallel run (seconds).
    pub wall_s: f64,
    /// `ops_per_iter / wall_s` of the parallel run.
    pub ops_per_s: f64,
    /// Parallel over sequential throughput on the same workload.
    pub speedup_vs_1t: f64,
    /// Host cores at measurement time. A 1-core container cannot show
    /// parallel speedup, so [`check`] only enforces
    /// [`PARALLEL_SPEEDUP_FLOOR`] when `host_cores >= threads`.
    pub host_cores: usize,
}

/// The numbers a snapshot preserves from before a rewrite, so the file
/// documents the trajectory (the acceptance bar of the event-driven
/// scheduler was ≥3× against this).
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    pub git_rev: String,
    pub engine_ops_per_s: f64,
    pub note: String,
}

/// A complete perf snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub git_rev: String,
    pub engine: Measurement,
    /// Wall seconds of one uncached tiny-class suite run (ClusterA,
    /// full node).
    pub suite_wall_s: f64,
    /// Host-speed calibration (arbitrary units; see module docs).
    pub calibration_score: f64,
    /// Pre-rewrite numbers, carried over from the committed file.
    pub baseline: Option<Baseline>,
    /// The PDES thread-scaling point (absent in snapshots written
    /// before the parallel engine existed).
    pub parallel: Option<ParallelMeasurement>,
}

impl Snapshot {
    /// Engine throughput with the host's overall speed divided out.
    pub fn normalized_throughput(&self) -> f64 {
        self.engine.ops_per_s / self.calibration_score
    }
}

/// The reference workload: the `engine_ring_allreduce_256r` shape from
/// `crates/bench` — 256 ranks × 20 steps of compute + ring sendrecv +
/// allreduce. Kept in sync with the bench so the two numbers are
/// comparable.
pub fn reference_programs() -> Vec<Program> {
    let n = 256;
    (0..n)
        .map(|r| {
            let mut p = Program::new();
            for _ in 0..20 {
                p.push(Op::compute(1e-3));
                p.push(Op::sendrecv((r + 1) % n, 8192, (r + n - 1) % n, 0));
                p.push(Op::allreduce(8));
            }
            p
        })
        .collect()
}

/// Measure engine throughput over `iters` runs (min wall time, after
/// two untimed warm-up runs — the first runs also fault in the
/// allocator arenas and instruction cache).
fn measure_engine(iters: usize) -> Measurement {
    let cluster = presets::cluster_a();
    let template = reference_programs();
    let n = template.len();
    let ops_per_iter: usize = template.iter().map(|p| p.ops.len()).sum();
    for _ in 0..2 {
        let net = NetModel::compact(&cluster, n);
        let r = Engine::new(SimConfig::default(), net, template.clone())
            .run()
            .expect("reference workload simulates");
        std::hint::black_box(r.makespan);
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let net = NetModel::compact(&cluster, n);
        let programs = template.clone();
        let t0 = Instant::now();
        let r = Engine::new(SimConfig::default(), net, programs)
            .run()
            .expect("reference workload simulates");
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(r.makespan);
        best = best.min(dt);
    }
    Measurement {
        ops_per_iter,
        iters,
        wall_s: best,
        ops_per_s: ops_per_iter as f64 / best,
    }
}

/// The parallel reference workload: the 1024-rank thread-scaling shape
/// from ISSUE 8 — 16 steps of compute + ring sendrecv + a distance-8
/// neighbor exchange, with an allreduce only on every 4th step so
/// partitions stay decoupled long enough for lookahead batching to pay.
pub fn parallel_reference_programs() -> Vec<Program> {
    let n = 1024;
    (0..n)
        .map(|r| {
            let mut p = Program::new();
            for step in 0..16 {
                p.push(Op::compute(2e-4));
                p.push(Op::sendrecv((r + 1) % n, 8192, (r + n - 1) % n, 0));
                p.push(Op::sendrecv((r + 8) % n, 4096, (r + n - 8) % n, 1));
                if step % 4 == 3 {
                    p.push(Op::allreduce(8));
                }
            }
            p
        })
        .collect()
}

/// Host cores, or 1 when the runtime cannot tell.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Measure the PDES engine at `threads` workers against the sequential
/// scheduler on the parallel reference workload (min wall time over
/// `iters` runs each, one untimed warm-up per mode).
fn measure_parallel(iters: usize, threads: usize) -> ParallelMeasurement {
    let cluster = presets::cluster_a();
    let template = parallel_reference_programs();
    let n = template.len();
    let ops_per_iter: usize = template.iter().map(|p| p.ops.len()).sum();
    let run_best = |nthreads: usize| -> f64 {
        let cfg = SimConfig::default().with_threads(nthreads);
        let net = NetModel::compact(&cluster, n);
        let r = Engine::new(cfg.clone(), net, template.clone())
            .run()
            .expect("parallel reference workload simulates");
        std::hint::black_box(r.makespan);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let net = NetModel::compact(&cluster, n);
            let programs = template.clone();
            let t0 = Instant::now();
            let r = Engine::new(cfg.clone(), net, programs)
                .run()
                .expect("parallel reference workload simulates");
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(r.makespan);
            best = best.min(dt);
        }
        best
    };
    let seq_best = run_best(1);
    let par_best = run_best(threads);
    ParallelMeasurement {
        ranks: n,
        threads,
        ops_per_iter,
        wall_s: par_best,
        ops_per_s: ops_per_iter as f64 / par_best,
        speedup_vs_1t: seq_best / par_best,
        host_cores: host_cores(),
    }
}

/// Fixed scalar workload whose throughput tracks the host's speed: a
/// xorshift stream folded into a checksum. Independent of the engine,
/// so engine regressions do not cancel out of the normalized ratio.
fn calibration_score(iters: usize) -> f64 {
    const STEPS: usize = 2_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut sum = 0u64;
        let t0 = Instant::now();
        for _ in 0..STEPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sum = sum.wrapping_add(x);
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(sum);
        best = best.min(dt);
    }
    STEPS as f64 / best
}

/// One uncached tiny-class suite run on a full ClusterA node.
fn measure_suite() -> Result<f64, String> {
    let cluster = presets::cluster_a();
    let executor = Executor::new(
        RunConfig::default().with_trace(false),
        ExecConfig::default().with_jobs(0).with_no_cache(true),
    );
    let suite = Suite {
        class: WorkloadClass::Tiny,
        nranks: cluster.node.cores(),
    };
    let t0 = Instant::now();
    let report = suite.run_with(&executor, &cluster);
    if !report.is_complete() {
        return Err(format!("suite run failed: {}", report.failures[0].error));
    }
    Ok(t0.elapsed().as_secs_f64())
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Take a snapshot. Quick mode (CI) uses fewer engine iterations;
/// both modes use minimum-of-N wall times, so quick mode is noisier
/// but unbiased.
pub fn measure(quick: bool) -> Result<Snapshot, String> {
    let iters = if quick { 15 } else { 40 };
    let calibration = calibration_score(if quick { 5 } else { 10 });
    let engine = measure_engine(iters);
    let parallel = measure_parallel(if quick { 4 } else { 10 }, 4);
    let suite_wall_s = measure_suite()?;
    Ok(Snapshot {
        git_rev: git_rev(),
        engine,
        suite_wall_s,
        calibration_score: calibration,
        baseline: None,
        parallel: Some(parallel),
    })
}

/// Compare a fresh measurement against a committed snapshot.
/// `Err` describes the regression when the normalized throughput fell
/// by more than `tolerance` (a relative fraction).
pub fn check(current: &Snapshot, committed: &Snapshot, tolerance: f64) -> Result<(), String> {
    let cur = current.normalized_throughput();
    let old = committed.normalized_throughput();
    if !(cur.is_finite() && old.is_finite() && old > 0.0) {
        return Err(format!(
            "cannot compare snapshots: normalized throughputs {cur} vs {old}"
        ));
    }
    if cur < old * (1.0 - tolerance) {
        return Err(format!(
            "engine throughput regressed: {:.3e} ops/s normalized {:.4} vs committed {:.4} \
             ({} @ {}) — more than {:.0}% below",
            current.engine.ops_per_s,
            cur,
            old,
            committed.engine.ops_per_s,
            committed.git_rev,
            tolerance * 100.0
        ));
    }
    // The thread-scaling floor only binds where it is physically
    // meaningful: the *current* measurement ran on this host, so its
    // recorded core count says whether the host could have shown the
    // speedup at all. A 1-core CI container records the point but is
    // never failed on it.
    if let Some(p) = &current.parallel {
        if p.host_cores >= p.threads && p.speedup_vs_1t < PARALLEL_SPEEDUP_FLOOR {
            return Err(format!(
                "parallel engine speedup regressed: ×{:.2} at {} threads on a {}-core host \
                 (1024-rank reference) — below the ×{:.1} floor",
                p.speedup_vs_1t, p.threads, p.host_cores, PARALLEL_SPEEDUP_FLOOR
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Service-path snapshot (`BENCH_service.json`)
// ---------------------------------------------------------------------------

/// One service-throughput snapshot: the daemon's request plane measured
/// end to end (TCP, HTTP framing, dispatch, cache replay) by the
/// loadgen client fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    pub git_rev: String,
    /// Concurrent keep-alive clients.
    pub clients: usize,
    /// Total requests sent across all clients.
    pub requests: usize,
    pub requests_per_s: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Executor cache hits ÷ lookups over the campaign (the workload
    /// replays one grid point, so this should sit near 1.0).
    pub cache_hit_ratio: f64,
    /// Host-speed calibration (same scalar workload as the engine
    /// snapshot).
    pub calibration_score: f64,
}

impl ServiceSnapshot {
    /// Request throughput with the host's overall speed divided out.
    pub fn normalized_throughput(&self) -> f64 {
        self.requests_per_s / self.calibration_score
    }
}

/// Measure the service path: bind an in-process daemon on an ephemeral
/// loopback port, warm the one grid point the campaign replays, run the
/// loadgen fleet against it, read the cache counters, drain.
pub fn measure_service(quick: bool) -> Result<ServiceSnapshot, String> {
    use crate::api::RunRequest;
    use crate::fleet::{one_shot, run_loadgen, LoadgenConfig};
    use crate::serve::{ServeConfig, Server};
    use std::time::Duration;

    let calibration = calibration_score(if quick { 5 } else { 10 });
    let (clients, per_client) = if quick { (8, 50) } else { (16, 250) };

    let exec = Executor::new(
        RunConfig::default().with_trace(false),
        ExecConfig::default(),
    );
    let server = Server::bind(
        exec,
        ServeConfig::default()
            .with_addr("127.0.0.1:0")
            .with_workers(4)
            .with_queue_depth(clients * 4)
            .with_max_inflight(clients * 2)
            .with_log_requests(false),
    )
    .map_err(|e| format!("binding the snapshot daemon: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("resolving the snapshot daemon address: {e}"))?
        .to_string();
    let handle = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.serve());

    let body = RunRequest::new("lbm", WorkloadClass::Tiny, 4).to_json();
    // Warm-up: the single simulation happens here, outside the timed
    // campaign, so the measurement is the replay path.
    one_shot(&addr, "POST", "/v1/run", &body, Duration::from_secs(60))
        .map_err(|e| format!("warm-up request failed: {e}"))?;

    let report = run_loadgen(
        &LoadgenConfig::default()
            .with_addr(&addr)
            .with_clients(clients)
            .with_requests_per_client(per_client)
            .with_request("POST", "/v1/run", body)
            .with_timeout_s(60.0),
    );

    let metrics = one_shot(&addr, "GET", "/v1/metrics", "", Duration::from_secs(10))
        .map_err(|e| format!("metrics request failed: {e}"))?;
    handle.request_drain();
    let _ = daemon.join();

    if report.ok == 0 {
        return Err(format!(
            "service campaign produced no successful requests: {}",
            report.render()
        ));
    }
    if report.non_2xx + report.transport_errors > report.sent / 20 {
        return Err(format!(
            "service campaign too unhealthy to snapshot: {}",
            report.render()
        ));
    }
    let cache_hit_ratio = parse_json(&metrics.body)
        .and_then(|j| {
            let c = j.get("cache")?;
            let hits = c.f64_of("hits_mem")? + c.f64_of("hits_disk")?;
            let lookups = hits + c.f64_of("misses")? + c.f64_of("corrupt")?;
            (lookups > 0.0).then(|| hits / lookups)
        })
        .unwrap_or(0.0);
    Ok(ServiceSnapshot {
        git_rev: git_rev(),
        clients,
        requests: report.sent,
        requests_per_s: report.requests_per_s,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        cache_hit_ratio,
        calibration_score: calibration,
    })
}

/// Compare a fresh service measurement against the committed snapshot
/// on calibration-normalized requests/s.
pub fn check_service(
    current: &ServiceSnapshot,
    committed: &ServiceSnapshot,
    tolerance: f64,
) -> Result<(), String> {
    let cur = current.normalized_throughput();
    let old = committed.normalized_throughput();
    if !(cur.is_finite() && old.is_finite() && old > 0.0) {
        return Err(format!(
            "cannot compare service snapshots: normalized throughputs {cur} vs {old}"
        ));
    }
    if cur < old * (1.0 - tolerance) {
        return Err(format!(
            "service throughput regressed: {:.0} req/s normalized {:.3e} vs committed {:.3e} \
             ({:.0} req/s @ {}) — more than {:.0}% below",
            current.requests_per_s,
            cur,
            old,
            committed.requests_per_s,
            committed.git_rev,
            tolerance * 100.0
        ));
    }
    Ok(())
}

pub fn service_to_json(s: &ServiceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", s.git_rev));
    out.push_str(&format!("  \"clients\": {},\n", s.clients));
    out.push_str(&format!("  \"requests\": {},\n", s.requests));
    out.push_str(&format!(
        "  \"requests_per_s\": {:.6e},\n",
        s.requests_per_s
    ));
    out.push_str(&format!("  \"p50_ms\": {:.6e},\n", s.p50_ms));
    out.push_str(&format!("  \"p99_ms\": {:.6e},\n", s.p99_ms));
    out.push_str(&format!(
        "  \"cache_hit_ratio\": {:.6},\n",
        s.cache_hit_ratio
    ));
    out.push_str(&format!(
        "  \"calibration_score\": {:.6e}\n",
        s.calibration_score
    ));
    out.push_str("}\n");
    out
}

pub fn service_from_json(text: &str) -> Option<ServiceSnapshot> {
    let j = parse_json(text)?;
    Some(ServiceSnapshot {
        git_rev: j.str_of("git_rev")?,
        clients: j.f64_of("clients")? as usize,
        requests: j.f64_of("requests")? as usize,
        requests_per_s: j.f64_of("requests_per_s")?,
        p50_ms: j.f64_of("p50_ms")?,
        p99_ms: j.f64_of("p99_ms")?,
        cache_hit_ratio: j.f64_of("cache_hit_ratio")?,
        calibration_score: j.f64_of("calibration_score")?,
    })
}

pub fn read_service(path: &std::path::Path) -> Result<ServiceSnapshot, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    service_from_json(&text)
        .ok_or_else(|| format!("{} is not a service snapshot file", path.display()))
}

pub fn write_service(path: &std::path::Path, s: &ServiceSnapshot) -> Result<(), String> {
    std::fs::write(path, service_to_json(s)).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// One-line human summary of a service snapshot.
pub fn render_service(s: &ServiceSnapshot) -> String {
    format!(
        "service {:.0} req/s ({} clients × {} requests) · p50 {:.2} ms · p99 {:.2} ms · \
         cache hit {:.1}% · calibration {:.2e} · normalized {:.3e} · rev {}",
        s.requests_per_s,
        s.clients,
        s.requests / s.clients.max(1),
        s.p50_ms,
        s.p99_ms,
        s.cache_hit_ratio * 100.0,
        s.calibration_score,
        s.normalized_throughput(),
        s.git_rev
    )
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

pub fn to_json(s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", s.git_rev));
    out.push_str(&format!(
        "  \"engine\": {{ \"ops_per_iter\": {}, \"iters\": {}, \"wall_s\": {:.6e}, \"ops_per_s\": {:.6e} }},\n",
        s.engine.ops_per_iter, s.engine.iters, s.engine.wall_s, s.engine.ops_per_s
    ));
    out.push_str(&format!("  \"suite_wall_s\": {:.6e},\n", s.suite_wall_s));
    out.push_str(&format!(
        "  \"calibration_score\": {:.6e}",
        s.calibration_score
    ));
    if let Some(b) = &s.baseline {
        out.push_str(&format!(
            ",\n  \"baseline\": {{ \"git_rev\": \"{}\", \"engine_ops_per_s\": {:.6e}, \"note\": \"{}\" }}",
            b.git_rev, b.engine_ops_per_s, b.note
        ));
    }
    if let Some(p) = &s.parallel {
        out.push_str(&format!(
            ",\n  \"parallel\": {{ \"ranks\": {}, \"threads\": {}, \"ops_per_iter\": {}, \
             \"wall_s\": {:.6e}, \"ops_per_s\": {:.6e}, \"speedup_vs_1t\": {:.4}, \
             \"host_cores\": {} }}",
            p.ranks,
            p.threads,
            p.ops_per_iter,
            p.wall_s,
            p.ops_per_s,
            p.speedup_vs_1t,
            p.host_cores
        ));
    }
    out.push_str("\n}\n");
    out
}

pub fn from_json(text: &str) -> Option<Snapshot> {
    let j = parse_json(text)?;
    let e = j.get("engine")?;
    let baseline = j.get("baseline").map(|b| Baseline {
        git_rev: b.str_of("git_rev").unwrap_or_else(|| "unknown".into()),
        engine_ops_per_s: b.f64_of("engine_ops_per_s").unwrap_or(f64::NAN),
        note: b.str_of("note").unwrap_or_default(),
    });
    let parallel = j.get("parallel").map(|p| ParallelMeasurement {
        ranks: p.f64_of("ranks").unwrap_or(0.0) as usize,
        threads: p.f64_of("threads").unwrap_or(1.0) as usize,
        ops_per_iter: p.f64_of("ops_per_iter").unwrap_or(0.0) as usize,
        wall_s: p.f64_of("wall_s").unwrap_or(f64::NAN),
        ops_per_s: p.f64_of("ops_per_s").unwrap_or(f64::NAN),
        speedup_vs_1t: p.f64_of("speedup_vs_1t").unwrap_or(f64::NAN),
        host_cores: p.f64_of("host_cores").unwrap_or(1.0) as usize,
    });
    Some(Snapshot {
        git_rev: j.str_of("git_rev")?,
        engine: Measurement {
            ops_per_iter: e.f64_of("ops_per_iter")? as usize,
            iters: e.f64_of("iters")? as usize,
            wall_s: e.f64_of("wall_s")?,
            ops_per_s: e.f64_of("ops_per_s")?,
        },
        suite_wall_s: j.f64_of("suite_wall_s")?,
        calibration_score: j.f64_of("calibration_score")?,
        baseline,
        parallel,
    })
}

pub fn read(path: &std::path::Path) -> Result<Snapshot, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    from_json(&text).ok_or_else(|| format!("{} is not a snapshot file", path.display()))
}

pub fn write(path: &std::path::Path, s: &Snapshot) -> Result<(), String> {
    std::fs::write(path, to_json(s)).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// One-line human summary.
pub fn render(s: &Snapshot) -> String {
    let mut line = format!(
        "engine {:.2e} ops/s ({} ops × {} iters, best {:.3} ms) · suite {:.2} s · \
         calibration {:.2e} · normalized {:.4} · rev {}",
        s.engine.ops_per_s,
        s.engine.ops_per_iter,
        s.engine.iters,
        s.engine.wall_s * 1e3,
        s.suite_wall_s,
        s.calibration_score,
        s.normalized_throughput(),
        s.git_rev
    );
    if let Some(b) = &s.baseline {
        line.push_str(&format!(
            "\nbaseline {:.2e} ops/s ({}) — speedup ×{:.2} [{}]",
            b.engine_ops_per_s,
            b.git_rev,
            s.engine.ops_per_s / b.engine_ops_per_s,
            b.note
        ));
    }
    if let Some(p) = &s.parallel {
        line.push_str(&format!(
            "\nparallel {:.2e} ops/s at {} threads ({} ranks, best {:.3} ms) — \
             speedup ×{:.2} vs sequential on a {}-core host",
            p.ops_per_s,
            p.threads,
            p.ranks,
            p.wall_s * 1e3,
            p.speedup_vs_1t,
            p.host_cores
        ));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            git_rev: "abc1234".into(),
            engine: Measurement {
                ops_per_iter: 15360,
                iters: 20,
                wall_s: 3.6e-4,
                ops_per_s: 4.27e7,
            },
            suite_wall_s: 0.21,
            calibration_score: 1.9e9,
            baseline: Some(Baseline {
                git_rev: "6ee02c6".into(),
                engine_ops_per_s: 1.3e7,
                note: "polling scheduler".into(),
            }),
            parallel: Some(ParallelMeasurement {
                ranks: 1024,
                threads: 4,
                ops_per_iter: 53248,
                wall_s: 5.1e-4,
                ops_per_s: 1.04e8,
                speedup_vs_1t: 2.6,
                host_cores: 8,
            }),
        }
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let parsed = from_json(&to_json(&s)).expect("round trip");
        assert_eq!(parsed.git_rev, s.git_rev);
        assert_eq!(parsed.engine.ops_per_iter, s.engine.ops_per_iter);
        assert!((parsed.engine.ops_per_s - s.engine.ops_per_s).abs() < 1.0);
        assert!((parsed.suite_wall_s - s.suite_wall_s).abs() < 1e-9);
        let b = parsed.baseline.expect("baseline survives");
        assert_eq!(b.git_rev, "6ee02c6");
        assert!((b.engine_ops_per_s - 1.3e7).abs() < 1.0);
        let p = parsed.parallel.expect("parallel point survives");
        assert_eq!(p.ranks, 1024);
        assert_eq!(p.threads, 4);
        assert_eq!(p.ops_per_iter, 53248);
        assert_eq!(p.host_cores, 8);
        assert!((p.speedup_vs_1t - 2.6).abs() < 1e-9);
        assert!((p.ops_per_s - 1.04e8).abs() < 1.0);
    }

    #[test]
    fn round_trip_without_baseline() {
        let s = Snapshot {
            baseline: None,
            parallel: None,
            ..sample()
        };
        let parsed = from_json(&to_json(&s)).expect("round trip");
        assert!(parsed.baseline.is_none());
        assert!(parsed.parallel.is_none());
    }

    #[test]
    fn check_passes_within_tolerance_and_across_hosts() {
        let committed = sample();
        // Same efficiency on a host 4× slower: both numbers scale, the
        // normalized ratio is unchanged — no false positive.
        let slower_host = Snapshot {
            engine: Measurement {
                ops_per_s: committed.engine.ops_per_s / 4.0,
                ..committed.engine
            },
            calibration_score: committed.calibration_score / 4.0,
            ..committed.clone()
        };
        assert!(check(&slower_host, &committed, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn check_fails_on_regression() {
        let committed = sample();
        let regressed = Snapshot {
            engine: Measurement {
                ops_per_s: committed.engine.ops_per_s / 2.0,
                ..committed.engine
            },
            ..committed.clone()
        };
        let err = check(&regressed, &committed, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");
    }

    #[test]
    fn check_gates_parallel_speedup_on_host_cores() {
        let committed = sample();
        // On a multi-core host, falling below the floor fails.
        let slow_parallel = Snapshot {
            parallel: Some(ParallelMeasurement {
                speedup_vs_1t: 1.1,
                host_cores: 8,
                ..sample().parallel.unwrap()
            }),
            ..committed.clone()
        };
        let err = check(&slow_parallel, &committed, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("speedup regressed"), "got: {err}");
        // The same number on a 1-core host is physically expected —
        // the point is recorded but never enforced.
        let one_core = Snapshot {
            parallel: Some(ParallelMeasurement {
                speedup_vs_1t: 0.9,
                host_cores: 1,
                ..sample().parallel.unwrap()
            }),
            ..committed.clone()
        };
        assert!(check(&one_core, &committed, DEFAULT_TOLERANCE).is_ok());
        // A snapshot without the point (pre-PDES) still checks.
        let absent = Snapshot {
            parallel: None,
            ..committed.clone()
        };
        assert!(check(&absent, &committed, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn parallel_reference_workload_has_the_issue_shape() {
        let ps = parallel_reference_programs();
        assert_eq!(ps.len(), 1024);
        // 16 steps × (compute + 2 sendrecv) + 4 allreduces per rank.
        let ops: usize = ps.iter().map(|p| p.ops.len()).sum();
        assert_eq!(ops, 1024 * (16 * 3 + 4));
    }

    #[test]
    fn quick_parallel_measurement_is_coherent() {
        // One iteration at 2 threads: the numbers just have to be
        // finite and self-consistent, not fast (CI hosts may have one
        // core, where speedup_vs_1t < 1 is expected).
        let p = measure_parallel(1, 2);
        assert_eq!(p.ranks, 1024);
        assert_eq!(p.threads, 2);
        assert!(p.wall_s > 0.0 && p.wall_s.is_finite());
        assert!(p.ops_per_s > 0.0);
        assert!(p.speedup_vs_1t > 0.0 && p.speedup_vs_1t.is_finite());
        assert!(p.host_cores >= 1);
    }

    #[test]
    fn reference_workload_matches_bench_shape() {
        let ps = reference_programs();
        assert_eq!(ps.len(), 256);
        let ops: usize = ps.iter().map(|p| p.ops.len()).sum();
        assert_eq!(ops, 256 * 20 * 3);
    }

    fn service_sample() -> ServiceSnapshot {
        ServiceSnapshot {
            git_rev: "abc1234".into(),
            clients: 16,
            requests: 4000,
            requests_per_s: 52_000.0,
            p50_ms: 0.21,
            p99_ms: 1.4,
            cache_hit_ratio: 0.999,
            calibration_score: 1.9e9,
        }
    }

    #[test]
    fn service_json_round_trip() {
        let s = service_sample();
        let parsed = service_from_json(&service_to_json(&s)).expect("round trip");
        assert_eq!(parsed.git_rev, s.git_rev);
        assert_eq!(parsed.clients, 16);
        assert_eq!(parsed.requests, 4000);
        assert!((parsed.requests_per_s - s.requests_per_s).abs() < 1.0);
        assert!((parsed.p99_ms - s.p99_ms).abs() < 1e-9);
        assert!((parsed.cache_hit_ratio - s.cache_hit_ratio).abs() < 1e-9);
    }

    #[test]
    fn service_check_is_host_normalized() {
        let committed = service_sample();
        // Same efficiency on a 4× slower host: no false positive.
        let slower_host = ServiceSnapshot {
            requests_per_s: committed.requests_per_s / 4.0,
            calibration_score: committed.calibration_score / 4.0,
            ..committed.clone()
        };
        assert!(check_service(&slower_host, &committed, SERVICE_TOLERANCE).is_ok());
        let regressed = ServiceSnapshot {
            requests_per_s: committed.requests_per_s / 3.0,
            ..committed.clone()
        };
        let err = check_service(&regressed, &committed, SERVICE_TOLERANCE).unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");
    }

    #[test]
    fn quick_service_snapshot_measures_a_live_daemon() {
        // End-to-end against a real loopback daemon, scaled down; the
        // numbers just have to be coherent, not fast.
        let snap = measure_service(true).expect("service measurement");
        assert!(snap.requests_per_s > 0.0);
        assert!(snap.p99_ms >= snap.p50_ms);
        assert!(
            snap.cache_hit_ratio > 0.9,
            "a single replayed grid point must be nearly all cache hits, got {}",
            snap.cache_hit_ratio
        );
        let parsed = service_from_json(&service_to_json(&snap)).expect("round trip");
        assert!(check_service(&parsed, &snap, SERVICE_TOLERANCE).is_ok());
    }

    #[test]
    fn quick_snapshot_measures_and_checks_against_itself() {
        // End-to-end: measure (few iterations), round-trip through
        // JSON, self-check never regresses.
        let snap = {
            let engine = measure_engine(1);
            Snapshot {
                git_rev: git_rev(),
                engine,
                suite_wall_s: 0.0,
                calibration_score: calibration_score(1),
                baseline: None,
                parallel: None,
            }
        };
        assert!(snap.engine.ops_per_s > 0.0);
        assert!(snap.calibration_score > 0.0);
        let parsed = from_json(&to_json(&snap)).expect("round trip");
        assert!(check(&parsed, &snap, DEFAULT_TOLERANCE).is_ok());
    }
}
