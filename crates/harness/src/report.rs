//! Plain-text table rendering for the experiment reports.

/// A malformed report table — the typed replacement for the
/// `assert_eq!` width panic that used to abort the whole process (fatal
/// for a one-shot CLI, unacceptable for the long-running `spechpc
/// serve` daemon, where one bad report must degrade to an API error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A row's cell count does not match the table header.
    RowWidth {
        /// The table this happened in (its title).
        table: String,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::RowWidth {
                table,
                expected,
                got,
            } => write!(
                f,
                "malformed report table '{table}': row has {got} cell(s), header has {expected}"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; a width mismatch is a typed [`ReportError`], never
    /// a panic.
    pub fn row(&mut self, cells: Vec<String>) -> Result<(), ReportError> {
        if cells.len() != self.header.len() {
            return Err(ReportError::RowWidth {
                table: self.title.clone(),
                expected: self.header.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                line.push_str(&format!(" {}{} |", c, " ".repeat(pad)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &width {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a float with sensible benchmark-report precision.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["tealeaf".into(), "1.0".into()]).unwrap();
        t.row(vec!["lbm".into(), "130".into()]).unwrap();
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| tealeaf | 1.0   |"));
        // All data lines have the same width.
        let widths: Vec<usize> = s.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn mismatched_row_is_a_typed_error() {
        let mut t = Table::new("x", &["a", "b"]);
        let err = t.row(vec!["only one".into()]).unwrap_err();
        assert_eq!(
            err,
            ReportError::RowWidth {
                table: "x".into(),
                expected: 2,
                got: 1,
            }
        );
        // The malformed row was not appended.
        assert!(t.rows.is_empty());
        assert!(err.to_string().contains("malformed report table 'x'"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.6), "1235");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(1.234), "1.23");
        assert_eq!(pct(95.4), "95%");
    }
}
