//! Minimal hand-rolled JSON — value model, parser and writer.
//!
//! The workspace carries no external dependencies, so everything that
//! speaks JSON in-tree goes through this module: the content-addressed
//! run cache ([`cache`](crate::cache)), the perf-trajectory snapshot
//! ([`snapshot`](crate::snapshot)), and the service API vocabulary
//! ([`api`](crate::api)) that the `spechpc serve` daemon exchanges with
//! its clients.
//!
//! Two properties the cache's byte-identical-replay guarantee rests on:
//!
//! * **exact `f64` round-trips** — [`fmt_f64`] writes the shortest
//!   decimal that parses back to the identical bit pattern (Rust's
//!   `{:?}` formatting), so `parse(render(v)) == v` bit-for-bit;
//! * **deterministic rendering** — [`Json::render`] emits object fields
//!   in insertion order with no ambient state, so the same value always
//!   serializes to the same bytes.

/// A JSON value. Numbers are `f64` (like JavaScript); `null` decodes to
/// NaN through [`Json::num`] so non-finite floats survive a `null`
/// round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (first match wins), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value; `null` maps to NaN (see [`fmt_f64`]).
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String value.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `self[key]` as a usize (floats truncate).
    pub fn usize_of(&self, key: &str) -> Option<usize> {
        Some(self.get(key)?.num()? as usize)
    }

    /// `self[key]` as an f64.
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key)?.num()
    }

    /// `self[key]` as an exact non-negative integer: the field must be
    /// present, finite, fraction-free and inside the exactly-
    /// representable `f64` integer range (< 2⁵³). Fractional,
    /// negative or out-of-range values are *rejected* (`None`), never
    /// truncated — the strict accessor wire-protocol integer fields
    /// decode through.
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        let x = self.get(key)?.num()?;
        (x.is_finite() && x.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(&x))
            .then_some(x as u64)
    }

    /// `self[key]` as an exact `u16` (see [`Json::u64_of`]) — small
    /// integer wire fields like HTTP status codes. Out-of-range values
    /// (`70000`, `-1`, `404.5`) are rejected, not wrapped.
    pub fn u16_of(&self, key: &str) -> Option<u16> {
        u16::try_from(self.u64_of(key)?).ok()
    }

    /// `self[key]` as an owned string.
    pub fn str_of(&self, key: &str) -> Option<String> {
        Some(self.get(key)?.str()?.to_string())
    }

    /// `self[key]` as a bool.
    pub fn bool_of(&self, key: &str) -> Option<bool> {
        self.get(key)?.bool()
    }

    /// Compact, deterministic serialization: object fields in insertion
    /// order, no whitespace. Integral numbers in the exactly-
    /// representable `f64` range render without a fraction (`3`, not
    /// `3.0` — counters and rank counts are integers on the wire);
    /// everything else goes through [`fmt_f64`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // Integral path: skip -0.0 so the sign bit survives the
            // round trip through fmt_f64.
            Json::Num(x)
                if x.is_finite()
                    && x.fract() == 0.0
                    && x.abs() < 9.007_199_254_740_992e15
                    && (*x != 0.0 || x.is_sign_positive()) =>
            {
                out.push_str(&format!("{}", *x as i64));
            }
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience conversion for building [`Json::Obj`] field lists.
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Exact `f64` serialization: `{:?}` prints the shortest decimal that
/// round-trips to the same bits. Non-finite values map to `null` and
/// decode back to NaN.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Quote and escape a string for embedding in JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        (self.peek()? == b).then(|| self.pos += 1)
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Option<Json> {
        self.skip_ws();
        let end = self.pos + word.len();
        (self.bytes.get(self.pos..end)? == word.as_bytes()).then(|| {
            self.pos = end;
            v
        })
    }

    fn object(&mut self) -> Option<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<f64>().ok().map(Json::Num)
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse_json(text: &str) -> Option<Json> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let j = parse_json(r#"{"k": "a\"b\\c\ndAé", "n": [1.5e3, -0.25, null]}"#).unwrap();
        assert_eq!(j.str_of("k").unwrap(), "a\"b\\c\ndAé");
        let Json::Arr(items) = j.get("n").unwrap() else {
            panic!()
        };
        assert_eq!(items[0], Json::Num(1500.0));
        assert_eq!(items[1], Json::Num(-0.25));
        assert!(items[2].num().unwrap().is_nan());
    }

    #[test]
    fn render_is_compact_and_ordered() {
        let v = Json::Obj(vec![
            ("b".into(), Json::from(1.5)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s".into(), Json::from("x\"y")),
        ]);
        assert_eq!(v.render(), r#"{"b":1.5,"a":[null,true],"s":"x\"y"}"#);
    }

    #[test]
    fn accessors_cover_all_shapes() {
        let j = parse_json(r#"{"f": 2.5, "s": "hi", "b": false, "a": [1], "n": null}"#).unwrap();
        assert_eq!(j.f64_of("f"), Some(2.5));
        assert_eq!(j.usize_of("f"), Some(2));
        assert_eq!(j.str_of("s").as_deref(), Some("hi"));
        assert_eq!(j.bool_of("b"), Some(false));
        assert_eq!(j.get("a").unwrap().arr().unwrap().len(), 1);
        assert!(j.f64_of("n").unwrap().is_nan());
        assert_eq!(j.f64_of("missing"), None);
        assert_eq!(j.get("s").unwrap().bool(), None);
    }

    #[test]
    fn strict_integer_accessors_reject_instead_of_truncating() {
        let j = parse_json(
            r#"{"ok": 422, "big": 70000, "frac": 404.5, "neg": -1,
                "huge": 1e300, "zero": 0, "str": "5"}"#,
        )
        .unwrap();
        assert_eq!(j.u16_of("ok"), Some(422));
        assert_eq!(j.u64_of("big"), Some(70000));
        assert_eq!(j.u16_of("big"), None); // in u64 range, not u16
        assert_eq!(j.u64_of("frac"), None); // fractional: reject
        assert_eq!(j.u16_of("frac"), None);
        assert_eq!(j.u64_of("neg"), None); // negative: reject
        assert_eq!(j.u64_of("huge"), None); // beyond exact-f64 integers
        assert_eq!(j.u64_of("zero"), Some(0));
        assert_eq!(j.u64_of("str"), None); // wrong type
        assert_eq!(j.u64_of("missing"), None);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse_json("{\"a\": 1} trailing").is_none());
        assert!(parse_json("{\"a\": ").is_none());
        assert!(parse_json("[1, 2").is_none());
        assert!(parse_json("\"unterminated").is_none());
        assert!(parse_json("{\"a\" 1}").is_none());
    }

    // -----------------------------------------------------------------
    // Round-trip property tests (fixed-seed, in-tree RNG — the workspace
    // carries no external property-testing dependency).
    // -----------------------------------------------------------------

    /// xorshift64* — deterministic, seedable, good enough to fuzz a
    /// parser.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn f64(&mut self) -> f64 {
            // A mix of magnitudes, including exact integers, subnormal
            // neighborhoods and negative values.
            match self.below(5) {
                0 => self.below(1_000_000) as f64,
                1 => -(self.below(1_000) as f64) / 7.0,
                2 => f64::from_bits(self.next() >> 2), // finite range
                3 => (self.next() as f64) * 1e-300,
                _ => (self.below(100) as f64) * 0.1,
            }
        }

        fn string(&mut self) -> String {
            let len = self.below(12) as usize;
            (0..len)
                .map(|_| match self.below(6) {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => 'é',
                    4 => char::from_u32(0x2603).unwrap(), // ☃
                    _ => (b'a' + (self.below(26) as u8)) as char,
                })
                .collect()
        }

        fn value(&mut self, depth: usize) -> Json {
            let choices = if depth == 0 { 4 } else { 6 };
            match self.below(choices) {
                0 => Json::Null,
                1 => Json::Bool(self.below(2) == 0),
                2 => {
                    let mut x = self.f64();
                    if !x.is_finite() {
                        x = 0.0;
                    }
                    Json::Num(x)
                }
                3 => Json::Str(self.string()),
                4 => Json::Arr((0..self.below(4)).map(|_| self.value(depth - 1)).collect()),
                _ => Json::Obj(
                    (0..self.below(4))
                        .map(|i| (format!("k{i}_{}", self.string()), self.value(depth - 1)))
                        .collect(),
                ),
            }
        }
    }

    /// Bit-exact equality (`PartialEq` on f64 misses the -0.0/0.0 and
    /// NaN corners).
    fn bit_eq(a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Num(x), Json::Num(y)) => x.to_bits() == y.to_bits(),
            (Json::Arr(xs), Json::Arr(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bit_eq(x, y))
            }
            (Json::Obj(xs), Json::Obj(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|((ka, va), (kb, vb))| ka == kb && bit_eq(va, vb))
            }
            _ => a == b,
        }
    }

    #[test]
    fn prop_parse_render_round_trips_bit_exactly() {
        let mut rng = Rng(0x5eed_cafe_f00d_0001);
        for _ in 0..500 {
            let v = rng.value(3);
            let text = v.render();
            let back =
                parse_json(&text).unwrap_or_else(|| panic!("rendered JSON must re-parse: {text}"));
            assert!(bit_eq(&v, &back), "round trip changed the value: {text}");
            // Render ∘ parse ∘ render is a fixed point.
            assert_eq!(text, back.render());
        }
    }

    #[test]
    fn prop_f64_shortest_decimal_round_trips() {
        let mut rng = Rng(0xdead_beef_0000_0042);
        for _ in 0..2000 {
            let x = f64::from_bits(rng.next());
            if !x.is_finite() {
                continue;
            }
            let text = fmt_f64(x);
            let back = text.parse::<f64>().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn prop_parser_never_panics_on_mutations() {
        let mut rng = Rng(0x0123_4567_89ab_cdef);
        for _ in 0..300 {
            let v = rng.value(2);
            let mut bytes = v.render().into_bytes();
            if bytes.is_empty() {
                continue;
            }
            // Flip one byte; the parser must reject or re-parse without
            // panicking, never loop forever.
            let i = (rng.below(bytes.len() as u64)) as usize;
            bytes[i] = (rng.next() & 0x7f) as u8;
            if let Ok(text) = String::from_utf8(bytes) {
                let _ = parse_json(&text);
            }
        }
    }
}
