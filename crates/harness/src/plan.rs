//! Cluster capacity planner — the decision tool the paper's data is
//! for (`POST /v1/plan`, `spechpc plan`).
//!
//! A [`PlanRequest`] declares a modeled cluster (machine preset × node
//! count), a queue of benchmark submissions (benchmark, ranks, arrival
//! time, optional fault plan), and optional fleet-wide power caps plus
//! what-if variants. The planner runs a discrete-event FCFS + EASY
//! backfill scheduler over the queue: the simulation engine supplies
//! each distinct job *shape* (benchmark/class/ranks/faults) exactly
//! once — cached and byte-replayable like any other run — and
//! [`throttle_slowdown`] rescales durations under a cap using the same
//! DVFS law the `spechpc dvfs` sweep plots. The answer is per-job
//! wait/turnaround, utilization, makespan, fleet energy/EDP, and a
//! scenario-comparison block for multi-variant requests.
//!
//! Determinism is non-negotiable: the scheduler is a pure function,
//! job shapes come from the deterministic engine, and the response is
//! rendered through the in-tree [`Json`] codec — the same
//! `PlanRequest` always yields a byte-identical `PlanResponse`, so
//! planner replies are cacheable and fleet-routable like everything
//! else.
//!
//! ## Power-cap model
//!
//! A fleet cap `power_cap_w` is divided evenly over the scenario's
//! nodes and inverted through the package DVFS law
//! (`P(f) = P_base + (P_hot − P_base)·(f/f₀)^1.8`, the fit behind
//! [`spechpc_power::dvfs::package_power_at`]) at the *hottest
//! admissible load* — every core busy at full utilization — giving a
//! capped clock `cap_ghz` that no admitted job can exceed the budget
//! at. Each job then stretches by
//! `throttle_slowdown(f₀, cap_ghz, φ)` where φ is its roofline
//! flops/memory split, and its dynamic package power rescales by
//! `(cap_ghz/f₀)^1.8` above the frequency-independent idle baseline.

use std::collections::{BTreeMap, VecDeque};

use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::common::model::NodeModel;
use spechpc_kernels::registry::benchmark_by_name;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_power::dvfs::{throttle_slowdown, DVFS_EXPONENT};
use spechpc_simmpi::faults::FaultPlan;

use crate::api::{
    self, config_from_json, config_to_json, fault_plan_from_json, fault_plan_to_json, parse_class,
    resolve_cluster, ApiError,
};
use crate::exec::{Executor, RunSpec};
use crate::json::{parse_json, Json};
use crate::report::{fmt, pct};
use crate::runner::RunConfig;

/// Hard ceiling on the expanded job count of one plan — a 500-job queue
/// is the design load; six figures is a client bug.
pub const MAX_PLAN_JOBS: usize = 100_000;

/// Hard ceiling on what-if variants per request (each variant on a new
/// cluster re-resolves every job shape through the engine).
pub const MAX_PLAN_VARIANTS: usize = 16;

/// Hard ceiling on modeled cluster size.
pub const MAX_PLAN_NODES: usize = 1 << 20;

/// 422 — the plan is well-formed JSON but semantically impossible.
fn invalid(message: impl Into<String>) -> ApiError {
    ApiError::new(422, "invalid_plan", message)
}

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

/// One job template in the queue: a benchmark submission, optionally
/// repeated `count` times at a fixed interarrival gap (so a 500-job
/// queue is a handful of templates, not 500 objects on the wire).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PlanJob {
    /// Benchmark name (see `spechpc list`).
    pub benchmark: String,
    /// Workload class of each submission.
    pub class: WorkloadClass,
    /// Ranks per submission; `0` = one full node of the scenario's
    /// cluster.
    pub nranks: usize,
    /// Arrival time of the first submission (seconds).
    pub arrival_s: f64,
    /// Number of submissions this template expands to (≥ 1).
    pub count: usize,
    /// Gap between successive submissions (seconds).
    pub interarrival_s: f64,
    /// Per-job fault plan; the empty plan inherits the request-level
    /// `config.faults`.
    pub faults: FaultPlan,
}

impl PlanJob {
    pub fn new(benchmark: impl Into<String>, class: WorkloadClass, nranks: usize) -> Self {
        PlanJob {
            benchmark: benchmark.into(),
            class,
            nranks,
            arrival_s: 0.0,
            count: 1,
            interarrival_s: 0.0,
            faults: FaultPlan::none(),
        }
    }

    /// Builder: arrival time of the first submission.
    pub fn with_arrival(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }

    /// Builder: expand to `count` submissions, `interarrival_s` apart.
    pub fn with_count(mut self, count: usize, interarrival_s: f64) -> Self {
        self.count = count;
        self.interarrival_s = if count > 1 { interarrival_s } else { 0.0 };
        self
    }

    /// Builder: seeded fault-injection plan for these submissions.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("benchmark".into(), Json::from(self.benchmark.as_str())),
            ("class".into(), Json::from(self.class.to_string())),
            ("nranks".into(), Json::from(self.nranks)),
            ("arrival_s".into(), Json::from(self.arrival_s)),
        ];
        if self.count != 1 {
            fields.push(("count".into(), Json::from(self.count)));
            fields.push(("interarrival_s".into(), Json::from(self.interarrival_s)));
        }
        if !self.faults.is_none() {
            fields.push(("faults".into(), fault_plan_to_json(&self.faults)));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<PlanJob, ApiError> {
        let benchmark = v
            .str_of("benchmark")
            .ok_or_else(|| ApiError::bad_request("missing field 'benchmark' in plan job"))?;
        let class = parse_class(&v.str_of("class").unwrap_or_else(|| "tiny".to_string()))?;
        let nranks = uint_field(v, "nranks", 0)? as usize;
        let arrival_s = float_field(v, "arrival_s", 0.0)?;
        let count = uint_field(v, "count", 1)? as usize;
        if count == 0 {
            return Err(invalid("'count' must be >= 1"));
        }
        // With a single submission the gap is meaningless: normalize it
        // away so equivalent requests hash (and replay) identically.
        let interarrival_s = if count > 1 {
            float_field(v, "interarrival_s", 0.0)?
        } else {
            0.0
        };
        let faults = match v.get("faults") {
            Some(f) => fault_plan_from_json(f)?,
            None => FaultPlan::none(),
        };
        Ok(PlanJob {
            benchmark,
            class,
            nranks,
            arrival_s,
            count,
            interarrival_s,
            faults,
        })
    }
}

/// A what-if variant: the baseline scenario with any of cluster, node
/// count or power cap overridden. Absent fields inherit the baseline.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PlanVariant {
    /// Scenario name (unique; `"baseline"` is reserved).
    pub name: String,
    pub cluster: Option<String>,
    pub nodes: Option<usize>,
    pub power_cap_w: Option<f64>,
}

impl PlanVariant {
    pub fn new(name: impl Into<String>) -> Self {
        PlanVariant {
            name: name.into(),
            cluster: None,
            nodes: None,
            power_cap_w: None,
        }
    }

    /// Builder: override the cluster preset.
    pub fn with_cluster(mut self, cluster: impl Into<String>) -> Self {
        self.cluster = Some(cluster.into());
        self
    }

    /// Builder: override the node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Builder: override the fleet power cap (`0` = uncapped).
    pub fn with_power_cap_w(mut self, watts: f64) -> Self {
        self.power_cap_w = Some(watts);
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("name".into(), Json::from(self.name.as_str()))];
        if let Some(c) = &self.cluster {
            fields.push(("cluster".into(), Json::from(c.as_str())));
        }
        if let Some(n) = self.nodes {
            fields.push(("nodes".into(), Json::from(n)));
        }
        if let Some(w) = self.power_cap_w {
            fields.push(("power_cap_w".into(), Json::from(w)));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<PlanVariant, ApiError> {
        let name = v
            .str_of("name")
            .ok_or_else(|| ApiError::bad_request("missing field 'name' in plan variant"))?;
        if name.is_empty() || name == "baseline" {
            return Err(invalid(
                "variant names must be non-empty and 'baseline' is reserved",
            ));
        }
        let nodes = match v.get("nodes") {
            None => None,
            Some(_) => Some(uint_field(v, "nodes", 0)? as usize),
        };
        let power_cap_w = match v.get("power_cap_w") {
            None => None,
            Some(_) => Some(float_field(v, "power_cap_w", 0.0)?),
        };
        Ok(PlanVariant {
            name,
            cluster: v.str_of("cluster"),
            nodes,
            power_cap_w,
        })
    }
}

/// The `POST /v1/plan` body: a modeled cluster, a job queue, run rules
/// shared by every shape resolution, and optional what-if variants.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PlanRequest {
    /// Baseline cluster name or alias.
    pub cluster: String,
    /// Baseline node count; `0` = the preset's full size.
    pub nodes: usize,
    /// Baseline fleet power cap in watts; `0` = uncapped.
    pub power_cap_w: f64,
    /// Engine run rules for shape resolution (warmup/measured/reps,
    /// threads, default faults).
    pub config: RunConfig,
    /// Job templates (expanded in order).
    pub jobs: Vec<PlanJob>,
    /// What-if variants evaluated next to the baseline.
    pub variants: Vec<PlanVariant>,
}

impl Default for PlanRequest {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanRequest {
    pub fn new() -> Self {
        PlanRequest {
            cluster: "a".to_string(),
            nodes: 0,
            power_cap_w: 0.0,
            config: RunConfig::default(),
            jobs: Vec::new(),
            variants: Vec::new(),
        }
    }

    /// Builder: baseline cluster (name or alias).
    pub fn with_cluster(mut self, cluster: impl Into<String>) -> Self {
        self.cluster = cluster.into();
        self
    }

    /// Builder: baseline node count (`0` = preset size).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder: baseline fleet power cap (`0` = uncapped).
    pub fn with_power_cap_w(mut self, watts: f64) -> Self {
        self.power_cap_w = watts;
        self
    }

    /// Builder: engine run rules.
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: append one job template.
    pub fn with_job(mut self, job: PlanJob) -> Self {
        self.jobs.push(job);
        self
    }

    /// Builder: append one what-if variant.
    pub fn with_variant(mut self, variant: PlanVariant) -> Self {
        self.variants.push(variant);
        self
    }

    /// Serialize as the `POST /v1/plan` body (also the canonical form
    /// the fleet coordinator hashes for routing).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("cluster".into(), Json::from(self.cluster.as_str())),
            ("nodes".into(), Json::from(self.nodes)),
            ("power_cap_w".into(), Json::from(self.power_cap_w)),
            (
                "jobs".into(),
                Json::Arr(self.jobs.iter().map(PlanJob::to_json).collect()),
            ),
        ];
        if !self.variants.is_empty() {
            fields.push((
                "variants".into(),
                Json::Arr(self.variants.iter().map(PlanVariant::to_json).collect()),
            ));
        }
        fields.push(("config".into(), config_to_json(&self.config)));
        Json::Obj(fields).render()
    }

    /// Decode a `POST /v1/plan` body. Malformed shapes reject here;
    /// semantic impossibilities (unknown clusters, infeasible caps,
    /// jobs wider than the cluster) reject at evaluation.
    pub fn from_json(text: &str) -> Result<PlanRequest, ApiError> {
        let v = parse_json(text)
            .ok_or_else(|| ApiError::bad_request("request body is not valid JSON"))?;
        let cluster = v.str_of("cluster").unwrap_or_else(|| "a".to_string());
        let nodes = uint_field(&v, "nodes", 0)? as usize;
        if nodes > MAX_PLAN_NODES {
            return Err(invalid(format!("'nodes' must be <= {MAX_PLAN_NODES}")));
        }
        let power_cap_w = float_field(&v, "power_cap_w", 0.0)?;
        let jobs = v
            .get("jobs")
            .and_then(Json::arr)
            .ok_or_else(|| ApiError::bad_request("missing field 'jobs' (array of job templates)"))?
            .iter()
            .map(PlanJob::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let variants = match v.get("variants").and_then(Json::arr) {
            Some(vs) => vs
                .iter()
                .map(PlanVariant::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        if variants.len() > MAX_PLAN_VARIANTS {
            return Err(invalid(format!(
                "at most {MAX_PLAN_VARIANTS} variants per plan"
            )));
        }
        let config = match v.get("config") {
            Some(c) => config_from_json(c)?,
            None => RunConfig::default(),
        };
        let req = PlanRequest {
            cluster,
            nodes,
            power_cap_w,
            config,
            jobs,
            variants,
        };
        // Fail fast on empty/oversized queues and duplicate names so a
        // bad request never reaches the engine.
        req.expanded_jobs()?;
        req.scenarios()?;
        Ok(req)
    }

    /// Expand the templates into `(template index, arrival)` instances,
    /// in template order then submission order.
    fn expanded_jobs(&self) -> Result<Vec<(usize, f64)>, ApiError> {
        let mut out = Vec::new();
        for (t, job) in self.jobs.iter().enumerate() {
            if job.count == 0 {
                return Err(invalid("'count' must be >= 1"));
            }
            if job.count > MAX_PLAN_JOBS || out.len() + job.count > MAX_PLAN_JOBS {
                return Err(invalid(format!(
                    "plan expands to more than {MAX_PLAN_JOBS} jobs"
                )));
            }
            for i in 0..job.count {
                out.push((t, job.arrival_s + i as f64 * job.interarrival_s));
            }
        }
        if out.is_empty() {
            return Err(invalid("plan has no jobs"));
        }
        Ok(out)
    }

    /// The scenario list: baseline first, then each variant with its
    /// overrides applied.
    fn scenarios(&self) -> Result<Vec<ScenarioSpec>, ApiError> {
        let mut out = vec![ScenarioSpec {
            name: "baseline".to_string(),
            cluster: self.cluster.clone(),
            nodes: self.nodes,
            power_cap_w: self.power_cap_w,
        }];
        for v in &self.variants {
            out.push(ScenarioSpec {
                name: v.name.clone(),
                cluster: v.cluster.clone().unwrap_or_else(|| self.cluster.clone()),
                nodes: v.nodes.unwrap_or(self.nodes),
                power_cap_w: v.power_cap_w.unwrap_or(self.power_cap_w),
            });
        }
        for (i, a) in out.iter().enumerate() {
            if out[i + 1..].iter().any(|b| b.name == a.name) {
                return Err(invalid(format!("duplicate scenario name '{}'", a.name)));
            }
        }
        Ok(out)
    }
}

/// `v[key]` as a strict non-negative integer with a default when
/// absent; fractional or out-of-range values reject, never truncate.
fn uint_field(v: &Json, key: &str, default: u64) -> Result<u64, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => v.u64_of(key).ok_or_else(|| {
            ApiError::bad_request(format!("'{key}' must be a non-negative integer"))
        }),
    }
}

/// `v[key]` as a finite non-negative number with a default when absent.
fn float_field(v: &Json, key: &str, default: f64) -> Result<f64, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => match x.num() {
            Some(x) if x.is_finite() && x >= 0.0 => Ok(x),
            _ => Err(ApiError::bad_request(format!(
                "'{key}' must be a finite non-negative number"
            ))),
        },
    }
}

/// One resolved scenario (baseline or variant).
struct ScenarioSpec {
    name: String,
    cluster: String,
    nodes: usize,
    power_cap_w: f64,
}

// ---------------------------------------------------------------------------
// Job shapes (what the engine contributes)
// ---------------------------------------------------------------------------

/// Everything the scheduler and the energy model need to know about one
/// distinct job shape, as resolved by a single engine run.
#[derive(Debug, Clone, Copy)]
pub struct JobShape {
    /// Wall-clock of one submission at the base clock (seconds).
    pub runtime_s: f64,
    /// Nodes one submission occupies.
    pub nodes: usize,
    /// Job-total package power at the base clock (watts, all nodes).
    pub package_w: f64,
    /// Job-total DRAM power (watts, all nodes).
    pub dram_w: f64,
    /// Roofline flops/(flops+mem) split of a representative rank — the
    /// φ that [`throttle_slowdown`] stretches runtimes by.
    pub flops_fraction: f64,
}

/// The roofline flops/memory split the DVFS slowdown model needs,
/// derived from the same per-rank compute-time model the engine runs.
pub fn flops_fraction(
    cluster: &ClusterSpec,
    benchmark: &str,
    class: WorkloadClass,
    nranks: usize,
) -> f64 {
    let Some(bench) = benchmark_by_name(benchmark) else {
        return 0.5; // unreachable after a successful engine run
    };
    let sig = bench.signature(class);
    let ct = NodeModel::new(cluster, nranks).compute_times(&sig, &[]);
    let (t_flops, t_mem) = (ct.t_flops[0], ct.t_mem[0]);
    if t_flops + t_mem > 0.0 {
        t_flops / (t_flops + t_mem)
    } else {
        0.0
    }
}

/// Resolve one job shape through the executor (cached, deterministic).
fn engine_shape(
    exec: &Executor,
    config: &RunConfig,
    cluster: &ClusterSpec,
    benchmark: &str,
    class: WorkloadClass,
    nranks: usize,
    faults: &FaultPlan,
) -> Result<JobShape, ApiError> {
    let forked = exec.with_run_config(config.clone().with_faults(faults.clone()));
    let result = forked.run_one(cluster, &RunSpec::new(benchmark, class, nranks))?;
    Ok(JobShape {
        runtime_s: result.runtime_s,
        nodes: result.nodes_used,
        package_w: result.power.package_w,
        dram_w: result.power.dram_w,
        flops_fraction: flops_fraction(cluster, benchmark, class, nranks),
    })
}

// ---------------------------------------------------------------------------
// Power cap → capped clock
// ---------------------------------------------------------------------------

/// The highest core clock at which one *fully busy, fully hot* node
/// stays within `node_budget_w` package watts — the package DVFS law
/// inverted in closed form. Budgets at or above full hot power return
/// the base clock (the cap binds nothing); budgets at or below the
/// idle baseline are infeasible (422 — no clock sheds baseline power).
pub fn cap_clock_ghz(cluster: &ClusterSpec, node_budget_w: f64) -> Result<f64, ApiError> {
    let cpu = &cluster.node.cpu;
    let per_socket = node_budget_w / cluster.node.sockets as f64;
    let full = cpu.package_power(cpu.cores_per_socket, 1.0, 1.0);
    if per_socket >= full {
        return Ok(cpu.base_clock_ghz);
    }
    if per_socket <= cpu.baseline_power_w {
        return Err(ApiError::new(
            422,
            "infeasible_power_cap",
            format!(
                "power cap leaves {per_socket:.0} W per socket on {}, at or below the \
                 {:.0} W idle baseline — no clock satisfies it",
                cluster.name, cpu.baseline_power_w
            ),
        ));
    }
    let scale = (per_socket - cpu.baseline_power_w) / (full - cpu.baseline_power_w);
    Ok(cpu.base_clock_ghz * scale.powf(1.0 / DVFS_EXPONENT))
}

// ---------------------------------------------------------------------------
// FCFS + EASY backfill scheduler
// ---------------------------------------------------------------------------

/// One schedulable job instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedJob {
    pub arrival_s: f64,
    pub nodes: usize,
    pub duration_s: f64,
}

/// Where the scheduler placed one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    pub start_s: f64,
    pub end_s: f64,
}

/// FCFS with EASY backfill (Lifka '95): the queue head gets a
/// reservation at the *shadow time* (the earliest instant enough
/// running jobs have drained for it); any later job may jump the queue
/// iff it fits the free nodes now and either finishes before the
/// shadow or squeezes into the nodes the head will leave idle — so
/// backfilling never delays the head, and every job's wait is bounded
/// by the drain of the work ahead of it (no starvation).
///
/// Pure and deterministic: ties break by index, time advances by
/// `total_cmp`. Returns one [`Placement`] per input job, input order.
///
/// # Panics
/// If `total_nodes == 0`, a job is wider than the cluster, or any
/// time is negative/non-finite. [`evaluate_plan`] validates first and
/// maps violations to typed 422s.
pub fn easy_schedule(jobs: &[SchedJob], total_nodes: usize) -> Vec<Placement> {
    assert!(total_nodes > 0, "cluster must have at least one node");
    for j in jobs {
        assert!(
            j.nodes > 0 && j.nodes <= total_nodes,
            "job width must fit the cluster"
        );
        assert!(j.arrival_s.is_finite() && j.arrival_s >= 0.0);
        assert!(j.duration_s.is_finite() && j.duration_s >= 0.0);
    }
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival_s
            .total_cmp(&jobs[b].arrival_s)
            .then(a.cmp(&b))
    });

    let mut placed = vec![
        Placement {
            start_s: 0.0,
            end_s: 0.0
        };
        jobs.len()
    ];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<(f64, usize)> = Vec::new(); // (end, job index)
    let mut free = total_nodes;
    let mut next = 0usize;
    let mut now = order.first().map(|&i| jobs[i].arrival_s).unwrap_or(0.0);

    let start = |idx: usize,
                 now: f64,
                 placed: &mut Vec<Placement>,
                 running: &mut Vec<(f64, usize)>,
                 free: &mut usize| {
        placed[idx] = Placement {
            start_s: now,
            end_s: now + jobs[idx].duration_s,
        };
        *free -= jobs[idx].nodes;
        running.push((placed[idx].end_s, idx));
    };

    loop {
        while next < order.len() && jobs[order[next]].arrival_s <= now {
            queue.push_back(order[next]);
            next += 1;
        }
        // Scheduling pass: start FCFS heads, then try one backfill, and
        // repeat until a fixpoint — each backfill changes free/shadow,
        // so the reservation is recomputed before the next jump.
        loop {
            let mut progressed = false;
            while let Some(&head) = queue.front() {
                if jobs[head].nodes > free {
                    break;
                }
                queue.pop_front();
                start(head, now, &mut placed, &mut running, &mut free);
                progressed = true;
            }
            if let Some(&head) = queue.front() {
                // Shadow time: walk running jobs by completion until the
                // head's width is available. (The head is blocked, so
                // something is running: an idle cluster always fits it.)
                let mut ends: Vec<(f64, usize)> =
                    running.iter().map(|&(e, i)| (e, jobs[i].nodes)).collect();
                ends.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut avail = free;
                let mut shadow = now;
                for (end, width) in ends {
                    if avail >= jobs[head].nodes {
                        break;
                    }
                    avail += width;
                    shadow = end;
                }
                // Nodes still free at the shadow after the head starts:
                // a narrow enough job may run past the shadow harmlessly.
                let extra = avail - jobs[head].nodes;
                let mut qi = 1;
                while qi < queue.len() {
                    let j = queue[qi];
                    let fits = jobs[j].nodes <= free;
                    let harmless = now + jobs[j].duration_s <= shadow || jobs[j].nodes <= extra;
                    if fits && harmless {
                        queue.remove(qi);
                        start(j, now, &mut placed, &mut running, &mut free);
                        progressed = true;
                        break;
                    }
                    qi += 1;
                }
            }
            if !progressed {
                break;
            }
        }
        if queue.is_empty() && next >= order.len() && running.is_empty() {
            break;
        }
        let next_end = running
            .iter()
            .map(|&(e, _)| e)
            .fold(f64::INFINITY, f64::min);
        let next_arrival = if next < order.len() {
            jobs[order[next]].arrival_s
        } else {
            f64::INFINITY
        };
        let t = next_end.min(next_arrival);
        debug_assert!(t.is_finite(), "a blocked head implies running jobs");
        now = now.max(t);
        running.retain(|&(end, idx)| {
            if end <= now {
                free += jobs[idx].nodes;
                false
            } else {
                true
            }
        });
    }
    placed
}

// ---------------------------------------------------------------------------
// Response
// ---------------------------------------------------------------------------

/// One scheduled job in a scenario's timeline.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct PlannedJob {
    pub nodes: usize,
    pub start_s: f64,
    pub end_s: f64,
    pub wait_s: f64,
}

/// The planner's verdict on one scenario.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScenarioOutcome {
    pub name: String,
    /// Resolved cluster display name (`ClusterA`/`ClusterB`).
    pub cluster: String,
    pub nodes: usize,
    /// Fleet power cap (watts; `0` = uncapped).
    pub power_cap_w: f64,
    /// The clock the cap binds every job to (= base clock uncapped).
    pub cap_ghz: f64,
    pub makespan_s: f64,
    /// Node-seconds busy over node-seconds available.
    pub utilization: f64,
    pub wait_mean_s: f64,
    pub wait_p95_s: f64,
    pub wait_max_s: f64,
    pub turnaround_mean_s: f64,
    pub turnaround_max_s: f64,
    /// Job package energy (joules, all jobs).
    pub cpu_j: f64,
    /// Job DRAM energy (joules, all jobs).
    pub dram_j: f64,
    /// Baseline energy of node-seconds left idle over the makespan —
    /// reported next to, not inside, the job total.
    pub idle_j: f64,
    /// One row per expanded job, request order.
    pub per_job: Vec<PlannedJob>,
}

impl ScenarioOutcome {
    /// Job energy-to-solution of the whole queue (package + DRAM).
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.dram_j
    }

    /// Fleet energy-delay product: job energy × makespan.
    pub fn edp_js(&self) -> f64 {
        self.total_j() * self.makespan_s
    }

    fn to_value(&self) -> Json {
        let per_job = self
            .per_job
            .iter()
            .map(|j| {
                Json::Arr(vec![
                    Json::from(j.nodes),
                    Json::from(j.start_s),
                    Json::from(j.end_s),
                    Json::from(j.wait_s),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("cluster".into(), Json::from(self.cluster.as_str())),
            ("nodes".into(), Json::from(self.nodes)),
            ("power_cap_w".into(), Json::from(self.power_cap_w)),
            ("cap_ghz".into(), Json::from(self.cap_ghz)),
            ("makespan_s".into(), Json::from(self.makespan_s)),
            ("utilization".into(), Json::from(self.utilization)),
            (
                "wait".into(),
                Json::Obj(vec![
                    ("mean_s".into(), Json::from(self.wait_mean_s)),
                    ("p95_s".into(), Json::from(self.wait_p95_s)),
                    ("max_s".into(), Json::from(self.wait_max_s)),
                ]),
            ),
            (
                "turnaround".into(),
                Json::Obj(vec![
                    ("mean_s".into(), Json::from(self.turnaround_mean_s)),
                    ("max_s".into(), Json::from(self.turnaround_max_s)),
                ]),
            ),
            (
                "energy".into(),
                Json::Obj(vec![
                    ("cpu_j".into(), Json::from(self.cpu_j)),
                    ("dram_j".into(), Json::from(self.dram_j)),
                    ("total_j".into(), Json::from(self.total_j())),
                    ("idle_j".into(), Json::from(self.idle_j)),
                    ("edp_js".into(), Json::from(self.edp_js())),
                ]),
            ),
            ("per_job".into(), Json::Arr(per_job)),
        ])
    }
}

/// The `POST /v1/plan` answer: one outcome per scenario (baseline
/// first) plus a comparison block when variants were requested.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PlanResponse {
    /// Expanded job count (identical across scenarios).
    pub jobs: usize,
    pub scenarios: Vec<ScenarioOutcome>,
}

impl PlanResponse {
    /// Serialize as the `POST /v1/plan` response body. Deterministic:
    /// field order is fixed and every number renders through the
    /// in-tree codec, so equal plans are byte-equal on the wire.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::from(api::API_SCHEMA_VERSION)),
            ("jobs".into(), Json::from(self.jobs)),
            (
                "scenarios".into(),
                Json::Arr(
                    self.scenarios
                        .iter()
                        .map(ScenarioOutcome::to_value)
                        .collect(),
                ),
            ),
        ];
        if self.scenarios.len() > 1 {
            fields.push(("comparison".into(), self.comparison_value()));
        }
        let mut body = Json::Obj(fields).render();
        body.push('\n');
        body
    }

    /// Variant-vs-baseline ratios plus the winners across all
    /// scenarios (ratios against a zero baseline render as `null`).
    fn comparison_value(&self) -> Json {
        let base = &self.scenarios[0];
        let ratio = |v: f64, b: f64| {
            if b > 0.0 {
                Json::from(v / b)
            } else {
                Json::Null
            }
        };
        let rows = self.scenarios[1..]
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::from(s.name.as_str())),
                    (
                        "makespan_ratio".into(),
                        ratio(s.makespan_s, base.makespan_s),
                    ),
                    ("energy_ratio".into(), ratio(s.total_j(), base.total_j())),
                    ("edp_ratio".into(), ratio(s.edp_js(), base.edp_js())),
                    (
                        "mean_wait_ratio".into(),
                        ratio(s.wait_mean_s, base.wait_mean_s),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("baseline".into(), Json::from(base.name.as_str())),
            ("scenarios".into(), Json::Arr(rows)),
            (
                "best_energy".into(),
                Json::from(best_by(&self.scenarios, |s| s.total_j())),
            ),
            (
                "best_makespan".into(),
                Json::from(best_by(&self.scenarios, |s| s.makespan_s)),
            ),
        ])
    }
}

/// The first scenario minimizing `key` (ties keep request order).
fn best_by(scenarios: &[ScenarioOutcome], key: impl Fn(&ScenarioOutcome) -> f64) -> String {
    let mut best = &scenarios[0];
    for s in &scenarios[1..] {
        if key(s).total_cmp(&key(best)).is_lt() {
            best = s;
        }
    }
    best.name.clone()
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Evaluate a plan with job shapes supplied by `shape_of` — the
/// planner core, kept engine-free so schedulers and power math are
/// testable against synthetic shapes. [`dispatch_plan`] is the
/// engine-backed entry the service uses.
///
/// Shape resolutions are memoized per (cluster, benchmark, class,
/// ranks, faults), so a 500-job queue of a handful of templates costs
/// a handful of engine runs.
pub fn evaluate_plan<F>(req: &PlanRequest, shape_of: &mut F) -> Result<PlanResponse, ApiError>
where
    F: FnMut(&ClusterSpec, &str, WorkloadClass, usize, &FaultPlan) -> Result<JobShape, ApiError>,
{
    let expanded = req.expanded_jobs()?;
    let scenario_specs = req.scenarios()?;
    let mut memo: BTreeMap<(String, String, String, usize, String), JobShape> = BTreeMap::new();
    let mut scenarios = Vec::with_capacity(scenario_specs.len());

    for spec in &scenario_specs {
        let cluster = resolve_cluster(&spec.cluster)?;
        let nodes = if spec.nodes == 0 {
            cluster.nodes
        } else {
            spec.nodes
        };
        if nodes == 0 || nodes > MAX_PLAN_NODES {
            return Err(invalid(format!(
                "scenario '{}' must model between 1 and {MAX_PLAN_NODES} nodes",
                spec.name
            )));
        }
        let base_ghz = cluster.node.cpu.base_clock_ghz;
        let cap_ghz = if spec.power_cap_w > 0.0 {
            cap_clock_ghz(&cluster, spec.power_cap_w / nodes as f64)?
        } else {
            base_ghz
        };
        let dynamic_scale = (cap_ghz / base_ghz).powf(DVFS_EXPONENT);
        let node_baseline_w = cluster.node.sockets as f64 * cluster.node.cpu.baseline_power_w;

        let mut sched = Vec::with_capacity(expanded.len());
        let mut cpu_j = 0.0;
        let mut dram_j = 0.0;
        for &(t, arrival) in &expanded {
            let job = &req.jobs[t];
            let nranks = if job.nranks == 0 {
                cluster.node.cores()
            } else {
                job.nranks
            };
            // Shape resolution runs on the pristine preset, so shapes
            // are shared (and cached) across scenarios that only differ
            // in node count or cap; a job must still fit the preset.
            if nranks > cluster.total_cores() {
                return Err(invalid(format!(
                    "job '{}' needs {nranks} ranks but {} models at most {}",
                    job.benchmark,
                    cluster.name,
                    cluster.total_cores()
                )));
            }
            let faults = if job.faults.is_none() {
                req.config.faults.clone()
            } else {
                job.faults.clone()
            };
            let key = (
                cluster.name.clone(),
                job.benchmark.clone(),
                job.class.to_string(),
                nranks,
                faults.canonical(),
            );
            let shape = match memo.get(&key) {
                Some(s) => *s,
                None => {
                    let s = shape_of(&cluster, &job.benchmark, job.class, nranks, &faults)?;
                    memo.insert(key, s);
                    s
                }
            };
            if shape.nodes > nodes {
                return Err(invalid(format!(
                    "job '{}' spans {} nodes but scenario '{}' models {nodes}",
                    job.benchmark, shape.nodes, spec.name
                )));
            }
            let slowdown = throttle_slowdown(base_ghz, cap_ghz, shape.flops_fraction);
            let duration = shape.runtime_s * slowdown;
            // The job's idle floor (baseline of its nodes) is clock-
            // independent; only the dynamic share rescales with the cap.
            let floor_w = node_baseline_w * shape.nodes as f64;
            let package_w = floor_w + (shape.package_w - floor_w).max(0.0) * dynamic_scale;
            cpu_j += package_w * duration;
            dram_j += shape.dram_w * duration;
            sched.push(SchedJob {
                arrival_s: arrival,
                nodes: shape.nodes,
                duration_s: duration,
            });
        }

        let placed = easy_schedule(&sched, nodes);
        let t0 = sched
            .iter()
            .map(|j| j.arrival_s)
            .fold(f64::INFINITY, f64::min);
        let t1 = placed.iter().map(|p| p.end_s).fold(t0, f64::max);
        let makespan = t1 - t0;
        let busy_node_s: f64 = sched.iter().map(|j| j.nodes as f64 * j.duration_s).sum();
        let utilization = if makespan > 0.0 {
            busy_node_s / (nodes as f64 * makespan)
        } else {
            0.0
        };
        let idle_node_w = node_baseline_w
            + cluster.node.numa_domains() as f64 * cluster.node.domain_memory.dram_power(0.0);
        let idle_j = (nodes as f64 * makespan - busy_node_s).max(0.0) * idle_node_w;

        let per_job: Vec<PlannedJob> = sched
            .iter()
            .zip(&placed)
            .map(|(j, p)| PlannedJob {
                nodes: j.nodes,
                start_s: p.start_s,
                end_s: p.end_s,
                wait_s: p.start_s - j.arrival_s,
            })
            .collect();
        let mut waits: Vec<f64> = per_job.iter().map(|j| j.wait_s).collect();
        waits.sort_by(f64::total_cmp);
        let n = waits.len() as f64;
        let p95 = waits[((0.95 * n).ceil() as usize).clamp(1, waits.len()) - 1];
        let turnarounds: Vec<f64> = per_job
            .iter()
            .map(|j| j.end_s - (j.start_s - j.wait_s))
            .collect();

        scenarios.push(ScenarioOutcome {
            name: spec.name.clone(),
            cluster: cluster.name.clone(),
            nodes,
            power_cap_w: spec.power_cap_w,
            cap_ghz,
            makespan_s: makespan,
            utilization,
            wait_mean_s: waits.iter().sum::<f64>() / n,
            wait_p95_s: p95,
            wait_max_s: *waits.last().unwrap(),
            turnaround_mean_s: turnarounds.iter().sum::<f64>() / n,
            turnaround_max_s: turnarounds.iter().fold(0.0, |a, &b| a.max(b)),
            cpu_j,
            dram_j,
            idle_j,
            per_job,
        });
    }

    Ok(PlanResponse {
        jobs: expanded.len(),
        scenarios,
    })
}

/// Evaluate a plan with job shapes resolved by the executor — the
/// `POST /v1/plan` / `spechpc plan` entry point. Shapes go through the
/// run cache, so replays of the same plan are engine-free and the
/// response is byte-identical.
pub fn dispatch_plan(exec: &Executor, req: &PlanRequest) -> Result<PlanResponse, ApiError> {
    let config = req.config.clone();
    evaluate_plan(req, &mut |cluster, benchmark, class, nranks, faults| {
        engine_shape(exec, &config, cluster, benchmark, class, nranks, faults)
    })
}

// ---------------------------------------------------------------------------
// Rendering (the CLI's human-readable view)
// ---------------------------------------------------------------------------

/// The `spechpc plan` summary block.
pub fn render_plan_text(r: &PlanResponse) -> String {
    let mut out = format!(
        "capacity plan: {} job(s), {} scenario(s)\n",
        r.jobs,
        r.scenarios.len()
    );
    for s in &r.scenarios {
        let cap = if s.power_cap_w > 0.0 {
            format!("cap {} W -> {} GHz", fmt(s.power_cap_w), fmt(s.cap_ghz))
        } else {
            "uncapped".to_string()
        };
        out.push_str(&format!(
            "\n{}: {} x {} node(s), {}\n",
            s.name, s.cluster, s.nodes, cap
        ));
        out.push_str(&format!(
            "  makespan       {} s   utilization {}\n",
            fmt(s.makespan_s),
            pct(s.utilization * 100.0)
        ));
        out.push_str(&format!(
            "  wait           mean {} s / p95 {} s / max {} s\n",
            fmt(s.wait_mean_s),
            fmt(s.wait_p95_s),
            fmt(s.wait_max_s)
        ));
        out.push_str(&format!(
            "  turnaround     mean {} s / max {} s\n",
            fmt(s.turnaround_mean_s),
            fmt(s.turnaround_max_s)
        ));
        out.push_str(&format!(
            "  energy         {} kJ jobs (+ {} kJ idle)   EDP {} MJ*s\n",
            fmt(s.total_j() / 1e3),
            fmt(s.idle_j / 1e3),
            fmt(s.edp_js() / 1e6)
        ));
    }
    if r.scenarios.len() > 1 {
        let base = &r.scenarios[0];
        out.push_str(&format!("\ncomparison vs {}:\n", base.name));
        for s in &r.scenarios[1..] {
            let rel = |v: f64, b: f64| {
                if b > 0.0 {
                    format!("x{}", fmt(v / b))
                } else {
                    "n/a".to_string()
                }
            };
            out.push_str(&format!(
                "  {}: makespan {}  energy {}  EDP {}\n",
                s.name,
                rel(s.makespan_s, base.makespan_s),
                rel(s.total_j(), base.total_j()),
                rel(s.edp_js(), base.edp_js())
            ));
        }
        out.push_str(&format!(
            "  best energy: {}   best makespan: {}\n",
            best_by(&r.scenarios, |s| s.total_j()),
            best_by(&r.scenarios, |s| s.makespan_s)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_power::dvfs::package_power_at;

    fn shape(runtime_s: f64, nodes: usize, package_w: f64, phi: f64) -> JobShape {
        JobShape {
            runtime_s,
            nodes,
            package_w,
            dram_w: 50.0 * nodes as f64,
            flops_fraction: phi,
        }
    }

    /// A synthetic oracle: runtime scales with ranks, one node per 72
    /// ranks, constant power density.
    fn synthetic(
        cluster: &ClusterSpec,
        benchmark: &str,
        _class: WorkloadClass,
        nranks: usize,
        _faults: &FaultPlan,
    ) -> Result<JobShape, ApiError> {
        let nodes = nranks.div_ceil(cluster.node.cores());
        let phi = match benchmark {
            "sph-exa" => 0.9,
            "lbm" => 0.2,
            _ => 0.5,
        };
        let baseline = cluster.node.sockets as f64 * cluster.node.cpu.baseline_power_w;
        Ok(shape(
            100.0 + nranks as f64,
            nodes,
            (baseline + 180.0) * nodes as f64,
            phi,
        ))
    }

    #[test]
    fn easy_backfill_fills_holes_without_delaying_the_head() {
        // 4 nodes. j0 takes 3 of them for 100 s; j1 (the head) wants
        // all 4 and must wait for the shadow at t=100. j2 is short and
        // narrow (fits the hole, done before the shadow): backfills.
        // j3 is narrow but too long: would delay the head, waits.
        let jobs = [
            SchedJob {
                arrival_s: 0.0,
                nodes: 3,
                duration_s: 100.0,
            },
            SchedJob {
                arrival_s: 1.0,
                nodes: 4,
                duration_s: 10.0,
            },
            SchedJob {
                arrival_s: 2.0,
                nodes: 1,
                duration_s: 50.0,
            },
            SchedJob {
                arrival_s: 3.0,
                nodes: 1,
                duration_s: 200.0,
            },
        ];
        let p = easy_schedule(&jobs, 4);
        assert_eq!(p[0].start_s, 0.0);
        assert_eq!(p[1].start_s, 100.0, "head starts exactly at the shadow");
        assert_eq!(p[2].start_s, 2.0, "short narrow job backfills");
        assert_eq!(
            p[3].start_s, 110.0,
            "long narrow job must not delay the head"
        );
    }

    #[test]
    fn fcfs_order_holds_without_backfill_opportunities() {
        let jobs: Vec<SchedJob> = (0..5)
            .map(|i| SchedJob {
                arrival_s: i as f64,
                nodes: 2,
                duration_s: 10.0,
            })
            .collect();
        let p = easy_schedule(&jobs, 2);
        for i in 1..5 {
            assert_eq!(p[i].start_s, p[i - 1].end_s);
        }
    }

    #[test]
    fn cap_clock_inverts_the_package_power_law() {
        let cluster = resolve_cluster("a").unwrap();
        let cpu = &cluster.node.cpu;
        let full_node =
            cluster.node.sockets as f64 * cpu.package_power(cpu.cores_per_socket, 1.0, 1.0);
        // A 70% budget lands strictly between baseline and full power:
        // the returned clock reproduces the budget through the forward
        // model.
        let budget = 0.7 * full_node;
        let cap = cap_clock_ghz(&cluster, budget).unwrap();
        assert!(cap > 0.0 && cap < cpu.base_clock_ghz);
        let at_cap = cluster.node.sockets as f64
            * package_power_at(cpu, cpu.cores_per_socket, 1.0, 1.0, cap);
        assert!(
            (at_cap - budget).abs() / budget < 1e-9,
            "forward model at cap {at_cap} != budget {budget}"
        );
        // Slack budgets bind nothing; starvation budgets are typed 422s.
        assert_eq!(
            cap_clock_ghz(&cluster, 2.0 * full_node).unwrap(),
            cpu.base_clock_ghz
        );
        let err = cap_clock_ghz(&cluster, 1.0).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, "infeasible_power_cap");
    }

    #[test]
    fn request_codec_is_a_fixed_point() {
        let req = PlanRequest::new()
            .with_cluster("b")
            .with_nodes(8)
            .with_power_cap_w(4000.0)
            .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 8).with_count(10, 30.0))
            .with_job(PlanJob::new("tealeaf", WorkloadClass::Small, 0).with_arrival(100.0))
            .with_variant(PlanVariant::new("uncapped").with_power_cap_w(0.0))
            .with_variant(PlanVariant::new("icelake").with_cluster("a").with_nodes(16));
        let text = req.to_json();
        let back = PlanRequest::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text);
        assert_eq!(back.jobs.len(), 2);
        assert_eq!(back.variants.len(), 2);
        assert_eq!(back.expanded_jobs().unwrap().len(), 11);
    }

    #[test]
    fn malformed_plans_reject_with_typed_errors() {
        let cases: &[(&str, u16)] = &[
            ("{", 400),
            (r#"{"jobs": []}"#, 422),
            (r#"{"cluster":"a"}"#, 400),
            (r#"{"jobs":[{"class":"tiny"}]}"#, 400),
            (r#"{"jobs":[{"benchmark":"lbm","count":0}]}"#, 422),
            (r#"{"jobs":[{"benchmark":"lbm","count":2000000}]}"#, 422),
            (r#"{"jobs":[{"benchmark":"lbm","arrival_s":-1}]}"#, 400),
            (r#"{"jobs":[{"benchmark":"lbm","nranks":3.5}]}"#, 400),
            (r#"{"jobs":[{"benchmark":"lbm","class":"huge"}]}"#, 400),
            (
                r#"{"jobs":[{"benchmark":"lbm"}],"variants":[{"name":"baseline"}]}"#,
                422,
            ),
            (
                r#"{"jobs":[{"benchmark":"lbm"}],"variants":[{"name":"x"},{"name":"x"}]}"#,
                422,
            ),
        ];
        for (text, status) in cases {
            let err = PlanRequest::from_json(text).unwrap_err();
            assert_eq!(err.status, *status, "{text} -> {err}");
        }
    }

    #[test]
    fn evaluation_is_deterministic_and_caps_obey_the_dvfs_law() {
        let req = PlanRequest::new()
            .with_nodes(8)
            .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 72).with_count(40, 20.0))
            .with_job(PlanJob::new("sph-exa", WorkloadClass::Tiny, 144).with_count(10, 100.0))
            .with_variant(PlanVariant::new("capped").with_power_cap_w(8.0 * 300.0));
        let a = evaluate_plan(&req, &mut synthetic).unwrap();
        let b = evaluate_plan(&req, &mut synthetic).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "planner must be deterministic");

        let base = &a.scenarios[0];
        let capped = &a.scenarios[1];
        assert_eq!(base.cap_ghz, 2.4);
        assert!(capped.cap_ghz < 2.4);

        // Every capped duration is the base duration stretched by
        // exactly throttle_slowdown at the job's roofline split.
        for (cj, bj) in capped.per_job.iter().zip(&base.per_job) {
            let phi = if cj.nodes == 1 { 0.2 } else { 0.9 }; // lbm 1 node, sph_exa 2
            let want = throttle_slowdown(2.4, capped.cap_ghz, phi);
            let got = (cj.end_s - cj.start_s) / (bj.end_s - bj.start_s);
            assert!((got - want).abs() < 1e-12, "slowdown {got} != {want}");
        }

        // The comparison block names the baseline and rates the variant.
        let text = a.to_json();
        assert!(text.contains("\"comparison\""), "{text}");
        assert!(text.contains("\"baseline\":\"baseline\""));
        assert!(text.contains("\"best_makespan\":\"baseline\""));
    }

    #[test]
    fn memoization_resolves_each_shape_once() {
        let mut calls = 0usize;
        let req = PlanRequest::new()
            .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 72).with_count(100, 10.0))
            .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 144).with_count(100, 10.0));
        let resp = evaluate_plan(&req, &mut |c, b, cl, n, f| {
            calls += 1;
            synthetic(c, b, cl, n, f)
        })
        .unwrap();
        assert_eq!(resp.jobs, 200);
        assert_eq!(calls, 2, "two distinct shapes -> two resolutions");
    }

    #[test]
    fn jobs_wider_than_the_scenario_are_invalid() {
        let req = PlanRequest::new().with_nodes(1).with_job(PlanJob::new(
            "lbm",
            WorkloadClass::Tiny,
            144,
        ));
        let err = evaluate_plan(&req, &mut synthetic).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, "invalid_plan");
    }

    #[test]
    fn text_rendering_summarizes_every_scenario() {
        let req = PlanRequest::new()
            .with_nodes(4)
            .with_job(PlanJob::new("lbm", WorkloadClass::Tiny, 72).with_count(5, 10.0))
            .with_variant(PlanVariant::new("capped").with_power_cap_w(4.0 * 320.0));
        let resp = evaluate_plan(&req, &mut synthetic).unwrap();
        let text = render_plan_text(&resp);
        assert!(text.contains("baseline: ClusterA x 4 node(s), uncapped"));
        assert!(text.contains("capped: ClusterA x 4 node(s), cap"));
        assert!(text.contains("best energy:"));
    }
}
