//! `spechpc serve` — the simulation-as-a-service daemon.
//!
//! A dependency-free HTTP/1.1 server hand-rolled over
//! [`std::net::TcpListener`] (the same way [`faultcfg`](crate::faultcfg)
//! hand-rolls TOML and [`json`](crate::json) hand-rolls JSON), keeping
//! one [`Executor`] + run cache + metrics ledger resident across
//! requests so the parameter-sweep workloads of the paper's methodology
//! amortize their warm-up instead of re-opening the cache per
//! invocation.
//!
//! Since PR 6 the connection plane is a **nonblocking event loop** over
//! the raw-syscall readiness binding in [`epoll`](crate::epoll): one
//! loop thread owns every socket, parses requests incrementally from a
//! slab of per-connection state machines, and dispatches the simulating
//! routes into a resident worker pool. Keep-alive and pipelining are
//! supported, so thousands of idle clients cost a slab slot each rather
//! than a thread each.
//!
//! Routes (all bodies JSON; the authoritative table is
//! [`api::ENDPOINTS`], which this module dispatches through —
//! `GET /v1/capabilities` serves it on the wire):
//!
//! | route                   | meaning                                     |
//! |-------------------------|---------------------------------------------|
//! | `POST /v1/run`          | one [`RunRequest`] → [`RunResponse`](crate::api::RunResponse) |
//! | `POST /v1/suite`        | one [`SuiteRequest`] → suite report         |
//! | `POST /v1/plan`         | one [`PlanRequest`] → capacity-planner verdict |
//! | `GET /v1/profile/{b}`   | MPI profile tables for one cached run       |
//! | `GET /v1/cache/{hash}`  | raw cache entry by [`RunKey`](crate::cache::RunKey) hash (fleet peer fetch) |
//! | `GET /v1/metrics`       | resident executor/cache counters            |
//! | `GET /v1/health`        | liveness, in-flight + open-connection gauges |
//! | `GET /v1/capabilities`  | route table + schema version                |
//! | `POST /v1/shutdown`     | begin graceful drain                        |
//!
//! Production shape:
//!
//! * **admission control** — a bounded dispatch queue plus an in-flight
//!   cap on the simulating routes; both answer `429` with `Retry-After`
//!   when saturated, and a `--max-conns` cap answers `503` at accept
//!   time. Fast routes (health/metrics) are served inline on the loop
//!   thread so clients can watch the backlog even under saturation;
//! * **deadlines** — a connection that dribbles an incomplete request
//!   past the read deadline is answered `408` and reaped (slow-loris
//!   defence); idle keep-alive connections are closed after the idle
//!   timeout; oversized header blocks are refused with `431`;
//! * **per-request supervision** — handler panics are caught at the
//!   dispatch boundary, and simulations inherit the resident
//!   executor's cooperative-cancel timeout;
//! * **byte-identical replays** — responses carry no timestamps and the
//!   run payload reuses the cache encoding, so a repeated identical
//!   `POST /v1/run` answers from memory in microseconds with the same
//!   bytes (`encode_response` is the one place framing is pinned);
//! * **graceful shutdown** — SIGTERM or `POST /v1/shutdown` stops
//!   accepting, drains queued and in-flight work, flushes the metrics
//!   CSV, and [`Server::serve`] returns `Ok` (exit 0).
//!
//! `docs/SERVICE.md` is the operations guide for this module.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::api::{
    self, dispatch_run, dispatch_suite, parse_class, ApiError, EndpointId, RunRequest, SuiteRequest,
};
use crate::exec::Executor;
use crate::json::Json;
use crate::obs;
use crate::plan::{dispatch_plan, PlanRequest};
use crate::report::Table;

/// How the daemon listens, schedules and drains.
///
/// Marked `#[non_exhaustive]`: construct with [`ServeConfig::default`]
/// plus the `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Listen address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing the simulating routes.
    pub workers: usize,
    /// Bounded depth of the dispatch queue between the event loop and
    /// the worker pool; a simulating request arriving on a full queue
    /// is answered `429` straight from the loop thread.
    pub queue_depth: usize,
    /// Max simulating requests in flight before `POST /v1/run` and
    /// `POST /v1/suite` answer `429`; `0` resolves to `workers - 1`
    /// (min 1) so one worker always stays free for queued short work.
    pub max_inflight: usize,
    /// Structured request log on stderr.
    pub log_requests: bool,
    /// Flush the executor metrics CSV here on graceful shutdown.
    pub metrics_dir: Option<PathBuf>,
    /// Max concurrently open connections; an accept beyond the cap is
    /// answered with a canned `503 connection_limit` and closed.
    pub max_conns: usize,
    /// Max requests served per keep-alive connection before the daemon
    /// answers `Connection: close`; `0` = unlimited.
    pub keepalive_requests: usize,
    /// Idle keep-alive connections (no request in progress) are closed
    /// after this many seconds.
    pub idle_timeout_s: f64,
    /// A connection that has sent part of a request but not completed
    /// it within this many seconds is answered `408` and closed
    /// (slow-loris defence). Also bounds response write stalls.
    pub read_timeout_s: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_depth: 64,
            max_inflight: 0,
            log_requests: true,
            metrics_dir: None,
            max_conns: 10_240,
            keepalive_requests: 0,
            idle_timeout_s: 60.0,
            read_timeout_s: 30.0,
        }
    }
}

impl ServeConfig {
    /// Builder: listen address (`host:port`; port `0` = ephemeral).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Builder: worker thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: dispatch-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Builder: in-flight simulation cap (`0` = auto).
    pub fn with_max_inflight(mut self, max: usize) -> Self {
        self.max_inflight = max;
        self
    }

    /// Builder: toggle the stderr request log.
    pub fn with_log_requests(mut self, log: bool) -> Self {
        self.log_requests = log;
        self
    }

    /// Builder: flush metrics CSV under `dir` on shutdown.
    pub fn with_metrics_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.metrics_dir = Some(dir.into());
        self
    }

    /// Builder: concurrent-connection cap (min 1).
    pub fn with_max_conns(mut self, max: usize) -> Self {
        self.max_conns = max.max(1);
        self
    }

    /// Builder: requests served per keep-alive connection before the
    /// daemon closes it (`0` = unlimited).
    pub fn with_keepalive_requests(mut self, max: usize) -> Self {
        self.keepalive_requests = max;
        self
    }

    /// Builder: idle keep-alive timeout in seconds.
    pub fn with_idle_timeout_s(mut self, secs: f64) -> Self {
        self.idle_timeout_s = secs.max(0.0);
        self
    }

    /// Builder: incomplete-request read deadline in seconds.
    pub fn with_read_timeout_s(mut self, secs: f64) -> Self {
        self.read_timeout_s = secs.max(0.0);
        self
    }

    fn effective_max_inflight(&self) -> usize {
        if self.max_inflight > 0 {
            self.max_inflight
        } else {
            self.workers.saturating_sub(1).max(1)
        }
    }
}

/// Process-wide SIGTERM/SIGINT latch (signal handlers must be static).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM/SIGINT has been latched — the fleet coordinator
/// shares the drain signal with the worker daemon.
pub(crate) fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT into the graceful-drain path: the next
/// event-loop tick stops accepting and [`Server::serve`] drains and
/// returns `Ok`. `std` already links the platform libc, so the raw
/// `signal(2)` binding needs no external crate.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Shared state the event loop and every worker see.
struct Ctx {
    exec: Executor,
    shutdown: AtomicBool,
    sim_inflight: AtomicUsize,
    open_conns: AtomicUsize,
    max_inflight: usize,
    log_requests: bool,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }

    /// The `Retry-After` hint for `status` at the current load.
    fn retry_after(&self, status: u16) -> Option<u32> {
        retry_after_of(
            status,
            self.sim_inflight.load(Ordering::SeqCst),
            self.max_inflight,
        )
    }
}

/// RAII slot on the simulating routes: acquired on the loop thread at
/// dispatch time (so saturation is decided before queueing), released
/// by the worker when the response is encoded (even on panic — the
/// guard lives across the `catch_unwind`).
struct SimSlot(Arc<Ctx>);

impl SimSlot {
    fn try_acquire(ctx: &Arc<Ctx>) -> Result<Self, ApiError> {
        let prev = ctx.sim_inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= ctx.max_inflight {
            ctx.sim_inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(ApiError::saturated(format!(
                "{prev} simulation(s) in flight (cap {})",
                ctx.max_inflight
            )));
        }
        Ok(SimSlot(Arc::clone(ctx)))
    }
}

impl Drop for SimSlot {
    fn drop(&mut self) {
        self.0.sim_inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The resident daemon. Bind with [`Server::bind`], then block on
/// [`Server::serve`] until a graceful shutdown drains it.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    config: ServeConfig,
}

impl Server {
    /// Bind the listen socket around a resident executor. Nothing is
    /// accepted until [`Server::serve`].
    pub fn bind(exec: Executor, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Sweep torn cache entries (crash-interrupted writes, corrupt
        // files) into quarantine before any request can read them.
        if let Some(swept) = exec.cache().map(|c| c.scrub()) {
            if swept > 0 {
                eprintln!("spechpc serve: cache scrub quarantined {swept} torn entries");
            }
        }
        let ctx = Arc::new(Ctx {
            exec,
            shutdown: AtomicBool::new(false),
            sim_inflight: AtomicUsize::new(0),
            open_conns: AtomicUsize::new(0),
            max_inflight: config.effective_max_inflight(),
            log_requests: config.log_requests,
        });
        Ok(Server {
            listener,
            ctx,
            config,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers graceful drain when used — the same
    /// latch `POST /v1/shutdown` and SIGTERM flip.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.ctx))
    }

    /// Run the event loop until shutdown is requested, then drain
    /// queued and in-flight work, flush metrics, and return. A clean
    /// drain is `Ok(())` — the daemon's exit-0 path.
    pub fn serve(self) -> std::io::Result<()> {
        let Server {
            listener,
            ctx,
            config,
        } = self;
        #[cfg(unix)]
        {
            ev::run(listener, ctx, config)
        }
        #[cfg(not(unix))]
        {
            let _ = (listener, ctx, config);
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "spechpc serve requires a Unix readiness backend (epoll/poll)",
            ))
        }
    }
}

/// Opaque drain trigger detached from the [`Server`]'s lifetime: keep
/// one around, call [`ShutdownHandle::request_drain`] from any thread,
/// and the event loop begins its graceful drain on the next tick.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Ctx>);

impl ShutdownHandle {
    /// Flip the drain latch (idempotent).
    pub fn request_drain(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has a drain been requested (by this handle, a client, or a
    /// signal)?
    pub fn draining(&self) -> bool {
        self.0.draining()
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing: incremental parser + deterministic encoder
// ---------------------------------------------------------------------------

/// One parsed request. Only what the routes need — this is a service
/// endpoint, not a general web server.
struct HttpRequest {
    method: String,
    /// Path without the query string.
    path: String,
    query: String,
    body: String,
    /// What the request's HTTP version + `Connection` header ask for:
    /// HTTP/1.1 defaults to keep-alive unless `close` is sent; HTTP/1.0
    /// must opt in with `Connection: keep-alive`.
    keep_alive: bool,
}

/// Header-block cap; a block that exceeds it is refused with `431`.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Body cap (`Content-Length` above this is refused with `400`).
const MAX_BODY_BYTES: usize = 1 << 20;
/// Read-buffer high-water mark: past this the loop stops reading from
/// the socket (TCP backpressure) until the parser drains it.
const MAX_BUFFERED_BYTES: usize = MAX_HEADER_BYTES + MAX_BODY_BYTES + 4096;

/// One step of the incremental parser over a connection's read buffer.
enum Parsed {
    /// Not enough bytes yet — keep reading.
    Partial,
    /// One complete request, consuming this many bytes of the buffer
    /// (pipelined successors may follow).
    Complete(HttpRequest, usize),
    /// The bytes can never become a valid request; answer the error and
    /// close (the parse position is unrecoverable).
    Bad(ApiError),
}

/// Incrementally parse one HTTP/1.1 request (start line, headers,
/// `Content-Length` body) from the front of `buf`. Pure function of the
/// buffer — the event loop calls it after every read, at any byte
/// boundary.
fn parse_request(buf: &[u8]) -> Parsed {
    let header_end = match find_header_end(buf) {
        Some(pos) => pos,
        None => {
            if buf.len() > MAX_HEADER_BYTES {
                return Parsed::Bad(ApiError::headers_too_large(MAX_HEADER_BYTES));
            }
            return Parsed::Partial;
        }
    };
    if header_end > MAX_HEADER_BYTES {
        return Parsed::Bad(ApiError::headers_too_large(MAX_HEADER_BYTES));
    }

    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or_default();
    let mut parts = start.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or("HTTP/1.1").to_string();
    if method.is_empty() || target.is_empty() {
        return Parsed::Bad(ApiError::bad_request("malformed request line"));
    }
    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Parsed::Bad(ApiError::bad_request("bad Content-Length")),
                };
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Parsed::Bad(ApiError::bad_request(
                    "chunked transfer encoding is not supported; send Content-Length",
                ));
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parsed::Bad(ApiError::bad_request("request body too large"));
    }
    let total = header_end + 4 + content_length;
    if buf.len() < total {
        return Parsed::Partial;
    }

    let keep_alive = {
        let close = connection.split(',').any(|t| t.trim() == "close");
        let keep = connection.split(',').any(|t| t.trim() == "keep-alive");
        if version.eq_ignore_ascii_case("HTTP/1.0") {
            keep
        } else {
            !close
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Parsed::Complete(
        HttpRequest {
            method,
            path,
            query,
            body: String::from_utf8_lossy(&buf[header_end + 4..total]).to_string(),
            keep_alive,
        },
        total,
    )
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        207 => "Multi-Status",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Encode one response. **This is where the byte-identity invariant is
/// enforced**: a deterministic header set in a fixed order
/// (`Content-Type`, `Content-Length`, `Connection`, optional
/// `Retry-After`), no date, no server version — a cached replay is
/// byte-identical to the response that simulated, and `Connection:
/// close` responses are byte-identical to the pre-event-loop daemon's.
pub(crate) fn encode_response(
    status: u16,
    body: &str,
    retry_after: Option<u32>,
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason_of(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Saturation and drain answers carry `Retry-After` so polite clients
/// back off instead of hammering. The hint scales with the in-flight
/// simulation load at encode time: an idle daemon says 1 s, a daemon at
/// its cap says 5 s, and a deeply saturated fleet keeps stretching up
/// to a 60 s ceiling — so backoff is proportional to how long the
/// backlog will realistically take to clear.
fn retry_after_of(status: u16, inflight: usize, cap: usize) -> Option<u32> {
    matches!(status, 429 | 503).then(|| {
        let cap = cap.max(1) as u64;
        let load = 4 * inflight as u64 / cap;
        (1 + load).min(60) as u32
    })
}

pub(crate) fn error_body(e: &ApiError) -> String {
    let mut body = e.to_json();
    body.push('\n');
    body
}

fn panic_to_error(p: Box<dyn std::any::Any + Send>) -> ApiError {
    let msg = p
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    ApiError::internal(format!("handler panicked: {msg}"))
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// Does this request go to the worker pool (simulating routes) rather
/// than being answered inline on the loop thread? Decided by the shared
/// route table ([`api::ENDPOINTS`]), not local string matching.
fn is_sim_route(req: &HttpRequest) -> bool {
    api::endpoint_for(&req.method, &req.path).is_some_and(|e| e.serve == api::ServeClass::Sim)
}

/// Fast routes, answered inline on the loop thread: cheap, allocation-
/// light, and exempt from admission control so clients can watch the
/// backlog even under saturation. Unknown routes land here too (404).
fn route_fast(ctx: &Ctx, req: &HttpRequest) -> Result<(u16, String), ApiError> {
    let ep = api::endpoint_for(&req.method, &req.path)
        .filter(|e| e.serve == api::ServeClass::Fast)
        .ok_or_else(|| api::no_route(&req.method, &req.path))?;
    match ep.id {
        EndpointId::Metrics => Ok((200, metrics_json(ctx))),
        EndpointId::Health => Ok((200, health_json(ctx))),
        EndpointId::Capabilities => Ok((200, api::capabilities_json())),
        EndpointId::CacheEntry => cache_entry(ctx, ep.pattern.trailing(&req.path)),
        EndpointId::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Ok((200, "{\"status\":\"draining\"}\n".to_string()))
        }
        _ => Err(api::no_route(&req.method, &req.path)),
    }
}

/// `GET /v1/cache/{hash}` — one raw cache entry, addressed by its
/// [`RunKey::hash_hex`](crate::cache::RunKey::hash_hex) value, served
/// with the exact bytes the cache persists so a fleet peer's replay is
/// byte-identical to a local one. Served inline on the loop thread
/// (memory scan or one small file read); `404` for unknown keys and
/// for daemons running `--no-cache`.
fn cache_entry(ctx: &Ctx, hash: &str) -> Result<(u16, String), ApiError> {
    // The hash is used as a file name: accept only the exact shape
    // `RunKey::hash_hex` emits (16 lowercase hex digits) so a crafted
    // path can never traverse outside the cache directory.
    let well_formed = hash.len() == 16
        && hash
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if !well_formed {
        return Err(ApiError::bad_request(
            "cache key must be 16 lowercase hex digits",
        ));
    }
    match ctx.exec.cache().and_then(|c| c.entry_by_hash(hash)) {
        Some(text) => Ok((200, text)),
        None => Err(ApiError::not_found(format!("no cache entry {hash}"))),
    }
}

/// Simulating routes, executed on a worker thread under a [`SimSlot`].
fn route_sim(ctx: &Ctx, req: &HttpRequest) -> Result<(u16, String), ApiError> {
    let ep = api::endpoint_for(&req.method, &req.path)
        .filter(|e| e.serve == api::ServeClass::Sim)
        .ok_or_else(|| api::no_route(&req.method, &req.path))?;
    match ep.id {
        EndpointId::Run => {
            let run = RunRequest::from_json(&req.body)?;
            let resp = dispatch_run(&ctx.exec, &run)?;
            Ok((200, resp.to_json()))
        }
        EndpointId::Suite => {
            let suite = SuiteRequest::from_json(&req.body)?;
            let resp = dispatch_suite(&ctx.exec, &suite)?;
            let status = if resp.report.is_complete() { 200 } else { 207 };
            Ok((status, resp.to_json()))
        }
        EndpointId::Plan => {
            let plan = PlanRequest::from_json(&req.body)?;
            let resp = dispatch_plan(&ctx.exec, &plan)?;
            Ok((200, resp.to_json()))
        }
        EndpointId::Profile => profile(ctx, ep.pattern.trailing(&req.path), &req.query),
        _ => Err(api::no_route(&req.method, &req.path)),
    }
}

/// `GET /v1/profile/{benchmark}?cluster=a&class=tiny&n=8` — the
/// Fig.-2-style MPI breakdown of one (cached) run as JSON tables.
fn profile(ctx: &Ctx, benchmark: &str, query: &str) -> Result<(u16, String), ApiError> {
    let mut cluster = "a".to_string();
    let mut class = "tiny".to_string();
    let mut nranks = 0usize;
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "cluster" => cluster = v.to_string(),
            "class" => class = v.to_string(),
            "n" | "nranks" => {
                nranks = v
                    .parse()
                    .map_err(|_| ApiError::bad_request(format!("bad rank count '{v}'")))?
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown query parameter '{other}'"
                )))
            }
        }
    }
    let run = RunRequest::new(benchmark, parse_class(&class)?, nranks).with_cluster(cluster);
    let resp = dispatch_run(&ctx.exec, &run)?;
    let r = &resp.result;
    let label = format!("{}/{}/{}@{}", r.benchmark, r.class, r.nranks, r.cluster);
    let table_err = |e: crate::report::ReportError| ApiError::internal(e.to_string());
    let ranks = obs::profile_rank_table(&label, &r.profile).map_err(table_err)?;
    let hist = obs::profile_histogram_table("message sizes", &r.profile).map_err(table_err)?;
    let matrix = obs::profile_matrix_table("heaviest pairs", &r.profile, 10).map_err(table_err)?;
    let body = Json::Obj(vec![
        ("run".into(), Json::from(label)),
        ("ranks".into(), table_to_json(&ranks)),
        ("histogram".into(), table_to_json(&hist)),
        ("matrix".into(), table_to_json(&matrix)),
    ])
    .render();
    Ok((200, body))
}

fn table_to_json(t: &Table) -> Json {
    Json::Obj(vec![
        ("title".into(), Json::from(t.title.as_str())),
        (
            "header".into(),
            Json::Arr(t.header.iter().map(|h| Json::from(h.as_str())).collect()),
        ),
        (
            "rows".into(),
            Json::Arr(
                t.rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|c| Json::from(c.as_str())).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn health_json(ctx: &Ctx) -> String {
    Json::Obj(vec![
        ("status".into(), Json::from("ok")),
        (
            "inflight".into(),
            Json::from(ctx.sim_inflight.load(Ordering::SeqCst)),
        ),
        (
            "connections".into(),
            Json::from(ctx.open_conns.load(Ordering::SeqCst)),
        ),
        ("draining".into(), Json::from(ctx.draining())),
    ])
    .render()
}

fn metrics_json(ctx: &Ctx) -> String {
    let m = ctx.exec.metrics();
    Json::Obj(vec![
        ("runs_executed".into(), Json::from(m.runs_executed)),
        ("peer_hits".into(), Json::from(m.peer_hits)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits_mem".into(), Json::from(m.cache.hits_mem)),
                ("hits_disk".into(), Json::from(m.cache.hits_disk)),
                ("misses".into(), Json::from(m.cache.misses)),
                ("corrupt".into(), Json::from(m.cache.corrupt)),
                ("quarantined".into(), Json::from(m.cache.quarantined)),
                (
                    "torn_quarantined".into(),
                    Json::from(m.cache.torn_quarantined),
                ),
                ("stores".into(), Json::from(m.cache.stores)),
            ]),
        ),
        (
            "per_worker_runs".into(),
            Json::Arr(m.per_worker_runs.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("points_timed".into(), Json::from(m.point_wall_s.len())),
        ("total_wall_s".into(), Json::from(m.total_wall_s())),
    ])
    .render()
}

fn log_line(ctx: &Ctx, method: &str, path: &str, status: u16, bytes: usize, t0: Instant) {
    eprintln!(
        "[serve] {} {} -> {} {}B {:.1}ms inflight={}",
        method,
        path,
        status,
        bytes,
        t0.elapsed().as_secs_f64() * 1e3,
        ctx.sim_inflight.load(Ordering::SeqCst),
    );
}

// ---------------------------------------------------------------------------
// The event loop (Unix only — readiness comes from crate::epoll)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod ev {
    use super::*;
    use crate::epoll::{Interest, Poller, Readiness, WakePipe, Waker};
    use std::collections::VecDeque;
    use std::io::{self, Read, Write};
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::panic::AssertUnwindSafe;
    use std::sync::mpsc::{self, TrySendError};
    use std::sync::Mutex;
    use std::time::Duration;

    /// Poller token of the listen socket.
    const LISTENER_TOKEN: u64 = u64::MAX;
    /// Poller token of the wake pipe's read end.
    const WAKE_TOKEN: u64 = u64::MAX - 1;
    /// Deadline-sweep granularity: the loop wakes at least this often.
    const TICK_MS: i32 = 50;

    /// One connection's state machine. Lives in the slab; the poller
    /// token is the slab index, and `gen` disambiguates recycled slots
    /// when a worker completion arrives late.
    struct Conn {
        stream: TcpStream,
        gen: u64,
        /// Unparsed request bytes (reads append, the parser drains).
        buf: Vec<u8>,
        /// Encoded response bytes not yet written.
        out: Vec<u8>,
        out_pos: usize,
        /// A request from this connection is in the worker pool; reads
        /// are paused (TCP backpressure) until the completion arrives.
        busy: bool,
        /// Close once `out` is fully flushed.
        close_after_flush: bool,
        /// The peer half-closed (read EOF).
        read_closed: bool,
        /// Requests served on this connection (keep-alive cap).
        served: usize,
        /// When the current incomplete request started arriving — the
        /// slow-loris clock.
        partial_since: Option<Instant>,
        /// Last byte read or written — the idle clock.
        last_activity: Instant,
        interest: Interest,
        /// Whether the fd is currently registered with the poller
        /// (parked connections deregister entirely: `EPOLLHUP` ignores
        /// the interest mask and would busy-spin a level-triggered
        /// loop).
        registered: bool,
    }

    impl Conn {
        fn new(stream: TcpStream, gen: u64) -> Conn {
            Conn {
                stream,
                gen,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                busy: false,
                close_after_flush: false,
                read_closed: false,
                served: 0,
                partial_since: None,
                last_activity: Instant::now(),
                interest: Interest::NONE,
                registered: false,
            }
        }

        fn flushing(&self) -> bool {
            self.out_pos < self.out.len()
        }
    }

    /// One simulating request travelling to the worker pool.
    struct Job {
        conn: usize,
        gen: u64,
        req: HttpRequest,
        keep_alive: bool,
        slot: SimSlot,
        t0: Instant,
    }

    /// A worker's finished response travelling back to the loop.
    struct Completion {
        conn: usize,
        gen: u64,
        bytes: Vec<u8>,
        close: bool,
    }

    fn append_response(ctx: &Ctx, conn: &mut Conn, status: u16, body: &str, keep: bool) {
        let bytes = encode_response(status, body, ctx.retry_after(status), keep);
        conn.out.extend_from_slice(&bytes);
    }

    struct EventLoop {
        poller: Poller,
        listener: TcpListener,
        listener_registered: bool,
        wake: WakePipe,
        conns: Vec<Option<Conn>>,
        free: Vec<usize>,
        gen_counter: u64,
        tx: Option<mpsc::SyncSender<Job>>,
        completions: Arc<Mutex<VecDeque<Completion>>>,
        ctx: Arc<Ctx>,
        max_conns: usize,
        keepalive_requests: usize,
        idle_timeout: Duration,
        read_timeout: Duration,
    }

    /// Bind-to-drain lifetime of the daemon: spawn the worker pool, run
    /// the readiness loop until the drain latch flips and the last
    /// connection closes, then join workers and flush observability.
    pub(super) fn run(listener: TcpListener, ctx: Arc<Ctx>, config: ServeConfig) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let wake = WakePipe::new()?;
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            let completions = Arc::clone(&completions);
            let waker = wake.waker();
            workers.push(std::thread::spawn(move || {
                worker_loop(ctx, &rx, &completions, waker)
            }));
        }

        let mut lp = EventLoop {
            poller,
            listener,
            listener_registered: false,
            wake,
            conns: Vec::new(),
            free: Vec::new(),
            gen_counter: 0,
            tx: Some(tx),
            completions,
            ctx,
            max_conns: config.max_conns.max(1),
            keepalive_requests: config.keepalive_requests,
            idle_timeout: Duration::from_secs_f64(config.idle_timeout_s.max(0.0)),
            read_timeout: Duration::from_secs_f64(config.read_timeout_s.max(0.0)),
        };
        lp.poller
            .add(lp.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        lp.listener_registered = true;
        lp.poller
            .add(lp.wake.poll_fd(), WAKE_TOKEN, Interest::READ)?;

        let mut events: Vec<Readiness> = Vec::new();
        loop {
            if lp.ctx.draining() {
                if lp.listener_registered {
                    let _ = lp.poller.remove(lp.listener.as_raw_fd());
                    lp.listener_registered = false;
                }
                if lp.ctx.open_conns.load(Ordering::SeqCst) == 0 {
                    break;
                }
            }
            lp.poller.wait(&mut events, TICK_MS)?;
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    LISTENER_TOKEN => lp.accept_ready(),
                    WAKE_TOKEN => lp.wake.drain(),
                    token => lp.conn_event(token as usize, *ev),
                }
            }
            events = batch;
            lp.apply_completions();
            lp.sweep();
        }

        // Drain epilogue: the dispatch queue is already empty (no
        // connection survived with work queued), so dropping the sender
        // lets every worker's recv() return Err and the pool exit.
        drop(lp.tx.take());
        for w in workers {
            let _ = w.join();
        }
        if let Some(dir) = &config.metrics_dir {
            let _ = obs::write_metrics_csv(dir, "serve", &lp.ctx.exec.metrics());
        }
        if lp.ctx.log_requests {
            let m = lp.ctx.exec.metrics();
            eprintln!(
                "[serve] drained: {} run(s) executed, {} cache hit(s), bye",
                m.runs_executed,
                m.cache.hits_mem + m.cache.hits_disk
            );
        }
        Ok(())
    }

    fn worker_loop(
        ctx: Arc<Ctx>,
        rx: &Mutex<mpsc::Receiver<Job>>,
        completions: &Mutex<VecDeque<Completion>>,
        waker: Waker,
    ) {
        loop {
            let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                Ok(j) => j,
                Err(_) => return, // sender dropped: queue drained
            };
            let Job {
                conn,
                gen,
                req,
                keep_alive,
                slot,
                t0,
            } = job;
            // A handler panic must never take a worker down: catch at
            // the dispatch boundary and degrade to a 500.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| route_sim(&ctx, &req)))
                .unwrap_or_else(|p| Err(panic_to_error(p)));
            let (status, body) = match outcome {
                Ok((status, body)) => (status, body),
                Err(e) => (e.status, error_body(&e)),
            };
            if ctx.log_requests {
                log_line(&ctx, &req.method, &req.path, status, body.len(), t0);
            }
            let bytes = encode_response(status, &body, ctx.retry_after(status), keep_alive);
            // Release the slot before publishing the completion so the
            // in-flight gauge never over-reports past the response.
            drop(slot);
            completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(Completion {
                    conn,
                    gen,
                    bytes,
                    close: !keep_alive,
                });
            waker.wake();
        }
    }

    /// Answer a connection refused at the cap with a canned `503` and
    /// drop it. Best-effort and never blocking: any request bytes that
    /// already arrived are discarded first (closing with unread data in
    /// the socket turns into an RST that can destroy the 503 before the
    /// client reads it), then the response goes out in one write.
    fn refuse_over_limit(ctx: &Ctx, mut stream: TcpStream, max: usize) {
        let mut scratch = [0u8; 4096];
        for _ in 0..8 {
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let e = ApiError::connection_limit(max);
        let bytes = encode_response(e.status, &error_body(&e), ctx.retry_after(e.status), false);
        let _ = stream.write(&bytes);
    }

    impl EventLoop {
        /// Run `f` on connection `idx` with the slab slot checked out;
        /// `f` returns whether the connection stays open.
        fn with_conn(&mut self, idx: usize, f: impl FnOnce(&mut Self, &mut Conn) -> bool) {
            let mut conn = match self.conns.get_mut(idx).and_then(Option::take) {
                Some(c) => c,
                None => return, // stale token for an already-closed slot
            };
            if f(self, &mut conn) {
                self.update_interest(idx, &mut conn);
                self.conns[idx] = Some(conn);
            } else {
                self.teardown(idx, conn);
            }
        }

        fn accept_ready(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.ctx.draining() {
                            drop(stream);
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        if self.ctx.open_conns.load(Ordering::SeqCst) >= self.max_conns {
                            refuse_over_limit(&self.ctx, stream, self.max_conns);
                            continue;
                        }
                        let idx = match self.free.pop() {
                            Some(i) => i,
                            None => {
                                self.conns.push(None);
                                self.conns.len() - 1
                            }
                        };
                        self.gen_counter += 1;
                        let mut conn = Conn::new(stream, self.gen_counter);
                        self.ctx.open_conns.fetch_add(1, Ordering::SeqCst);
                        self.update_interest(idx, &mut conn);
                        self.conns[idx] = Some(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        fn conn_event(&mut self, idx: usize, ev: Readiness) {
            self.with_conn(idx, |lp, conn| {
                if (ev.readable || ev.closed) && !lp.on_readable(idx, conn) {
                    return false;
                }
                if ev.writable && !lp.flush(conn) {
                    return false;
                }
                true
            });
        }

        /// Drain the socket into the connection's read buffer, then let
        /// the parser make progress. Returns whether to keep the
        /// connection.
        fn on_readable(&mut self, idx: usize, conn: &mut Conn) -> bool {
            let mut chunk = [0u8; 16 * 1024];
            loop {
                if conn.busy || conn.close_after_flush || conn.buf.len() >= MAX_BUFFERED_BYTES {
                    break; // backpressure: leave bytes in the kernel
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            self.advance(idx, conn)
        }

        /// Parse and route as many complete requests as the buffer
        /// holds (pipelining), stopping when a request enters the
        /// worker pool or the buffer runs dry. Returns whether to keep
        /// the connection.
        fn advance(&mut self, idx: usize, conn: &mut Conn) -> bool {
            while !conn.busy && !conn.close_after_flush {
                match parse_request(&conn.buf) {
                    Parsed::Partial => {
                        if conn.buf.is_empty() {
                            conn.partial_since = None;
                        } else if conn.partial_since.is_none() {
                            conn.partial_since = Some(Instant::now());
                        }
                        if conn.read_closed {
                            if !conn.buf.is_empty() {
                                let e = ApiError::bad_request("connection closed mid-request");
                                append_response(&self.ctx, conn, e.status, &error_body(&e), false);
                            }
                            conn.close_after_flush = true;
                        }
                        break;
                    }
                    Parsed::Bad(e) => {
                        // The parse position is unrecoverable: answer
                        // and close.
                        append_response(&self.ctx, conn, e.status, &error_body(&e), false);
                        conn.close_after_flush = true;
                        break;
                    }
                    Parsed::Complete(req, consumed) => {
                        conn.buf.drain(..consumed);
                        conn.partial_since = if conn.buf.is_empty() {
                            None
                        } else {
                            Some(Instant::now())
                        };
                        conn.served += 1;
                        let cap = self.keepalive_requests;
                        let keep = req.keep_alive
                            && !self.ctx.draining()
                            && !conn.read_closed
                            && (cap == 0 || conn.served < cap);
                        if is_sim_route(&req) {
                            match self.try_dispatch(idx, conn, req, keep) {
                                Ok(()) => conn.busy = true,
                                Err(refused) => {
                                    let (req, e) = *refused;
                                    // Well-framed refusal (429/503):
                                    // a keep-alive connection survives
                                    // a 429 so the client can retry
                                    // without reconnecting; drain
                                    // refusals close.
                                    let keep_err = keep && e.status != 503;
                                    let body = error_body(&e);
                                    if self.ctx.log_requests {
                                        log_line(
                                            &self.ctx,
                                            &req.method,
                                            &req.path,
                                            e.status,
                                            body.len(),
                                            Instant::now(),
                                        );
                                    }
                                    append_response(&self.ctx, conn, e.status, &body, keep_err);
                                    if !keep_err {
                                        conn.close_after_flush = true;
                                    }
                                }
                            }
                        } else {
                            let t0 = Instant::now();
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                route_fast(&self.ctx, &req)
                            }))
                            .unwrap_or_else(|p| Err(panic_to_error(p)));
                            let (status, body) = match outcome {
                                Ok((status, body)) => (status, body),
                                Err(e) => (e.status, error_body(&e)),
                            };
                            // `POST /v1/shutdown` just flipped the
                            // drain latch — recompute so its own
                            // response is framed `Connection: close`.
                            let keep = keep && !self.ctx.draining();
                            if self.ctx.log_requests {
                                log_line(&self.ctx, &req.method, &req.path, status, body.len(), t0);
                            }
                            append_response(&self.ctx, conn, status, &body, keep);
                            if !keep {
                                conn.close_after_flush = true;
                            }
                        }
                    }
                }
            }
            self.flush(conn)
        }

        /// Admission-checked hand-off of one simulating request to the
        /// worker pool. On refusal the request is handed back (boxed:
        /// the refusal path is cold and the pair is large) so the
        /// caller can log and answer it.
        fn try_dispatch(
            &mut self,
            idx: usize,
            conn: &Conn,
            req: HttpRequest,
            keep: bool,
        ) -> Result<(), Box<(HttpRequest, ApiError)>> {
            if self.ctx.draining() {
                return Err(Box::new((req, ApiError::shutting_down())));
            }
            let slot = match SimSlot::try_acquire(&self.ctx) {
                Ok(s) => s,
                Err(e) => return Err(Box::new((req, e))),
            };
            let job = Job {
                conn: idx,
                gen: conn.gen,
                keep_alive: keep,
                t0: Instant::now(),
                req,
                slot,
            };
            // A missing or disconnected channel means the worker pool
            // is gone (torn down during drain, or every worker died).
            // Either way the daemon must degrade to a typed refusal and
            // drain — never panic the event loop, which would abort
            // every open connection mid-response.
            let Some(tx) = self.tx.as_ref() else {
                return Err(Box::new((job.req, ApiError::shutting_down())));
            };
            match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(job)) => Err(Box::new((
                    job.req,
                    ApiError::saturated("dispatch queue full"),
                ))),
                Err(TrySendError::Disconnected(job)) => {
                    // Nothing will ever complete a queued job again:
                    // flip the drain latch so the loop winds down
                    // gracefully instead of refusing forever.
                    self.ctx.shutdown.store(true, Ordering::SeqCst);
                    Err(Box::new((job.req, ApiError::shutting_down())))
                }
            }
        }

        /// Write as much of the pending response as the socket takes.
        /// Returns whether to keep the connection.
        fn flush(&mut self, conn: &mut Conn) -> bool {
            while conn.flushing() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => return false,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            if !conn.flushing() {
                conn.out.clear();
                conn.out_pos = 0;
                if conn.close_after_flush {
                    return false;
                }
            }
            true
        }

        /// Apply worker completions: un-pause the connection, queue the
        /// response bytes, and let the parser continue on any pipelined
        /// successor already buffered.
        fn apply_completions(&mut self) {
            loop {
                let c = self
                    .completions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                let Some(c) = c else { break };
                self.with_conn(c.conn, |lp, conn| {
                    if conn.gen != c.gen {
                        return true; // recycled slot: completion is stale
                    }
                    conn.busy = false;
                    conn.out.extend_from_slice(&c.bytes);
                    if c.close {
                        conn.close_after_flush = true;
                        return lp.flush(conn);
                    }
                    lp.advance(c.conn, conn)
                });
            }
        }

        /// Keep the poller's interest in sync with the state machine:
        /// read when the parser wants bytes, write when a response is
        /// pending, deregister entirely when parked (busy in the worker
        /// pool, or half-closed with nothing to say — `EPOLLHUP` is
        /// level-triggered regardless of the mask and would spin us).
        fn update_interest(&mut self, idx: usize, conn: &mut Conn) {
            let want = Interest {
                readable: !conn.busy
                    && !conn.read_closed
                    && !conn.close_after_flush
                    && conn.buf.len() < MAX_BUFFERED_BYTES,
                writable: conn.flushing(),
            };
            if !want.readable && !want.writable {
                if conn.registered {
                    let _ = self.poller.remove(conn.stream.as_raw_fd());
                    conn.registered = false;
                }
                conn.interest = Interest::NONE;
                return;
            }
            if !conn.registered {
                if self
                    .poller
                    .add(conn.stream.as_raw_fd(), idx as u64, want)
                    .is_ok()
                {
                    conn.registered = true;
                    conn.interest = want;
                }
                return;
            }
            if want != conn.interest {
                let _ = self
                    .poller
                    .modify(conn.stream.as_raw_fd(), idx as u64, want);
                conn.interest = want;
            }
        }

        /// Deadline sweep, once per tick: reap slow-loris uploads
        /// (408), stalled response writes, and idle keep-alive
        /// connections (silently, also how a drain sheds idle clients).
        fn sweep(&mut self) {
            enum Reap {
                Drop,
                Timeout408,
            }
            let now = Instant::now();
            let draining = self.ctx.draining();
            let mut reap: Vec<(usize, Reap)> = Vec::new();
            for (idx, slot) in self.conns.iter().enumerate() {
                let Some(conn) = slot else { continue };
                if conn.busy {
                    continue; // the worker owns the deadline (executor budget)
                }
                if conn.flushing() {
                    if now.duration_since(conn.last_activity) > self.read_timeout {
                        reap.push((idx, Reap::Drop)); // write stalled
                    }
                    continue;
                }
                if let Some(t0) = conn.partial_since {
                    if now.duration_since(t0) > self.read_timeout {
                        reap.push((idx, Reap::Timeout408));
                    }
                    continue;
                }
                if draining || now.duration_since(conn.last_activity) > self.idle_timeout {
                    reap.push((idx, Reap::Drop));
                }
            }
            let read_timeout_s = self.read_timeout.as_secs_f64();
            for (idx, action) in reap {
                match action {
                    Reap::Drop => self.with_conn(idx, |_, _| false),
                    Reap::Timeout408 => self.with_conn(idx, |lp, conn| {
                        let e = ApiError::read_timeout(read_timeout_s);
                        append_response(&lp.ctx, conn, e.status, &error_body(&e), false);
                        conn.close_after_flush = true;
                        lp.flush(conn)
                    }),
                }
            }
        }

        /// Close a connection and recycle its slab slot. Unread request
        /// bytes are discarded first (bounded): closing with data still
        /// queued in the socket turns into an RST that can destroy a
        /// just-written error response before the client reads it.
        fn teardown(&mut self, idx: usize, mut conn: Conn) {
            if conn.registered {
                let _ = self.poller.remove(conn.stream.as_raw_fd());
            }
            if !conn.read_closed {
                let mut scratch = [0u8; 4096];
                for _ in 0..8 {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            }
            drop(conn);
            self.ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
            self.free.push(idx);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::exec::ExecConfig;
        use crate::runner::RunConfig;

        /// An `EventLoop` wired to nothing: just enough state to
        /// exercise `try_dispatch`'s refusal paths without running the
        /// readiness loop.
        fn bench_loop(tx: Option<mpsc::SyncSender<Job>>) -> (EventLoop, Conn) {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let _client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
            let (accepted, _) = listener.accept().expect("accept");
            let ctx = Arc::new(Ctx {
                exec: Executor::new(RunConfig::default(), ExecConfig::default()),
                shutdown: AtomicBool::new(false),
                sim_inflight: AtomicUsize::new(0),
                open_conns: AtomicUsize::new(1),
                max_inflight: 4,
                log_requests: false,
            });
            let lp = EventLoop {
                poller: Poller::new().expect("poller"),
                listener,
                listener_registered: false,
                wake: WakePipe::new().expect("wake pipe"),
                conns: Vec::new(),
                free: Vec::new(),
                gen_counter: 0,
                tx,
                completions: Arc::new(Mutex::new(VecDeque::new())),
                ctx,
                max_conns: 8,
                keepalive_requests: 0,
                idle_timeout: Duration::from_secs(5),
                read_timeout: Duration::from_secs(5),
            };
            (lp, Conn::new(accepted, 0))
        }

        fn run_req() -> HttpRequest {
            HttpRequest {
                method: "POST".into(),
                path: "/v1/run".into(),
                query: String::new(),
                body: String::new(),
                keep_alive: true,
            }
        }

        #[test]
        fn dispatch_without_worker_pool_degrades_to_shutdown() {
            // Regression: this path used to be
            // `.expect("dispatch channel outlives the loop")`, aborting
            // the daemon if the pool was gone at dispatch time.
            let (mut lp, conn) = bench_loop(None);
            let err = lp.try_dispatch(0, &conn, run_req(), true).unwrap_err();
            let (req, e) = *err;
            assert_eq!(req.path, "/v1/run", "request handed back for logging");
            assert_eq!((e.status, e.code.as_str()), (503, "shutting_down"));
            assert_eq!(
                lp.ctx.sim_inflight.load(Ordering::SeqCst),
                0,
                "refusal must release the SimSlot"
            );
        }

        #[test]
        fn dispatch_on_dead_channel_refuses_and_latches_drain() {
            let (tx, rx) = mpsc::sync_channel::<Job>(1);
            drop(rx); // every worker died
            let (mut lp, conn) = bench_loop(Some(tx));
            let err = lp.try_dispatch(0, &conn, run_req(), true).unwrap_err();
            let (_, e) = *err;
            assert_eq!((e.status, e.code.as_str()), (503, "shutting_down"));
            assert!(
                lp.ctx.shutdown.load(Ordering::SeqCst),
                "a dead pool must flip the drain latch"
            );
            assert_eq!(lp.ctx.sim_inflight.load(Ordering::SeqCst), 0);
        }

        #[test]
        fn dispatch_on_full_queue_refuses_with_429() {
            let (tx, _rx) = mpsc::sync_channel::<Job>(0); // rendezvous: always full
            let (mut lp, conn) = bench_loop(Some(tx));
            let err = lp.try_dispatch(0, &conn, run_req(), true).unwrap_err();
            let (_, e) = *err;
            assert_eq!(e.status, 429);
            assert!(
                !lp.ctx.shutdown.load(Ordering::SeqCst),
                "saturation is backpressure, not drain"
            );
            assert_eq!(lp.ctx.sim_inflight.load(Ordering::SeqCst), 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(p: Parsed) -> (HttpRequest, usize) {
        match p {
            Parsed::Complete(req, n) => (req, n),
            Parsed::Partial => panic!("expected Complete, got Partial"),
            Parsed::Bad(e) => panic!("expected Complete, got Bad: {e}"),
        }
    }

    #[test]
    fn header_end_detection_and_reasons() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
        assert_eq!(reason_of(200), "OK");
        assert_eq!(reason_of(408), "Request Timeout");
        assert_eq!(reason_of(429), "Too Many Requests");
        assert_eq!(reason_of(431), "Request Header Fields Too Large");
        assert_eq!(reason_of(207), "Multi-Status");
        assert_eq!(reason_of(999), "Unknown");
    }

    #[test]
    fn serve_config_resolves_inflight_cap() {
        let cfg = ServeConfig::default().with_workers(8);
        assert_eq!(cfg.effective_max_inflight(), 7);
        let cfg = ServeConfig::default().with_workers(1);
        assert_eq!(cfg.effective_max_inflight(), 1);
        let cfg = ServeConfig::default().with_max_inflight(3);
        assert_eq!(cfg.effective_max_inflight(), 3);
    }

    #[test]
    fn parser_accepts_any_byte_boundary_split() {
        let raw = b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut]) {
                Parsed::Partial => {}
                Parsed::Complete(..) => panic!("complete at prefix {cut}"),
                Parsed::Bad(e) => panic!("bad at prefix {cut}: {e}"),
            }
        }
        let (req, consumed) = complete(parse_request(raw));
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, "body");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parser_consumes_exactly_one_pipelined_request() {
        let first = b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
        let second = b"GET /v1/metrics HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
        let mut buf = first.clone();
        buf.extend_from_slice(&second);
        let (req, consumed) = complete(parse_request(&buf));
        assert_eq!(req.path, "/v1/health");
        assert_eq!(
            consumed,
            first.len(),
            "must not eat the pipelined successor"
        );
        buf.drain(..consumed);
        let (req, consumed) = complete(parse_request(&buf));
        assert_eq!(req.path, "/v1/metrics");
        assert_eq!(consumed, second.len());
    }

    #[test]
    fn parser_connection_semantics() {
        let (req, _) = complete(parse_request(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
        ));
        assert!(!req.keep_alive, "explicit close wins on HTTP/1.1");
        let (req, _) = complete(parse_request(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n"));
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let (req, _) = complete(parse_request(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        ));
        assert!(req.keep_alive, "HTTP/1.0 can opt in");
    }

    #[test]
    fn parser_rejects_oversized_headers_with_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "y".repeat(MAX_HEADER_BYTES)).as_bytes());
        // Even before the terminator arrives the verdict is final.
        match parse_request(&raw) {
            Parsed::Bad(e) => {
                assert_eq!(e.status, 431);
                assert_eq!(e.code, "headers_too_large");
            }
            _ => panic!("oversized headers must be refused"),
        }
        raw.extend_from_slice(b"\r\n");
        match parse_request(&raw) {
            Parsed::Bad(e) => assert_eq!(e.status, 431),
            _ => panic!("oversized headers must be refused after terminator too"),
        }
    }

    #[test]
    fn parser_rejects_unframeable_requests() {
        match parse_request(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n") {
            Parsed::Bad(e) => assert_eq!(e.status, 400),
            _ => panic!("bad Content-Length must be refused"),
        }
        match parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            Parsed::Bad(e) => assert_eq!(e.status, 400),
            _ => panic!("chunked framing must be refused"),
        }
        match parse_request(b"\r\n\r\n") {
            Parsed::Bad(e) => assert_eq!(e.status, 400),
            _ => panic!("empty request line must be refused"),
        }
    }

    #[test]
    fn response_framing_is_pinned() {
        // The byte-identity invariant: fixed header set, fixed order,
        // no date. Close framing must match the pre-event-loop daemon.
        let bytes = encode_response(200, "{}\n", None, false);
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 3\r\nConnection: close\r\n\r\n{}\n"
        );
        let bytes = encode_response(429, "x", retry_after_of(429, 0, 8), true);
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\nContent-Length: 1\r\nConnection: keep-alive\r\nRetry-After: 1\r\n\r\nx"
        );
    }

    #[test]
    fn retry_after_scales_with_load() {
        // Idle → the old fixed 1 s floor; half load → 3 s; at the cap
        // → 5 s; deep overload clamps at 60 s. Non-retryable statuses
        // never carry the header.
        assert_eq!(retry_after_of(429, 0, 8), Some(1));
        assert_eq!(retry_after_of(503, 4, 8), Some(3));
        assert_eq!(retry_after_of(429, 8, 8), Some(5));
        assert_eq!(retry_after_of(429, 1, 1), Some(5));
        assert_eq!(retry_after_of(429, 1000, 8), Some(60));
        assert_eq!(
            retry_after_of(503, 0, 0),
            Some(1),
            "cap 0 must not divide by zero"
        );
        assert_eq!(retry_after_of(200, 8, 8), None);
        assert_eq!(retry_after_of(404, 8, 8), None);
    }
}
