//! `spechpc serve` — the simulation-as-a-service daemon.
//!
//! A dependency-free HTTP/1.1 server hand-rolled over
//! [`std::net::TcpListener`] (the same way [`faultcfg`](crate::faultcfg)
//! hand-rolls TOML and [`json`](crate::json) hand-rolls JSON), keeping
//! one [`Executor`] + run cache + metrics ledger resident across
//! requests so the parameter-sweep workloads of the paper's methodology
//! amortize their warm-up instead of re-opening the cache per
//! invocation.
//!
//! Routes (all bodies JSON, all responses `Connection: close`):
//!
//! | route                  | meaning                                     |
//! |------------------------|---------------------------------------------|
//! | `POST /v1/run`         | one [`RunRequest`] → [`RunResponse`](crate::api::RunResponse) |
//! | `POST /v1/suite`       | one [`SuiteRequest`] → suite report         |
//! | `GET /v1/profile/{b}`  | MPI profile tables for one cached run       |
//! | `GET /v1/metrics`      | resident executor/cache counters            |
//! | `GET /v1/health`       | liveness + in-flight count + drain state    |
//! | `POST /v1/shutdown`    | begin graceful drain                        |
//!
//! Production shape:
//!
//! * **admission control** — a bounded accept queue plus an in-flight
//!   cap on the simulating routes; both answer `429` with `Retry-After`
//!   when saturated (fast routes like health/metrics stay served so
//!   clients can watch the backlog);
//! * **per-request supervision** — handler panics are caught at the
//!   connection boundary, and simulations inherit the resident
//!   executor's cooperative-cancel timeout;
//! * **byte-identical replays** — responses carry no timestamps and the
//!   run payload reuses the cache encoding, so a repeated identical
//!   `POST /v1/run` answers from memory in microseconds with the same
//!   bytes;
//! * **graceful shutdown** — SIGTERM or `POST /v1/shutdown` stops
//!   accepting, drains queued and in-flight work, flushes the metrics
//!   CSV, and [`Server::serve`] returns `Ok` (exit 0).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::api::{dispatch_run, dispatch_suite, parse_class, ApiError, RunRequest, SuiteRequest};
use crate::exec::Executor;
use crate::json::Json;
use crate::obs;
use crate::report::Table;

/// How the daemon listens, schedules and drains.
///
/// Marked `#[non_exhaustive]`: construct with [`ServeConfig::default`]
/// plus the `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Listen address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded depth of the accept queue; a connection arriving on a
    /// full queue is answered `429` straight from the accept loop.
    pub queue_depth: usize,
    /// Max simulating requests in flight before `POST /v1/run` and
    /// `POST /v1/suite` answer `429`; `0` resolves to `workers - 1`
    /// (min 1) so one worker always stays free for the fast routes.
    pub max_inflight: usize,
    /// Structured request log on stderr.
    pub log_requests: bool,
    /// Flush the executor metrics CSV here on graceful shutdown.
    pub metrics_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_depth: 64,
            max_inflight: 0,
            log_requests: true,
            metrics_dir: None,
        }
    }
}

impl ServeConfig {
    /// Builder: listen address (`host:port`; port `0` = ephemeral).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Builder: worker thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: accept-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Builder: in-flight simulation cap (`0` = auto).
    pub fn with_max_inflight(mut self, max: usize) -> Self {
        self.max_inflight = max;
        self
    }

    /// Builder: toggle the stderr request log.
    pub fn with_log_requests(mut self, log: bool) -> Self {
        self.log_requests = log;
        self
    }

    /// Builder: flush metrics CSV under `dir` on shutdown.
    pub fn with_metrics_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.metrics_dir = Some(dir.into());
        self
    }

    fn effective_max_inflight(&self) -> usize {
        if self.max_inflight > 0 {
            self.max_inflight
        } else {
            self.workers.saturating_sub(1).max(1)
        }
    }
}

/// Process-wide SIGTERM/SIGINT latch (signal handlers must be static).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT into the graceful-drain path: the next
/// accept-loop tick stops accepting and [`Server::serve`] drains and
/// returns `Ok`. `std` already links the platform libc, so the raw
/// `signal(2)` binding needs no external crate.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Shared state every worker sees.
struct Ctx {
    exec: Executor,
    shutdown: AtomicBool,
    sim_inflight: AtomicUsize,
    max_inflight: usize,
    log_requests: bool,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }
}

/// RAII slot on the simulating routes: acquired before dispatch,
/// released when the response is written (even on panic — the guard
/// lives across the `catch_unwind`).
struct SimSlot<'a>(&'a Ctx);

impl<'a> SimSlot<'a> {
    fn try_acquire(ctx: &'a Ctx) -> Result<Self, ApiError> {
        let prev = ctx.sim_inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= ctx.max_inflight {
            ctx.sim_inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(ApiError::saturated(format!(
                "{prev} simulation(s) in flight (cap {})",
                ctx.max_inflight
            )));
        }
        Ok(SimSlot(ctx))
    }
}

impl Drop for SimSlot<'_> {
    fn drop(&mut self) {
        self.0.sim_inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The resident daemon. Bind with [`Server::bind`], then block on
/// [`Server::serve`] until a graceful shutdown drains it.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    config: ServeConfig,
}

impl Server {
    /// Bind the listen socket around a resident executor. Nothing is
    /// accepted until [`Server::serve`].
    pub fn bind(exec: Executor, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let ctx = Arc::new(Ctx {
            exec,
            shutdown: AtomicBool::new(false),
            sim_inflight: AtomicUsize::new(0),
            max_inflight: config.effective_max_inflight(),
            log_requests: config.log_requests,
        });
        Ok(Server {
            listener,
            ctx,
            config,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers graceful drain when used — the same
    /// latch `POST /v1/shutdown` and SIGTERM flip.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.ctx))
    }

    /// Accept and serve until shutdown is requested, then drain queued
    /// and in-flight connections, flush metrics, and return. A clean
    /// drain is `Ok(())` — the daemon's exit-0 path.
    pub fn serve(self) -> std::io::Result<()> {
        let Server {
            listener,
            ctx,
            config,
        } = self;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            workers.push(std::thread::spawn(move || loop {
                let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                match next {
                    Ok(stream) => handle_connection(&ctx, stream),
                    Err(_) => return, // sender dropped: queue drained
                }
            }));
        }

        listener.set_nonblocking(true)?;
        while !ctx.draining() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        // Bounded memory: a full queue answers 429
                        // straight from the accept loop instead of
                        // buffering unboundedly. Drain the request
                        // first — closing with unread bytes in the
                        // socket turns into an RST that can destroy
                        // the 429 before the client reads it.
                        Err(TrySendError::Full(mut stream)) => {
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                            let _ = read_request(&mut stream);
                            let e = ApiError::saturated("accept queue full");
                            let _ = write_error(&mut stream, &e);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: stop accepting, let the workers finish everything
        // already queued or in flight, then flush observability.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(dir) = &config.metrics_dir {
            let _ = obs::write_metrics_csv(dir, "serve", &ctx.exec.metrics());
        }
        if ctx.log_requests {
            let m = ctx.exec.metrics();
            eprintln!(
                "[serve] drained: {} run(s) executed, {} cache hit(s), bye",
                m.runs_executed,
                m.cache.hits_mem + m.cache.hits_disk
            );
        }
        Ok(())
    }
}

/// Opaque drain trigger detached from the [`Server`]'s lifetime: keep
/// one around, call [`ShutdownHandle::request_drain`] from any thread,
/// and the accept loop begins its graceful drain on the next tick.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Ctx>);

impl ShutdownHandle {
    /// Flip the drain latch (idempotent).
    pub fn request_drain(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has a drain been requested (by this handle, a client, or a
    /// signal)?
    pub fn draining(&self) -> bool {
        self.0.draining()
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

/// One parsed request. Only what the routes need — this is a service
/// endpoint, not a general web server.
struct HttpRequest {
    method: String,
    /// Path without the query string.
    path: String,
    query: String,
    body: String,
}

const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Read one HTTP/1.1 request (start line, headers, `Content-Length`
/// body) off the stream.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, ApiError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(ApiError::bad_request("request headers too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| ApiError::bad_request(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(ApiError::bad_request("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or_default();
    let mut parts = start.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || target.is_empty() {
        return Err(ApiError::bad_request("malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ApiError::bad_request("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(ApiError::bad_request("request body too large"));
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| ApiError::bad_request(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(ApiError::bad_request("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(HttpRequest {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body).to_string(),
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        207 => "Multi-Status",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one response. Deterministic bytes: fixed header set in fixed
/// order, no date, no server version — a cached replay is
/// byte-identical to the response that simulated.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    retry_after: Option<u32>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason_of(status),
        body.len()
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn write_error(stream: &mut TcpStream, e: &ApiError) -> std::io::Result<()> {
    let retry = matches!(e.status, 429 | 503).then_some(1);
    let mut body = e.to_json();
    body.push('\n');
    write_response(stream, e.status, &body, retry)
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn handle_connection(ctx: &Ctx, mut stream: TcpStream) {
    let t0 = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_error(&mut stream, &e);
            return;
        }
    };
    // A handler panic must never take the daemon down: catch at the
    // connection boundary and degrade to a 500.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| route(ctx, &req)));
    let outcome = outcome.unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(ApiError::internal(format!("handler panicked: {msg}")))
    });
    let (status, bytes) = match &outcome {
        Ok((status, body)) => {
            let _ = write_response(&mut stream, *status, body, None);
            (*status, body.len())
        }
        Err(e) => {
            let _ = write_error(&mut stream, e);
            (e.status, e.to_json().len() + 1)
        }
    };
    if ctx.log_requests {
        eprintln!(
            "[serve] {} {} -> {} {}B {:.1}ms inflight={}",
            req.method,
            req.path,
            status,
            bytes,
            t0.elapsed().as_secs_f64() * 1e3,
            ctx.sim_inflight.load(Ordering::SeqCst),
        );
    }
}

/// Dispatch one request to its handler; `Ok((status, body))` or a
/// typed error.
fn route(ctx: &Ctx, req: &HttpRequest) -> Result<(u16, String), ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/run") => {
            admission(ctx)?;
            let _slot = SimSlot::try_acquire(ctx)?;
            let run = RunRequest::from_json(&req.body)?;
            let resp = dispatch_run(&ctx.exec, &run)?;
            Ok((200, resp.to_json()))
        }
        ("POST", "/v1/suite") => {
            admission(ctx)?;
            let _slot = SimSlot::try_acquire(ctx)?;
            let suite = SuiteRequest::from_json(&req.body)?;
            let resp = dispatch_suite(&ctx.exec, &suite)?;
            let status = if resp.report.is_complete() { 200 } else { 207 };
            Ok((status, resp.to_json()))
        }
        ("GET", path) if path.starts_with("/v1/profile/") => {
            admission(ctx)?;
            let _slot = SimSlot::try_acquire(ctx)?;
            profile(ctx, &path["/v1/profile/".len()..], &req.query)
        }
        ("GET", "/v1/metrics") => Ok((200, metrics_json(ctx))),
        ("GET", "/v1/health") => Ok((200, health_json(ctx))),
        ("POST", "/v1/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Ok((200, "{\"status\":\"draining\"}\n".to_string()))
        }
        (_, path) => Err(ApiError::not_found(format!(
            "no route for {} {path}",
            req.method
        ))),
    }
}

/// Simulating routes refuse new work once a drain started.
fn admission(ctx: &Ctx) -> Result<(), ApiError> {
    if ctx.draining() {
        Err(ApiError::shutting_down())
    } else {
        Ok(())
    }
}

/// `GET /v1/profile/{benchmark}?cluster=a&class=tiny&n=8` — the
/// Fig.-2-style MPI breakdown of one (cached) run as JSON tables.
fn profile(ctx: &Ctx, benchmark: &str, query: &str) -> Result<(u16, String), ApiError> {
    let mut cluster = "a".to_string();
    let mut class = "tiny".to_string();
    let mut nranks = 0usize;
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "cluster" => cluster = v.to_string(),
            "class" => class = v.to_string(),
            "n" | "nranks" => {
                nranks = v
                    .parse()
                    .map_err(|_| ApiError::bad_request(format!("bad rank count '{v}'")))?
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown query parameter '{other}'"
                )))
            }
        }
    }
    let run = RunRequest::new(benchmark, parse_class(&class)?, nranks).with_cluster(cluster);
    let resp = dispatch_run(&ctx.exec, &run)?;
    let r = &resp.result;
    let label = format!("{}/{}/{}@{}", r.benchmark, r.class, r.nranks, r.cluster);
    let table_err = |e: crate::report::ReportError| ApiError::internal(e.to_string());
    let ranks = obs::profile_rank_table(&label, &r.profile).map_err(table_err)?;
    let hist = obs::profile_histogram_table("message sizes", &r.profile).map_err(table_err)?;
    let matrix = obs::profile_matrix_table("heaviest pairs", &r.profile, 10).map_err(table_err)?;
    let body = Json::Obj(vec![
        ("run".into(), Json::from(label)),
        ("ranks".into(), table_to_json(&ranks)),
        ("histogram".into(), table_to_json(&hist)),
        ("matrix".into(), table_to_json(&matrix)),
    ])
    .render();
    Ok((200, body))
}

fn table_to_json(t: &Table) -> Json {
    Json::Obj(vec![
        ("title".into(), Json::from(t.title.as_str())),
        (
            "header".into(),
            Json::Arr(t.header.iter().map(|h| Json::from(h.as_str())).collect()),
        ),
        (
            "rows".into(),
            Json::Arr(
                t.rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|c| Json::from(c.as_str())).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn health_json(ctx: &Ctx) -> String {
    Json::Obj(vec![
        ("status".into(), Json::from("ok")),
        (
            "inflight".into(),
            Json::from(ctx.sim_inflight.load(Ordering::SeqCst)),
        ),
        ("draining".into(), Json::from(ctx.draining())),
    ])
    .render()
}

fn metrics_json(ctx: &Ctx) -> String {
    let m = ctx.exec.metrics();
    Json::Obj(vec![
        ("runs_executed".into(), Json::from(m.runs_executed)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits_mem".into(), Json::from(m.cache.hits_mem)),
                ("hits_disk".into(), Json::from(m.cache.hits_disk)),
                ("misses".into(), Json::from(m.cache.misses)),
                ("corrupt".into(), Json::from(m.cache.corrupt)),
                ("quarantined".into(), Json::from(m.cache.quarantined)),
                ("stores".into(), Json::from(m.cache.stores)),
            ]),
        ),
        (
            "per_worker_runs".into(),
            Json::Arr(m.per_worker_runs.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("points_timed".into(), Json::from(m.point_wall_s.len())),
        ("total_wall_s".into(), Json::from(m.total_wall_s())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection_and_reasons() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
        assert_eq!(reason_of(200), "OK");
        assert_eq!(reason_of(429), "Too Many Requests");
        assert_eq!(reason_of(207), "Multi-Status");
        assert_eq!(reason_of(999), "Unknown");
    }

    #[test]
    fn serve_config_resolves_inflight_cap() {
        let cfg = ServeConfig::default().with_workers(8);
        assert_eq!(cfg.effective_max_inflight(), 7);
        let cfg = ServeConfig::default().with_workers(1);
        assert_eq!(cfg.effective_max_inflight(), 1);
        let cfg = ServeConfig::default().with_max_inflight(3);
        assert_eq!(cfg.effective_max_inflight(), 3);
    }
}
