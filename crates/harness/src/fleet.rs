//! `spechpc fleet` — the sharded execution fabric over `spechpc serve`.
//!
//! One **coordinator** daemon fronts N **worker** daemons (plain
//! [`serve`](crate::serve) instances). Requests are routed by
//! *consistent hashing* on the content-addressed
//! [`RunKey`]: a [`HashRing`] with virtual nodes
//! maps each key's 64-bit FNV hash to a preference order of workers, so
//! the same grid point always lands on the same worker (maximizing its
//! warm in-memory cache) and adding or losing a worker only remaps the
//! keys that worker owned.
//!
//! | route                  | coordinator behaviour                           |
//! |------------------------|-------------------------------------------------|
//! | `POST /v1/run`         | forward to the key's worker, failover on death  |
//! | `POST /v1/suite`       | shard the grid across workers, steal stragglers |
//! | `POST /v1/plan`        | forward to the plan hash's worker (cached shapes) |
//! | `GET /v1/health`       | coordinator + per-worker liveness               |
//! | `GET /v1/metrics`      | routing counters (per-worker routed, failovers) |
//! | `GET /v1/capabilities` | the shared route table + schema version         |
//! | `POST /v1/shutdown`    | begin graceful drain                            |
//!
//! Which class a route falls into (local / forward / fan-out) comes
//! from the shared registry ([`api::ENDPOINTS`]), the same table the
//! single daemon dispatches through.
//!
//! Fault handling:
//!
//! * a **worker registry** tracks liveness; a background prober hits
//!   each worker's `GET /v1/health` and marks draining or unreachable
//!   workers dead (and revives them when they answer again);
//! * a forward that fails at the transport level, or is refused with
//!   `429`/`503`, **fails over** to the next worker on the ring; runs
//!   are content-addressed and therefore idempotent, so re-executing a
//!   request whose first worker died mid-flight is safe;
//! * suite grids are split into per-worker shards; a worker thread that
//!   drains its own shard **steals** pending points from the slowest
//!   shard, so one dead or slow worker cannot stall the suite.
//!
//! Byte identity is preserved end to end: run responses are relayed
//! verbatim, and the coordinator reassembles suite responses in spec
//! order from the workers' cache-encoded result payloads, so a suite
//! routed through the fleet is byte-identical to the same suite on a
//! single daemon. Workers can also *pull* results from each other: the
//! executor's peer-fetch hook ([`peer_fetcher`]) asks each peer's
//! `GET /v1/cache/{hash}` before simulating, so a result computed
//! anywhere is served everywhere.
//!
//! [`run_loadgen`] is the synthetic-load client fleet (`spechpc
//! loadgen`): N keep-alive connections hammering one address, reporting
//! requests/s and latency percentiles.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use spechpc_kernels::registry::all_benchmarks;

use crate::api::{
    self, resolve_cluster, ApiError, EndpointId, FleetClass, RunRequest, SuiteRequest,
};
use crate::cache::{self, RunKey};
use crate::exec::PeerFetch;
use crate::json::{parse_json, quote, Json};
use crate::plan::PlanRequest;
use crate::serve::{encode_response, error_body};

/// FNV-1a 64-bit — the same hash the run cache addresses entries with,
/// reused for ring placement so routing needs no second hash family.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer. FNV alone distributes the similar short
/// strings of vnode labels poorly across the high bits; ring points and
/// routed keys both pass through this mix so placement is uniform.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// Exponential backoff between full failover sweeps, mirroring the
/// executor's transient-retry schedule: 10 ms, 20, 40, … capped 640 ms.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((10u64 << (attempt.saturating_sub(1)).min(6)).min(640))
}

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

/// A consistent-hash ring over worker indices. Each worker contributes
/// `vnodes` points (hashes of `"worker{i}#vnode{j}"`); a key is routed
/// to the first point clockwise from its own hash. [`HashRing::preference`]
/// returns the *full* failover order — every worker exactly once, in
/// ring order from the key — so callers walk past dead workers without
/// re-hashing.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, worker)` sorted by point.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl HashRing {
    pub fn new(workers: usize, vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(workers * vnodes);
        for w in 0..workers {
            for v in 0..vnodes {
                points.push((mix64(fnv64(&format!("worker{w}#vnode{v}"))), w));
            }
        }
        points.sort_unstable();
        HashRing { points, workers }
    }

    /// All workers in failover order for `key`: the key's owner first,
    /// then each remaining worker in the order its first point appears
    /// clockwise.
    pub fn preference(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.workers);
        if self.points.is_empty() {
            return order;
        }
        let key = mix64(key);
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut seen = vec![false; self.workers];
        for i in 0..self.points.len() {
            let (_, w) = self.points[(start + i) % self.points.len()];
            if !seen[w] {
                seen[w] = true;
                order.push(w);
                if order.len() == self.workers {
                    break;
                }
            }
        }
        order
    }
}

// ---------------------------------------------------------------------------
// Minimal blocking HTTP client (coordinator → worker, peer fetch, loadgen)
// ---------------------------------------------------------------------------

/// A decoded upstream response: status, relayed `Retry-After`, body.
#[derive(Debug, Clone)]
pub(crate) struct WireResponse {
    pub status: u16,
    pub retry_after: Option<u32>,
    pub body: String,
}

/// Why an upstream exchange produced no usable response. The split
/// matters to the failover loop: an [`Io`](TransportError::Io) failure
/// (refused, reset before headers, timed out) means the worker never
/// answered, while an [`Integrity`](TransportError::Integrity) failure
/// means it answered with bytes that cannot be trusted — a truncated
/// body, an implausible `Content-Length`, a mangled status line. A
/// request that exhausts its failovers on integrity failures becomes a
/// typed `502 bad_upstream`, never a silent splice of partial JSON.
#[derive(Debug)]
pub(crate) enum TransportError {
    /// The exchange failed below HTTP: connect, read or write error.
    Io(io::Error),
    /// Bytes arrived, but violate the response framing.
    Integrity(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "{e}"),
            TransportError::Integrity(msg) => write!(f, "response integrity: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Upper bound on a plausible response body. Nothing the daemon emits
/// approaches this; a larger `Content-Length` is corruption, not data,
/// and must not make the client allocate unbounded memory.
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

fn resolve_addr(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("cannot resolve {addr}")))
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: fleet\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Read one `Content-Length`-framed response off a (possibly
/// keep-alive) stream, enforcing integrity: the status line must parse,
/// `Content-Length` must be a plausible number, and the body must
/// arrive complete. A violation is a typed
/// [`TransportError::Integrity`] — partial bytes are never returned as
/// if they were a response.
fn read_response(stream: &mut TcpStream) -> Result<WireResponse, TransportError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            // A clean close before any byte is an I/O-level failure
            // (the peer never answered); a close after partial headers
            // means it answered with torn bytes.
            if buf.is_empty() {
                return Err(TransportError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response headers",
                )));
            }
            return Err(TransportError::Integrity(format!(
                "connection closed inside response headers after {} bytes",
                buf.len()
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    if !status_line.starts_with("HTTP/1.") {
        return Err(TransportError::Integrity(format!(
            "malformed status line {status_line:?}"
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            TransportError::Integrity(format!("malformed status line {status_line:?}"))
        })?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let v = v.trim();
        if k.eq_ignore_ascii_case("content-length") {
            content_length = v
                .parse()
                .map_err(|_| TransportError::Integrity(format!("bad Content-Length {v:?}")))?;
            if content_length > MAX_RESPONSE_BODY {
                return Err(TransportError::Integrity(format!(
                    "implausible Content-Length {content_length}"
                )));
            }
        } else if k.eq_ignore_ascii_case("retry-after") {
            retry_after = v.parse().ok();
        }
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(TransportError::Integrity(format!(
                "body truncated at {} of {} bytes",
                buf.len() - body_start,
                content_length
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).to_string();
    Ok(WireResponse {
        status,
        retry_after,
        body,
    })
}

/// One `Connection: close` request/response exchange with timeouts on
/// connect, read and write.
pub(crate) fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<WireResponse, TransportError> {
    let sockaddr = resolve_addr(addr)?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout.min(Duration::from_secs(2)))?;
    // Nagle on the client plus delayed ACK on the daemon would stall
    // every small request/response exchange by ~40 ms.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_request(&mut stream, method, path, body, false)?;
    read_response(&mut stream)
}

// ---------------------------------------------------------------------------
// Worker registry
// ---------------------------------------------------------------------------

/// Circuit-breaker state of one worker.
///
/// * **Closed** — healthy: routed to normally.
/// * **Open** — tripped: skipped on the live pass (the failover loop
///   still gives open workers one last-resort shot per sweep, and the
///   prober keeps testing them).
/// * **Half-open** — a probe succeeded while open: eligible for real
///   traffic again, but one forwarding failure re-opens immediately
///   instead of taking `BREAKER_THRESHOLD` fresh failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    /// The state's wire label (`/v1/health`, `/v1/metrics`, obs CSV).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    fn from_u8(v: u8) -> BreakerState {
        match v {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// Consecutive forwarding failures that trip a closed breaker open.
/// One flaky exchange on a noisy fabric must not eject a worker; three
/// in a row is a pattern.
const BREAKER_THRESHOLD: u32 = 3;

/// One worker's circuit breaker: state machine + trip counter.
struct Breaker {
    /// Encoded [`BreakerState`] (0 closed, 1 open, 2 half-open).
    state: AtomicU8,
    /// Consecutive forwarding failures while closed.
    failures: AtomicU32,
    /// Times this breaker has transitioned into open.
    trips: AtomicU64,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: AtomicU8::new(BreakerState::Closed as u8),
            failures: AtomicU32::new(0),
            trips: AtomicU64::new(0),
        }
    }

    fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.state.load(Ordering::SeqCst))
    }

    fn set(&self, s: BreakerState) {
        let prev = self.state.swap(s as u8, Ordering::SeqCst);
        if s == BreakerState::Open && prev != BreakerState::Open as u8 {
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
        if s != BreakerState::Closed {
            return;
        }
        self.failures.store(0, Ordering::SeqCst);
    }
}

/// The fleet's view of its workers: addresses plus a circuit breaker
/// per worker, driven by health probes and by transport/integrity
/// failures on the forwarding path.
pub struct WorkerRegistry {
    addrs: Vec<String>,
    breakers: Vec<Breaker>,
}

impl WorkerRegistry {
    pub fn new(addrs: Vec<String>) -> Self {
        let breakers = addrs.iter().map(|_| Breaker::new()).collect();
        WorkerRegistry { addrs, breakers }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    pub fn addr(&self, w: usize) -> &str {
        &self.addrs[w]
    }

    /// A worker is routable unless its breaker is open.
    pub fn is_alive(&self, w: usize) -> bool {
        self.breakers[w].state() != BreakerState::Open
    }

    /// The worker's breaker state.
    pub fn state(&self, w: usize) -> BreakerState {
        self.breakers[w].state()
    }

    /// Times the worker's breaker has tripped open.
    pub fn trips(&self, w: usize) -> u64 {
        self.breakers[w].trips.load(Ordering::Relaxed)
    }

    /// Record one forwarding failure. A half-open worker was on
    /// probation — it re-opens immediately; a closed worker takes
    /// `BREAKER_THRESHOLD` consecutive failures to trip.
    pub fn mark_dead(&self, w: usize) {
        let b = &self.breakers[w];
        match b.state() {
            BreakerState::Open => {}
            BreakerState::HalfOpen => b.set(BreakerState::Open),
            BreakerState::Closed => {
                if b.failures.fetch_add(1, Ordering::SeqCst) + 1 >= BREAKER_THRESHOLD {
                    b.set(BreakerState::Open);
                }
            }
        }
    }

    /// Record one forwarding success: close the breaker.
    pub fn mark_alive(&self, w: usize) {
        self.breakers[w].set(BreakerState::Closed);
    }

    pub fn live_count(&self) -> usize {
        (0..self.addrs.len()).filter(|&w| self.is_alive(w)).count()
    }

    /// Probe one worker's `GET /v1/health`. The probe is authoritative
    /// in the failure direction — a worker that cannot answer its own
    /// health check is opened immediately, no threshold. In the
    /// recovery direction it is deliberately cautious: a probe success
    /// moves an open breaker to **half-open**, and only a real
    /// forwarded request closes it — a daemon can answer `/v1/health`
    /// while still failing real work behind a degraded fabric.
    pub fn probe(&self, w: usize, timeout: Duration) -> bool {
        let live = match one_shot(
            &self.addrs[w],
            "GET",
            EndpointId::Health.path(),
            "",
            timeout,
        ) {
            Ok(resp) => resp.status == 200 && !resp.body.contains("\"draining\": true"),
            Err(_) => false,
        };
        let b = &self.breakers[w];
        match (live, b.state()) {
            (false, _) => b.set(BreakerState::Open),
            (true, BreakerState::Open) => b.set(BreakerState::HalfOpen),
            (true, _) => {}
        }
        live
    }

    /// Probe every worker once.
    pub fn probe_all(&self, timeout: Duration) {
        for w in 0..self.addrs.len() {
            self.probe(w, timeout);
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// How the coordinator listens and routes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Coordinator listen address (`host:port`; port `0` = ephemeral).
    pub addr: String,
    /// Worker daemon addresses.
    pub workers: Vec<String>,
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// Per-forward timeout (seconds) — covers the slowest simulation.
    pub request_timeout_s: f64,
    /// Health-probe cadence (seconds).
    pub probe_interval_s: f64,
    /// Hedge routed `/v1/run` requests: once enough latency samples
    /// exist, fire the key's second preference after a p99-derived
    /// delay and take whichever answer lands first. Safe because runs
    /// are content-addressed and therefore idempotent.
    pub hedge: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            addr: "127.0.0.1:8700".to_string(),
            workers: Vec::new(),
            vnodes: 64,
            request_timeout_s: 300.0,
            probe_interval_s: 0.5,
            hedge: true,
        }
    }
}

impl FleetConfig {
    /// Builder: coordinator listen address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Builder: worker addresses.
    pub fn with_workers(mut self, workers: Vec<String>) -> Self {
        self.workers = workers;
        self
    }

    /// Builder: virtual nodes per worker (min 1).
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes.max(1);
        self
    }

    /// Builder: per-forward timeout in seconds.
    pub fn with_request_timeout_s(mut self, secs: f64) -> Self {
        self.request_timeout_s = secs.max(0.1);
        self
    }

    /// Builder: health-probe cadence in seconds.
    pub fn with_probe_interval_s(mut self, secs: f64) -> Self {
        self.probe_interval_s = secs.max(0.05);
        self
    }

    /// Builder: enable or disable hedged `/v1/run` requests.
    pub fn with_hedging(mut self, hedge: bool) -> Self {
        self.hedge = hedge;
        self
    }
}

/// Successful forward latencies kept for the hedging delay estimate.
const LATENCY_WINDOW: usize = 512;
/// Samples required before hedging activates — a p99 from a handful of
/// observations is noise.
const HEDGE_MIN_SAMPLES: usize = 32;

/// Shared coordinator state.
struct FleetCtx {
    registry: WorkerRegistry,
    ring: HashRing,
    shutdown: AtomicBool,
    requests: AtomicU64,
    failovers: AtomicU64,
    routed: Vec<AtomicU64>,
    /// Hedged requests launched (second attempt actually fired).
    hedges_fired: AtomicU64,
    /// Hedged requests where the hedge's answer was used.
    hedges_won: AtomicU64,
    /// Extra forwarding attempts beyond each request's first.
    retries_spent: AtomicU64,
    /// Sliding window of successful forward latencies (seconds).
    latencies: Mutex<VecDeque<f64>>,
    /// splitmix64 counter state for decorrelated retry jitter.
    rng: AtomicU64,
    hedge: bool,
    request_timeout: Duration,
    probe_interval: Duration,
}

impl FleetCtx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::serve::signalled()
    }

    /// The next jitter draw in `[0, 1)` — lock-free: each caller
    /// advances a shared splitmix64 counter.
    fn jitter_unit(&self) -> f64 {
        let x = self.rng.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
        (mix64(x) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn record_latency(&self, elapsed: Duration) {
        let mut lat = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if lat.len() >= LATENCY_WINDOW {
            lat.pop_front();
        }
        lat.push_back(elapsed.as_secs_f64());
    }

    /// The hedging trigger delay: the observed p99 forward latency,
    /// clamped to at least 10 ms so a warm-cache fleet (sub-ms answers)
    /// does not hedge every single request. `None` until enough
    /// samples exist.
    fn hedge_delay(&self) -> Option<Duration> {
        let mut sorted: Vec<f64> = {
            let lat = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
            if lat.len() < HEDGE_MIN_SAMPLES {
                return None;
            }
            lat.iter().copied().collect()
        };
        sorted.sort_by(|a, b| a.total_cmp(b));
        let p99_ms = percentile_ms(&sorted, 99.0);
        Some(Duration::from_secs_f64((p99_ms / 1e3).max(0.010)))
    }
}

/// Drain trigger detached from the [`Coordinator`]'s lifetime, mirroring
/// [`ShutdownHandle`](crate::serve::ShutdownHandle).
#[derive(Clone)]
pub struct FleetShutdownHandle(Arc<FleetCtx>);

impl FleetShutdownHandle {
    /// Flip the drain latch (idempotent).
    pub fn request_drain(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The coordinator daemon. Bind with [`Coordinator::bind`], then block
/// on [`Coordinator::serve`] until drained.
pub struct Coordinator {
    listener: TcpListener,
    ctx: Arc<FleetCtx>,
}

impl Coordinator {
    pub fn bind(config: FleetConfig) -> io::Result<Coordinator> {
        if config.workers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one worker address",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let ring = HashRing::new(config.workers.len(), config.vnodes);
        let routed = config.workers.iter().map(|_| AtomicU64::new(0)).collect();
        let ctx = Arc::new(FleetCtx {
            registry: WorkerRegistry::new(config.workers),
            ring,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            routed,
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            retries_spent: AtomicU64::new(0),
            latencies: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
            rng: AtomicU64::new(0x005e_edc0_de0f_1ee7),
            hedge: config.hedge,
            request_timeout: Duration::from_secs_f64(config.request_timeout_s),
            probe_interval: Duration::from_secs_f64(config.probe_interval_s),
        });
        Ok(Coordinator { listener, ctx })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn shutdown_handle(&self) -> FleetShutdownHandle {
        FleetShutdownHandle(Arc::clone(&self.ctx))
    }

    /// Accept-and-route until the drain latch flips. Connections are
    /// handled one thread each — the coordinator's work per request is
    /// a forward, so the 10k-connection epoll machinery stays on the
    /// workers where the simulations run.
    pub fn serve(self) -> io::Result<()> {
        let Coordinator { listener, ctx } = self;
        listener.set_nonblocking(true)?;
        ctx.registry.probe_all(Duration::from_secs(2));
        let prober = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                while !ctx.draining() {
                    ctx.registry.probe_all(Duration::from_secs(2));
                    // Sleep in short slices so a drain isn't held up by
                    // a long probe interval.
                    let mut slept = Duration::ZERO;
                    while slept < ctx.probe_interval && !ctx.draining() {
                        let step = (ctx.probe_interval - slept).min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        slept += step;
                    }
                }
            })
        };
        let mut handlers = Vec::new();
        while !ctx.draining() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let ctx = Arc::clone(&ctx);
                    handlers.push(std::thread::spawn(move || handle_conn(stream, &ctx)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = prober.join();
        Ok(())
    }
}

/// One coordinator connection: parse framed requests, route, answer,
/// keep alive until the client closes or the fleet drains.
fn handle_conn(mut stream: TcpStream, ctx: &Arc<FleetCtx>) {
    let _ = stream.set_read_timeout(Some(ctx.request_timeout + Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Read until one complete request is buffered.
        let (method, path, body, keep_alive, consumed) = loop {
            if let Some(parsed) = parse_buffered(&buf) {
                break parsed;
            }
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        };
        buf.drain(..consumed);
        let keep = keep_alive && !ctx.draining();
        let (status, body, retry_after) = route(ctx, &method, &path, &body);
        let bytes = encode_response(status, &body, retry_after, keep);
        if stream.write_all(&bytes).is_err() || !keep {
            return;
        }
    }
}

/// Parse one buffered request, if complete:
/// `(method, path, body, keep_alive, bytes_consumed)`. The coordinator
/// accepts the same framing the workers emit (`Content-Length`, no
/// chunked encoding).
#[allow(clippy::type_complexity)]
fn parse_buffered(buf: &[u8]) -> Option<(String, String, String, bool, usize)> {
    let header_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let mut start = lines.next().unwrap_or_default().split_whitespace();
    let method = start.next().unwrap_or_default().to_string();
    let target = start.next().unwrap_or_default().to_string();
    let version = start.next().unwrap_or("HTTP/1.1").to_string();
    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let v = v.trim();
        if k.eq_ignore_ascii_case("content-length") {
            content_length = v.parse().unwrap_or(0);
        } else if k.eq_ignore_ascii_case("connection") {
            connection = v.to_ascii_lowercase();
        }
    }
    let total = header_end + 4 + content_length;
    if buf.len() < total {
        return None;
    }
    let keep_alive = if version.eq_ignore_ascii_case("HTTP/1.0") {
        connection.split(',').any(|t| t.trim() == "keep-alive")
    } else {
        !connection.split(',').any(|t| t.trim() == "close")
    };
    let path = target
        .split_once('?')
        .map(|(p, _)| p.to_string())
        .unwrap_or(target);
    let body = String::from_utf8_lossy(&buf[header_end + 4..total]).to_string();
    Some((method, path, body, keep_alive, total))
}

/// Coordinator routing: `(status, body, relayed Retry-After)`. The
/// shared route table ([`api::ENDPOINTS`]) decides whether a request is
/// answered locally, forwarded to one worker, or fanned out — the same
/// table `serve` dispatches through.
fn route(ctx: &Arc<FleetCtx>, method: &str, path: &str, body: &str) -> (u16, String, Option<u32>) {
    ctx.requests.fetch_add(1, Ordering::Relaxed);
    let refused = |e: ApiError| {
        let retry = matches!(e.status, 429 | 503).then_some(1);
        (e.status, error_body(&e), retry)
    };
    let ep = api::endpoint_for(method, path);
    // Coordinator-local endpoints answer even while draining, so
    // operators can watch the drain complete.
    if let Some(ep) = ep {
        if ep.fleet == FleetClass::Local {
            return match ep.id {
                EndpointId::Health => (200, fleet_health_json(ctx), None),
                EndpointId::Metrics => (200, fleet_metrics_json(ctx), None),
                EndpointId::Capabilities => (200, api::capabilities_json(), None),
                EndpointId::Shutdown => {
                    ctx.shutdown.store(true, Ordering::SeqCst);
                    (200, "{\"status\":\"draining\"}\n".to_string(), None)
                }
                _ => refused(api::no_route(method, path)),
            };
        }
    }
    if ctx.draining() {
        return refused(ApiError::shutting_down());
    }
    match ep.map(|e| (e.fleet, e.id)) {
        Some((FleetClass::Forward, id)) => {
            let out = match id {
                EndpointId::Run => forward_run(ctx, body),
                EndpointId::Plan => forward_plan(ctx, body),
                _ => Err(api::no_route(method, path)),
            };
            match out {
                Ok(resp) => (resp.status, resp.body, resp.retry_after),
                Err(e) => refused(e),
            }
        }
        Some((FleetClass::FanOut, _)) => match fan_out_suite(ctx, body) {
            Ok((status, body)) => (status, body, None),
            Err(e) => refused(e),
        },
        _ => refused(api::no_route(method, path)),
    }
}

fn fleet_health_json(ctx: &FleetCtx) -> String {
    let workers = (0..ctx.registry.len())
        .map(|w| {
            Json::Obj(vec![
                ("addr".into(), Json::from(ctx.registry.addr(w))),
                ("alive".into(), Json::from(ctx.registry.is_alive(w))),
                ("breaker".into(), Json::from(ctx.registry.state(w).label())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("status".into(), Json::from("ok")),
        ("role".into(), Json::from("coordinator")),
        ("workers".into(), Json::Arr(workers)),
        ("draining".into(), Json::from(ctx.draining())),
    ])
    .render()
}

fn fleet_metrics_json(ctx: &FleetCtx) -> String {
    Json::Obj(vec![
        (
            "requests".into(),
            Json::from(ctx.requests.load(Ordering::Relaxed)),
        ),
        (
            "failovers".into(),
            Json::from(ctx.failovers.load(Ordering::Relaxed)),
        ),
        (
            "workers_alive".into(),
            Json::from(ctx.registry.live_count()),
        ),
        (
            "per_worker_routed".into(),
            Json::Arr(
                ctx.routed
                    .iter()
                    .map(|r| Json::from(r.load(Ordering::Relaxed)))
                    .collect(),
            ),
        ),
        (
            "breaker_states".into(),
            Json::Arr(
                (0..ctx.registry.len())
                    .map(|w| Json::from(ctx.registry.state(w).label()))
                    .collect(),
            ),
        ),
        (
            "breaker_trips".into(),
            Json::from(
                (0..ctx.registry.len())
                    .map(|w| ctx.registry.trips(w))
                    .sum::<u64>(),
            ),
        ),
        (
            "hedges_fired".into(),
            Json::from(ctx.hedges_fired.load(Ordering::Relaxed)),
        ),
        (
            "hedges_won".into(),
            Json::from(ctx.hedges_won.load(Ordering::Relaxed)),
        ),
        (
            "retries_spent".into(),
            Json::from(ctx.retries_spent.load(Ordering::Relaxed)),
        ),
    ])
    .render()
}

/// The ring hash of one run request — the same FNV the cache files are
/// named by, so routing follows data placement exactly.
fn key_hash_of(req: &RunRequest) -> Result<u64, ApiError> {
    let cluster = resolve_cluster(&req.cluster)?;
    let spec = req.spec(&cluster);
    let key = RunKey::new(
        &cluster.name,
        &spec.benchmark,
        &spec.class.to_string(),
        spec.nranks,
        &req.config,
    );
    Ok(fnv64(&key.canonical()))
}

/// Forward one `POST /v1/run` body to the key's worker: hedged across
/// the first two live preferences when enabled and warmed up, then the
/// full failover walk. Re-forwarding (and hedging) is safe: runs are
/// content-addressed, so the worst case is a recomputed (identical)
/// result.
fn forward_run(ctx: &Arc<FleetCtx>, body: &str) -> Result<WireResponse, ApiError> {
    let req = RunRequest::from_json(body)?;
    let hash = key_hash_of(&req)?;
    if let Some(resp) = hedged_forward(ctx, hash, body) {
        return Ok(resp);
    }
    forward_with_failover(ctx, hash, "POST", EndpointId::Run.path(), body)
}

/// Forward one `POST /v1/plan` body to the worker owning its canonical
/// request hash. Planner replies are pure functions of the request, so
/// hash routing lands a replay on the worker whose run cache already
/// holds the plan's job shapes — the second identical POST is
/// engine-free and byte-identical. Parsing here also rejects malformed
/// plans at the coordinator without spending a forward.
fn forward_plan(ctx: &Arc<FleetCtx>, body: &str) -> Result<WireResponse, ApiError> {
    let req = PlanRequest::from_json(body)?;
    let hash = fnv64(&req.to_json());
    forward_with_failover(ctx, hash, "POST", EndpointId::Plan.path(), body)
}

/// What one worker exchange produced, with breaker bookkeeping done.
enum Attempt {
    /// A trustworthy response to relay (may be 4xx/5xx from the worker
    /// itself — those are typed and valid).
    Success(WireResponse),
    /// The worker refused with `429`/`503` — it is healthy but loaded
    /// or draining; try elsewhere, relay the refusal as a last resort.
    Refusal(WireResponse),
    /// No usable response; `integrity` records whether bytes arrived
    /// but were corrupt (vs. no answer at all).
    Failure { integrity: bool },
}

/// One exchange with worker `w`, including the integrity gate and the
/// breaker/latency/routing bookkeeping.
fn attempt(ctx: &Arc<FleetCtx>, w: usize, method: &str, path: &str, body: &str) -> Attempt {
    let t = Instant::now();
    match one_shot(
        ctx.registry.addr(w),
        method,
        path,
        body,
        ctx.request_timeout,
    ) {
        Ok(resp) if matches!(resp.status, 429 | 503) => Attempt::Refusal(resp),
        Ok(resp) => {
            if vet_response(path, &resp).is_err() {
                // Framing was intact but the payload is not something
                // the daemon can have produced — same treatment as a
                // torn body: never relay, fail over.
                ctx.registry.mark_dead(w);
                return Attempt::Failure { integrity: true };
            }
            ctx.registry.mark_alive(w);
            ctx.routed[w].fetch_add(1, Ordering::Relaxed);
            ctx.record_latency(t.elapsed());
            Attempt::Success(resp)
        }
        Err(e) => {
            ctx.registry.mark_dead(w);
            Attempt::Failure {
                integrity: matches!(e, TransportError::Integrity(_)),
            }
        }
    }
}

/// Payload-level integrity: every daemon response body is JSON, and a
/// `200` run body must be the exact splice envelope
/// (`{\n  "result": …\n}\n`) the suite reassembly depends on. Garbage
/// that kept its framing dies here instead of reaching a client.
fn vet_response(path: &str, resp: &WireResponse) -> Result<(), String> {
    if parse_json(&resp.body).is_none() {
        return Err(format!(
            "status {} body is not valid JSON ({} bytes)",
            resp.status,
            resp.body.len()
        ));
    }
    if path == EndpointId::Run.path() && resp.status == 200 {
        let enveloped = resp
            .body
            .strip_prefix("{\n  \"result\": ")
            .and_then(|s| s.strip_suffix("\n}\n"))
            .is_some();
        if !enveloped {
            return Err("200 run body is not the result envelope".to_string());
        }
    }
    Ok(())
}

/// Hedge one routed `/v1/run`: send to the key's first live preference,
/// and if no answer lands within the observed p99 latency, race a
/// second attempt on the next preference — whichever trustworthy
/// response arrives first wins. Returns `None` when hedging is off,
/// cold, impossible (<2 live workers) or both attempts failed — the
/// caller then falls back to the sequential failover walk.
fn hedged_forward(ctx: &Arc<FleetCtx>, key_hash: u64, body: &str) -> Option<WireResponse> {
    if !ctx.hedge {
        return None;
    }
    let delay = ctx.hedge_delay()?;
    let live: Vec<usize> = ctx
        .ring
        .preference(key_hash)
        .into_iter()
        .filter(|&w| ctx.registry.is_alive(w))
        .collect();
    if live.len() < 2 {
        return None;
    }
    let (tx, rx) = mpsc::channel::<(bool, Attempt)>();
    let launch = |w: usize, is_hedge: bool| {
        let tx = tx.clone();
        let ctx = Arc::clone(ctx);
        let body = body.to_string();
        std::thread::spawn(move || {
            let out = attempt(&ctx, w, "POST", EndpointId::Run.path(), &body);
            let _ = tx.send((is_hedge, out));
        });
    };
    launch(live[0], false);
    let mut fired = false;
    let mut pending = 1u32;
    loop {
        let wait = if fired {
            // Both attempts in flight: wait out the slower one (the
            // per-attempt timeout bounds this).
            ctx.request_timeout + Duration::from_secs(5)
        } else {
            delay
        };
        match rx.recv_timeout(wait) {
            Ok((is_hedge, Attempt::Success(resp))) => {
                if is_hedge {
                    ctx.hedges_won.fetch_add(1, Ordering::Relaxed);
                }
                return Some(resp);
            }
            Ok((_, Attempt::Refusal(_) | Attempt::Failure { .. })) => {
                pending -= 1;
                if pending == 0 {
                    if fired {
                        // Both attempts answered without a usable
                        // response; the failover walk takes over (and
                        // will surface a refusal if that is all there
                        // is).
                        return None;
                    }
                    // The primary failed before the hedge timer ran
                    // out — fire the hedge now rather than sleep.
                    fired = true;
                    pending = 1;
                    ctx.hedges_fired.fetch_add(1, Ordering::Relaxed);
                    ctx.retries_spent.fetch_add(1, Ordering::Relaxed);
                    launch(live[1], true);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) if !fired => {
                fired = true;
                pending += 1;
                ctx.hedges_fired.fetch_add(1, Ordering::Relaxed);
                ctx.retries_spent.fetch_add(1, Ordering::Relaxed);
                launch(live[1], true);
            }
            Err(_) => return None,
        }
    }
}

/// Walk the key's full preference order with a bounded retry budget:
/// live workers first, then one last-resort shot at open-breaker
/// workers, sweeping the ring with decorrelated-jitter backoff until
/// the budget runs out. Terminal outcomes are always typed: a relayed
/// refusal, `502 bad_upstream` when every answer was corrupt, or `503
/// no_workers` when nobody answered at all.
fn forward_with_failover(
    ctx: &Arc<FleetCtx>,
    key_hash: u64,
    method: &str,
    path: &str,
    body: &str,
) -> Result<WireResponse, ApiError> {
    let order = ctx.ring.preference(key_hash);
    if order.is_empty() {
        return Err(ApiError::new(
            503,
            "no_workers",
            "no live worker reachable for this request",
        ));
    }
    // Enough budget for two full ring sweeps plus a tail of retries
    // against a flapping fabric — bounded so a request cannot spin
    // forever, generous enough that one live worker among corrupt
    // peers is always reached.
    let budget = 2 * order.len() + 6;
    let mut attempts = 0usize;
    let mut last_refusal: Option<WireResponse> = None;
    let mut saw_integrity = false;
    let mut sleep_ms = 0f64;
    'sweeps: for sweep in 0u32.. {
        if sweep > 0 {
            // Decorrelated jitter: each sweep sleeps a uniformly random
            // slice of [base, 3 × previous], capped — concurrent
            // requests failing over the same dead worker spread out
            // instead of thundering back in lockstep.
            let base = backoff(1).as_millis() as f64;
            let cap = backoff(u32::MAX).as_millis() as f64;
            let hi = (sleep_ms * 3.0).clamp(base, cap);
            sleep_ms = base + ctx.jitter_unit() * (hi - base);
            std::thread::sleep(Duration::from_micros((sleep_ms * 1e3) as u64));
        }
        // Live workers in ring order first, then one shot at the open
        // ones — a tripped worker may be back before the prober
        // notices.
        let pass: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&w| ctx.registry.is_alive(w))
            .chain(order.iter().copied().filter(|&w| !ctx.registry.is_alive(w)))
            .collect();
        for (i, w) in pass.into_iter().enumerate() {
            if attempts >= budget {
                break 'sweeps;
            }
            attempts += 1;
            if attempts > 1 {
                ctx.retries_spent.fetch_add(1, Ordering::Relaxed);
            }
            match attempt(ctx, w, method, path, body) {
                Attempt::Success(resp) => {
                    if i > 0 || sweep > 0 {
                        ctx.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(resp);
                }
                Attempt::Refusal(resp) => last_refusal = Some(resp),
                Attempt::Failure { integrity } => saw_integrity |= integrity,
            }
        }
    }
    match last_refusal {
        Some(resp) => Ok(resp),
        None if saw_integrity => Err(ApiError::bad_upstream(
            "every reachable worker answered with corrupt or truncated bytes",
        )),
        None => Err(ApiError::new(
            503,
            "no_workers",
            "no live worker reachable for this request",
        )),
    }
}

/// One suite grid point, pre-serialized for forwarding.
struct SuitePoint {
    /// `benchmark/class/nranks@cluster` — the failure label.
    label: String,
    key_hash: u64,
    body: String,
}

/// A routed point's outcome: the worker's run body, or the failure the
/// suite report blames.
type PointOutcome = Result<String, (String, String)>;

/// Shard a `POST /v1/suite` across the fleet and reassemble the exact
/// single-daemon response bytes: results in spec (Table 1) order, each
/// spliced verbatim from the owning worker's cache-encoded run payload.
fn fan_out_suite(ctx: &Arc<FleetCtx>, body: &str) -> Result<(u16, String), ApiError> {
    let req = SuiteRequest::from_json(body)?;
    let cluster = resolve_cluster(&req.cluster)?;
    let nranks = if req.nranks == 0 {
        cluster.node.cores()
    } else {
        req.nranks
    };
    let points: Vec<SuitePoint> = all_benchmarks()
        .iter()
        .filter(|b| match req.class {
            spechpc_kernels::common::config::WorkloadClass::Medium
            | spechpc_kernels::common::config::WorkloadClass::Large => {
                b.meta().supports_medium_large
            }
            _ => true,
        })
        .map(|b| {
            let run = RunRequest::new(b.meta().name, req.class, nranks)
                .with_cluster(req.cluster.clone())
                .with_config(req.config.clone());
            let label = format!(
                "{}/{}/{}@{}",
                b.meta().name,
                req.class,
                nranks,
                cluster.name
            );
            let key_hash = key_hash_of(&run).expect("cluster already resolved");
            SuitePoint {
                label,
                key_hash,
                body: run.to_json(),
            }
        })
        .collect();

    // Shard by ring ownership; per-worker queues, stolen when drained.
    let shards: Vec<Mutex<VecDeque<usize>>> = (0..ctx.registry.len())
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (i, p) in points.iter().enumerate() {
        let owner = ctx
            .ring
            .preference(p.key_hash)
            .into_iter()
            .find(|&w| ctx.registry.is_alive(w))
            .unwrap_or(0);
        shards[owner]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(i);
    }
    let outcomes: Vec<Mutex<Option<PointOutcome>>> =
        points.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..ctx.registry.len() {
            let shards = &shards;
            let outcomes = &outcomes;
            let points = &points;
            scope.spawn(move || loop {
                // Own shard first, then steal from the longest queue —
                // a dead or slow worker's backlog drains through its
                // peers instead of stalling the suite. The own-queue
                // guard must be dropped before scanning the others: the
                // scan re-locks every shard, including our own.
                let own = shards[w]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                let claimed = match own {
                    Some(i) => Some(i),
                    None => shards
                        .iter()
                        .max_by_key(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
                        .and_then(|s| s.lock().unwrap_or_else(|e| e.into_inner()).pop_back()),
                };
                let Some(i) = claimed else { break };
                let p = &points[i];
                let outcome = match forward_with_failover(
                    ctx,
                    p.key_hash,
                    "POST",
                    EndpointId::Run.path(),
                    &p.body,
                ) {
                    Ok(resp) if resp.status == 200 => Ok(resp.body),
                    Ok(resp) => Err(ApiError::from_json(&resp.body)
                        .map(|e| (e.code, e.message))
                        .unwrap_or_else(|| {
                            (
                                "bad_upstream".to_string(),
                                format!(
                                    "worker sent {} with an undecodable error body",
                                    resp.status
                                ),
                            )
                        })),
                    Err(e) => Err((e.code, e.message)),
                };
                *outcomes[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            });
        }
    });

    // Reassemble the exact SuiteResponse byte format.
    let mut results: Vec<&str> = Vec::new();
    let mut failures: Vec<(&str, String, String)> = Vec::new();
    let collected: Vec<PointOutcome> = outcomes
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| {
                    Err((
                        "internal".to_string(),
                        "shard worker exited without depositing a result".to_string(),
                    ))
                })
        })
        .collect();
    for (i, outcome) in collected.iter().enumerate() {
        match outcome {
            Ok(run_body) => {
                // A run body is `{\n  "result": <encoded>\n}\n`; splice
                // the cache-encoded result back out verbatim.
                let inner = run_body
                    .strip_prefix("{\n  \"result\": ")
                    .and_then(|s| s.strip_suffix("\n}\n"));
                match inner {
                    Some(encoded) => results.push(encoded),
                    None => failures.push((
                        &points[i].label,
                        "bad_upstream".to_string(),
                        "worker sent an unparseable run payload".to_string(),
                    )),
                }
            }
            Err((code, message)) => {
                failures.push((&points[i].label, code.clone(), message.clone()))
            }
        }
    }
    let complete = failures.is_empty();
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"cluster\": {},\n", quote(&cluster.name)));
    s.push_str(&format!(
        "  \"class\": {},\n",
        quote(&req.class.to_string())
    ));
    s.push_str(&format!("  \"complete\": {complete},\n"));
    s.push_str("  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(r);
    }
    s.push_str("],\n  \"failures\": [");
    for (i, (label, code, message)) in failures.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(&format!(
            "    {{ \"label\": {}, \"error\": {}, \"message\": {} }}",
            quote(label),
            quote(code),
            quote(message)
        ));
    }
    s.push_str("]\n}\n");
    Ok((if complete { 200 } else { 207 }, s))
}

// ---------------------------------------------------------------------------
// Peer cache fetch (worker → worker)
// ---------------------------------------------------------------------------

/// How long a peer-cache lookup may take before the worker gives up and
/// simulates locally — a peer fetch must never cost more than a small
/// fraction of the run it would save.
const PEER_FETCH_TIMEOUT: Duration = Duration::from_secs(2);

/// Build the executor's peer-fetch hook over a fleet's peer list: on a
/// local cache miss, ask each peer's `GET /v1/cache/{hash}` and verify
/// the returned entry against the full canonical key
/// ([`cache::decode_entry`] checks schema and key, so a hash collision
/// or stale peer can never smuggle in a wrong result). Unreachable
/// peers are skipped silently — a miss just means simulating locally.
pub fn peer_fetcher(peers: Vec<String>) -> PeerFetch {
    Arc::new(move |key: &RunKey| {
        let path = format!("{}{}", EndpointId::CacheEntry.path(), key.hash_hex());
        let canonical = key.canonical();
        for addr in &peers {
            if let Ok(resp) = one_shot(addr, "GET", &path, "", PEER_FETCH_TIMEOUT) {
                if resp.status == 200 {
                    if let Some(result) = cache::decode_entry(&resp.body, &canonical) {
                        return Some(result);
                    }
                }
            }
        }
        None
    })
}

// ---------------------------------------------------------------------------
// Load generator (`spechpc loadgen`)
// ---------------------------------------------------------------------------

/// One synthetic-load campaign: `clients` keep-alive connections each
/// sending `requests_per_client` identical requests.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LoadgenConfig {
    /// Target address (worker or coordinator).
    pub addr: String,
    /// Concurrent keep-alive client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Request method + path + body.
    pub method: String,
    pub path: String,
    pub body: String,
    /// Per-request timeout in seconds.
    pub timeout_s: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8722".to_string(),
            clients: 32,
            requests_per_client: 64,
            method: "POST".to_string(),
            path: "/v1/run".to_string(),
            body: String::new(),
            timeout_s: 60.0,
        }
    }
}

impl LoadgenConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self
    }

    pub fn with_requests_per_client(mut self, requests: usize) -> Self {
        self.requests_per_client = requests.max(1);
        self
    }

    pub fn with_request(
        mut self,
        method: impl Into<String>,
        path: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        self.method = method.into();
        self.path = path.into();
        self.body = body.into();
        self
    }

    pub fn with_timeout_s(mut self, secs: f64) -> Self {
        self.timeout_s = secs.max(0.1);
        self
    }
}

/// What a loadgen campaign measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    pub sent: usize,
    pub ok: usize,
    pub non_2xx: usize,
    pub transport_errors: usize,
    pub elapsed_s: f64,
    pub requests_per_s: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

impl LoadgenReport {
    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "{} requests in {:.2} s → {:.0} req/s · ok {} · non-2xx {} · transport errors {} · \
             p50 {:.2} ms · p99 {:.2} ms",
            self.sent,
            self.elapsed_s,
            self.requests_per_s,
            self.ok,
            self.non_2xx,
            self.transport_errors,
            self.p50_ms,
            self.p99_ms
        )
    }
}

/// `sorted` percentile by nearest-rank on an ascending slice.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] * 1e3
}

/// Run one synthetic-load campaign: every client opens one keep-alive
/// connection and pipelines `requests_per_client` request/response
/// exchanges, reconnecting (and counting a transport error) if the
/// server closes it. Latency is measured per exchange.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let timeout = Duration::from_secs_f64(cfg.timeout_s);
    let t0 = Instant::now();
    let mut per_client: Vec<(Vec<f64>, usize, usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.clients);
        for _ in 0..cfg.clients {
            handles.push(scope.spawn(|| {
                let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                let (mut ok, mut non_2xx, mut transport) = (0usize, 0usize, 0usize);
                let mut conn: Option<TcpStream> = None;
                for _ in 0..cfg.requests_per_client {
                    let stream = match conn.take() {
                        Some(s) => s,
                        None => {
                            match resolve_addr(&cfg.addr)
                                .and_then(|a| TcpStream::connect_timeout(&a, timeout))
                            {
                                Ok(s) => {
                                    let _ = s.set_nodelay(true);
                                    let _ = s.set_read_timeout(Some(timeout));
                                    let _ = s.set_write_timeout(Some(timeout));
                                    s
                                }
                                Err(_) => {
                                    transport += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    let mut stream = stream;
                    let t = Instant::now();
                    let exchange =
                        write_request(&mut stream, &cfg.method, &cfg.path, &cfg.body, true)
                            .map_err(TransportError::Io)
                            .and_then(|()| read_response(&mut stream));
                    match exchange {
                        Ok(resp) => {
                            latencies.push(t.elapsed().as_secs_f64());
                            if (200..300).contains(&resp.status) {
                                ok += 1;
                            } else {
                                non_2xx += 1;
                            }
                            conn = Some(stream);
                        }
                        Err(_) => transport += 1,
                    }
                }
                (latencies, ok, non_2xx, transport)
            }));
        }
        for h in handles {
            if let Ok(r) = h.join() {
                per_client.push(r);
            }
        }
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = Vec::new();
    let (mut ok, mut non_2xx, mut transport_errors) = (0, 0, 0);
    for (lat, o, n, t) in per_client {
        latencies.extend(lat);
        ok += o;
        non_2xx += n;
        transport_errors += t;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let sent = cfg.clients * cfg.requests_per_client;
    LoadgenReport {
        sent,
        ok,
        non_2xx,
        transport_errors,
        elapsed_s,
        requests_per_s: if elapsed_s > 0.0 {
            (ok + non_2xx) as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_kernels::common::config::WorkloadClass;

    #[test]
    fn ring_routing_is_deterministic_and_covers_every_worker() {
        let ring = HashRing::new(3, 64);
        for key in [0u64, 1, u64::MAX, 0xdeadbeef, fnv64("v3|lbm|ClusterA")] {
            let order = ring.preference(key);
            assert_eq!(order.len(), 3, "every worker appears once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(order, ring.preference(key), "routing is deterministic");
        }
    }

    #[test]
    fn ring_spreads_keys_and_mostly_survives_resize() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        let keys: Vec<u64> = (0..1000).map(|i| fnv64(&format!("key{i}"))).collect();
        for &k in &keys {
            counts[ring.preference(k)[0]] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                (100..500).contains(&c),
                "worker {w} owns {c} of 1000 keys — ring is badly skewed"
            );
        }
        // Consistent hashing's point: adding a worker remaps only a
        // fraction of the keyspace.
        let bigger = HashRing::new(5, 64);
        let moved = keys
            .iter()
            .filter(|&&k| {
                let old = ring.preference(k)[0];
                let new = bigger.preference(k)[0];
                new != old && new != 4
            })
            .count();
        assert!(
            moved < 100,
            "{moved} of 1000 keys moved between surviving workers"
        );
    }

    #[test]
    fn key_hash_matches_the_cache_file_name() {
        let req = RunRequest::new("lbm", WorkloadClass::Tiny, 4);
        let cluster = resolve_cluster(&req.cluster).unwrap();
        let spec = req.spec(&cluster);
        let key = RunKey::new(
            &cluster.name,
            &spec.benchmark,
            &spec.class.to_string(),
            spec.nranks,
            &req.config,
        );
        let hash = key_hash_of(&req).unwrap();
        assert_eq!(
            format!("{hash:016x}"),
            key.hash_hex(),
            "ring placement must follow cache placement"
        );
    }

    #[test]
    fn buffered_parser_frames_requests_and_keep_alive() {
        let raw = b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyGET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (method, path, body, keep, consumed) = parse_buffered(raw).unwrap();
        assert_eq!((method.as_str(), path.as_str()), ("POST", "/v1/run"));
        assert_eq!(body, "body");
        assert!(keep, "HTTP/1.1 defaults to keep-alive");
        let rest = &raw[consumed..];
        let (method, path, body, keep, _) = parse_buffered(rest).unwrap();
        assert_eq!((method.as_str(), path.as_str()), ("GET", "/v1/health"));
        assert!(body.is_empty());
        assert!(!keep, "explicit close wins");
        assert!(
            parse_buffered(&raw[..10]).is_none(),
            "partials stay partial"
        );
    }

    #[test]
    fn percentiles_and_backoff_are_sane() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64 / 1e3).collect();
        assert!((percentile_ms(&sorted, 50.0) - 50.0).abs() < 1.5);
        assert!((percentile_ms(&sorted, 99.0) - 99.0).abs() < 1.5);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(backoff(1), Duration::from_millis(10));
        assert_eq!(backoff(4), Duration::from_millis(80));
        assert_eq!(backoff(32), Duration::from_millis(640));
    }

    #[test]
    fn registry_marks_unreachable_workers_dead() {
        // A bound-then-dropped listener yields a connection refusal.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let reg = WorkerRegistry::new(vec![addr]);
        assert!(reg.is_alive(0), "workers start presumed-live");
        assert!(!reg.probe(0, Duration::from_millis(200)));
        assert!(!reg.is_alive(0));
        assert_eq!(reg.live_count(), 0);
        reg.mark_alive(0);
        assert_eq!(reg.live_count(), 1);
    }

    #[test]
    fn breaker_trips_after_threshold_and_reopens_from_half_open() {
        let reg = WorkerRegistry::new(vec!["127.0.0.1:1".to_string()]);
        assert_eq!(reg.state(0), BreakerState::Closed);
        // Closed absorbs BREAKER_THRESHOLD - 1 consecutive failures…
        for _ in 0..BREAKER_THRESHOLD - 1 {
            reg.mark_dead(0);
            assert!(reg.is_alive(0), "under threshold stays routable");
        }
        // …and the threshold-th failure trips it open.
        reg.mark_dead(0);
        assert_eq!(reg.state(0), BreakerState::Open);
        assert!(!reg.is_alive(0));
        assert_eq!(reg.trips(0), 1);
        // Extra failures while open neither re-trip nor reset.
        reg.mark_dead(0);
        assert_eq!(reg.trips(0), 1);
        // A forwarding success closes the breaker and resets the
        // failure streak: the next single failure must not trip.
        reg.mark_alive(0);
        assert_eq!(reg.state(0), BreakerState::Closed);
        reg.mark_dead(0);
        assert!(reg.is_alive(0), "streak was reset on success");
        // Trip again, then simulate probe-driven recovery: the breaker
        // goes half-open (routable, on probation) and a single failure
        // re-opens immediately.
        reg.mark_dead(0);
        reg.mark_dead(0);
        assert_eq!(reg.state(0), BreakerState::Open);
        assert_eq!(reg.trips(0), 2);
        reg.breakers[0].set(BreakerState::HalfOpen);
        assert!(reg.is_alive(0));
        reg.mark_dead(0);
        assert_eq!(reg.state(0), BreakerState::Open);
        assert_eq!(reg.trips(0), 3, "half-open failure re-trips at once");
    }

    #[test]
    fn probe_success_only_half_opens_a_tripped_breaker() {
        // A live dummy HTTP server that always answers 200 /v1/health.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { break };
                let mut buf = [0u8; 1024];
                let _ = s.read(&mut buf);
                let body = "{\"status\": \"ok\"}\n";
                let _ = s.write_all(
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                        body.len(),
                        body
                    )
                    .as_bytes(),
                );
            }
        });
        let reg = WorkerRegistry::new(vec![addr]);
        for _ in 0..BREAKER_THRESHOLD {
            reg.mark_dead(0);
        }
        assert_eq!(reg.state(0), BreakerState::Open);
        assert!(reg.probe(0, Duration::from_secs(2)));
        assert_eq!(
            reg.state(0),
            BreakerState::HalfOpen,
            "a health answer is probation, not a clean bill — only real \
             forwarded work closes the breaker"
        );
        assert!(reg.is_alive(0));
        reg.mark_alive(0);
        assert_eq!(reg.state(0), BreakerState::Closed);
    }

    #[test]
    fn read_response_types_torn_and_corrupt_bytes() {
        // A server scripted to emit `raw` then close.
        let serve_raw = |raw: &'static [u8]| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                if let Some(Ok(mut s)) = listener.incoming().next() {
                    let mut buf = [0u8; 1024];
                    let _ = s.read(&mut buf);
                    let _ = s.write_all(raw);
                }
            });
            one_shot(&addr, "GET", "/", "", Duration::from_secs(2))
        };
        let torn = serve_raw(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nonly a few");
        assert!(
            matches!(&torn, Err(TransportError::Integrity(m)) if m.contains("truncated")),
            "{torn:?}"
        );
        let garbage = serve_raw(b"\xff\xfe\xfdgarbage bytes, no HTTP here\r\n\r\n");
        assert!(
            matches!(&garbage, Err(TransportError::Integrity(m)) if m.contains("status line")),
            "{garbage:?}"
        );
        let bad_len = serve_raw(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n");
        assert!(
            matches!(&bad_len, Err(TransportError::Integrity(m)) if m.contains("Content-Length")),
            "{bad_len:?}"
        );
        let half_headers = serve_raw(b"HTTP/1.1 200 OK\r\nContent-Le");
        assert!(
            matches!(&half_headers, Err(TransportError::Integrity(m)) if m.contains("headers")),
            "{half_headers:?}"
        );
        let clean = serve_raw(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(clean.unwrap().body, "ok");
    }

    #[test]
    fn vet_response_rejects_json_shaped_garbage() {
        let ok = WireResponse {
            status: 200,
            retry_after: None,
            body: "{\n  \"result\": {\"x\": 1}\n}\n".to_string(),
        };
        assert!(vet_response("/v1/run", &ok).is_ok());
        let not_json = WireResponse {
            status: 200,
            retry_after: None,
            body: "\u{18}\u{7f}!!not json!!".to_string(),
        };
        assert!(vet_response("/v1/run", &not_json).is_err());
        assert!(vet_response("/v1/health", &not_json).is_err());
        let wrong_envelope = WireResponse {
            status: 200,
            retry_after: None,
            body: "{\"result\": 1}".to_string(),
        };
        assert!(
            vet_response("/v1/run", &wrong_envelope).is_err(),
            "valid JSON that is not the splice envelope must not reach the splicer"
        );
        assert!(
            vet_response("/v1/health", &wrong_envelope).is_ok(),
            "the envelope rule only binds run responses"
        );
    }
}
