//! The simulation runner: one benchmark × one cluster × one process
//! count → runtime, counters, MPI breakdown, power and energy.

use spechpc_analysis::counters::CounterSample;
use spechpc_kernels::common::benchmark::Benchmark;
use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::common::model::NodeModel;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_power::energy::{energy_to_solution, EnergyBreakdown};
use spechpc_power::rapl::{JobPower, PowerState, RaplModel};
use spechpc_simmpi::engine::{Engine, Prepass, SimConfig, SimError};
use spechpc_simmpi::faults::FaultPlan;
use spechpc_simmpi::netmodel::NetModel;
use spechpc_simmpi::profile::Profile;
use spechpc_simmpi::program::Program;
use spechpc_simmpi::trace::{Breakdown, Timeline};

/// Busy fraction of a core spinning inside an MPI call (Intel MPI
/// busy-waits; §4.2.2 observes that minisweep's MPI waiting still draws
/// power, unlike lbm's memory-stalled slow execution).
const MPI_SPIN_UTILIZATION: f64 = 0.7;

/// Runner configuration, mirroring the paper's §3 methodology.
///
/// Marked `#[non_exhaustive]`: construct with [`RunConfig::default`]
/// plus the `with_*` builders, so new run-rule knobs stop being
/// breaking changes for downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunConfig {
    /// Warm-up steps before the measured region ("at least two warm-up
    /// time steps, including global synchronisation").
    pub warmup_steps: usize,
    /// Simulated measured steps (extrapolated to the full workload).
    pub measured_steps: usize,
    /// Repetitions for min/max/avg statistics.
    pub repetitions: usize,
    /// Record the full event timeline of the measured region. Off by
    /// default (timelines dominate memory on large sweeps); the Fig.-2
    /// inset and CSV-export paths request tracing explicitly.
    pub trace: bool,
    /// Seeded fault-injection plan applied to the simulated runs
    /// ([`FaultPlan::none()`] by default — the engine's zero-cost off
    /// path). The warm-up and full runs share the plan, so the
    /// deterministic warm-prefix subtraction still applies; a crash
    /// inside the warm-up region fails the run like any other crash.
    pub faults: FaultPlan,
    /// Partition threads for the engine's parallel (PDES) scheduler
    /// ([`SimConfig::threads`]). `1` (the default) runs the sequential
    /// engine; results are bit-identical at every value, so this is a
    /// pure throughput knob and is excluded from the result cache key.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_steps: 2,
            measured_steps: 3,
            repetitions: 3,
            trace: false,
            faults: FaultPlan::none(),
            threads: 1,
        }
    }
}

impl RunConfig {
    /// Builder: warm-up steps before the measured region.
    pub fn with_warmup_steps(mut self, steps: usize) -> Self {
        self.warmup_steps = steps;
        self
    }

    /// Builder: simulated measured steps.
    pub fn with_measured_steps(mut self, steps: usize) -> Self {
        self.measured_steps = steps;
        self
    }

    /// Builder: repetitions for min/max/avg statistics.
    pub fn with_repetitions(mut self, reps: usize) -> Self {
        self.repetitions = reps;
        self
    }

    /// Builder: record the full event timeline of the measured region.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: seeded fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: engine partition threads (see [`RunConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The outcome of one simulated benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub benchmark: String,
    pub cluster: String,
    pub class: String,
    pub nranks: usize,
    pub nodes_used: usize,
    /// Wall-clock seconds per time step (mean over repetitions).
    pub step_seconds: f64,
    /// Min/max step seconds over repetitions.
    pub step_seconds_min: f64,
    pub step_seconds_max: f64,
    /// Extrapolated full-workload runtime (steps × step time).
    pub runtime_s: f64,
    /// Counter sample of the *full* workload.
    pub counters: CounterSample,
    /// MPI/compute breakdown of the measured region.
    pub breakdown: Breakdown,
    /// Power while running.
    pub power: JobPower,
    /// Energy of the full workload.
    pub energy: EnergyBreakdown,
    /// Timeline of the measured region (empty unless tracing enabled).
    pub timeline: Timeline,
    /// Observability profile of the measured region (warm-up prefix
    /// subtracted out) — the Fig.-2 ITAC analog, available without
    /// tracing.
    pub profile: Profile,
}

impl RunResult {
    /// Per-node memory bandwidth in GB/s (Fig. 5 b, e).
    pub fn mem_bandwidth_per_node(&self) -> f64 {
        self.counters.mem_bandwidth() / self.nodes_used as f64
    }

    /// Performance in Gflop/s.
    pub fn gflops(&self) -> f64 {
        self.counters.dp_gflops()
    }
}

/// Deterministic per-(run, repetition) runtime jitter of ±1 %,
/// modelling the system noise behind the paper's min/max bars.
fn jitter(benchmark: &str, nranks: usize, rep: usize) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in benchmark
        .bytes()
        .chain(nranks.to_le_bytes())
        .chain(rep.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    1.0 + ((h % 2001) as f64 / 1000.0 - 1.0) * 0.01
}

/// The simulation runner.
pub struct SimRunner {
    pub config: RunConfig,
    /// Optional counter of engine runs that *reused* a template-derived
    /// [`Prepass`] instead of re-walking their concatenated programs
    /// (two per [`SimRunner::run`]: the warm-up and the full run). The
    /// executor plumbs its metrics counter in here.
    prepass_reuses: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
}

impl SimRunner {
    pub fn new(config: RunConfig) -> Self {
        SimRunner {
            config,
            prepass_reuses: None,
        }
    }

    /// Builder: count prepass reuses into `counter` (see the
    /// `prepass_reuses` field).
    pub fn with_prepass_counter(
        mut self,
        counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
    ) -> Self {
        self.prepass_reuses = Some(counter);
        self
    }

    /// Run `benchmark` at `class` scale with `nranks` compactly pinned
    /// ranks on `cluster`.
    pub fn run(
        &self,
        cluster: &ClusterSpec,
        benchmark: &dyn Benchmark,
        class: WorkloadClass,
        nranks: usize,
    ) -> Result<RunResult, SimError> {
        self.run_cancellable(cluster, benchmark, class, nranks, None)
    }

    /// [`SimRunner::run`] with an optional cooperative cancellation
    /// token: when another thread sets the flag, the underlying engine
    /// aborts with [`SimError::Cancelled`] at the next op boundary.
    /// The executor's per-run timeout uses this to reclaim workers.
    pub fn run_cancellable(
        &self,
        cluster: &ClusterSpec,
        benchmark: &dyn Benchmark,
        class: WorkloadClass,
        nranks: usize,
        cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) -> Result<RunResult, SimError> {
        assert!(nranks > 0, "need at least one rank");
        let sig = benchmark.signature(class);
        let model = NodeModel::new(cluster, nranks);
        let penalties = benchmark.penalties(class, nranks);
        let ct = model.compute_times(&sig, &penalties);
        let step_progs = benchmark.step_programs(class, &ct);
        assert_eq!(step_progs.len(), nranks);

        // Warm-up region: W steps + global synchronization.
        let warm: Vec<Program> = step_progs
            .iter()
            .map(|p| {
                let mut prog = Program::new();
                for _ in 0..self.config.warmup_steps {
                    prog.ops.extend_from_slice(&p.ops);
                }
                prog.push(spechpc_simmpi::program::Op::Barrier);
                prog
            })
            .collect();
        // Full program: warm-up + measured steps.
        let full: Vec<Program> = warm
            .iter()
            .zip(&step_progs)
            .map(|(w, p)| {
                let mut prog = w.clone();
                for _ in 0..self.config.measured_steps {
                    prog.ops.extend_from_slice(&p.ops);
                }
                prog
            })
            .collect();

        // Both simulated programs are concatenations of the same step
        // template, so one fused validate/range/count walk over the
        // template serves them both: the warm-up run (`W × step +
        // Barrier` — collectives post no point-to-point requests) is
        // described by `scaled(W)`, the full run by `scaled(W + M)`.
        // Suite sweeps repeat this per grid point, saving two
        // program-length walks per point.
        let step_prepass = Prepass::analyze(&step_progs)?;
        let warm_prepass = step_prepass.scaled(self.config.warmup_steps);
        let full_prepass =
            step_prepass.scaled(self.config.warmup_steps + self.config.measured_steps);
        if let Some(counter) = &self.prepass_reuses {
            counter.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        }

        let sim_cfg = SimConfig::default()
            .with_trace(self.config.trace)
            .with_faults(self.config.faults.clone())
            .with_threads(self.config.threads);
        let net_warm = NetModel::compact(cluster, nranks);
        let warm_cfg = SimConfig::default()
            .with_faults(self.config.faults.clone())
            .with_threads(self.config.threads);
        let mut warm_engine = Engine::new(warm_cfg, net_warm, warm);
        if let Some(c) = &cancel {
            warm_engine = warm_engine.with_cancel(c.clone());
        }
        let warm_result = warm_engine.run_prevalidated(&warm_prepass)?;
        let net_full = NetModel::compact(cluster, nranks);
        let mut full_engine = Engine::new(sim_cfg, net_full, full);
        if let Some(c) = &cancel {
            full_engine = full_engine.with_cancel(c.clone());
        }
        let full_result = full_engine.run_prevalidated(&full_prepass)?;

        let measured = (full_result.makespan - warm_result.makespan).max(1e-12);
        let base_step = measured / self.config.measured_steps as f64;

        // Repetition statistics via the deterministic jitter model.
        let name = benchmark.meta().name;
        let steps: Vec<f64> = (0..self.config.repetitions.max(1))
            .map(|rep| base_step * jitter(name, nranks, rep))
            .collect();
        let step_mean = steps.iter().sum::<f64>() / steps.len() as f64;
        let step_min = steps.iter().copied().fold(f64::INFINITY, f64::min);
        let step_max = steps.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let runtime = step_mean * sig.steps as f64;

        // Counters: per-step resources × steps; runtime from the sim.
        let counters = CounterSample {
            runtime_s: runtime,
            dp_flops: sig.flops * sig.steps as f64,
            dp_avx_flops: sig.flops * sig.simd_fraction * sig.steps as f64,
            mem_bytes: ct.effective_mem_bytes * sig.steps as f64,
            l3_bytes: ct.effective_l3_bytes * sig.steps as f64,
            l2_bytes: ct.effective_l2_bytes * sig.steps as f64,
        };

        // Breakdown of the measured region: the warm-up prefix of the
        // full run is identical (deterministic) to the warm-only run, so
        // its per-kind times subtract out exactly.
        let breakdown = subtract_breakdown(&full_result.breakdown(), &warm_result.breakdown());
        // Same subtraction for the online profile: isolate the measured
        // region's phase split, histograms and communication matrix.
        let profile = full_result.profile.saturating_sub(&warm_result.profile);

        // Power: compute-phase utilization from the node model, MPI
        // phases busy-wait at MPI_SPIN_UTILIZATION.
        let pinning = model.pinning().clone();
        let mut util = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let t_comp = ct.per_rank[r].min(step_mean);
            let t_mpi = (step_mean - t_comp).max(0.0);
            let u =
                (t_comp * ct.utilization[r] + t_mpi * MPI_SPIN_UTILIZATION) / step_mean.max(1e-30);
            util.push(u.clamp(0.0, 1.0));
        }
        let dram = model.dram_utilization(&ct, step_mean);
        let rapl = RaplModel::new(cluster);
        let state = PowerState {
            heat: sig.heat,
            utilization: util,
            dram_utilization: dram,
        };
        let power = rapl.job_power(&pinning, &state);
        let energy = energy_to_solution(power, runtime);

        Ok(RunResult {
            benchmark: name.to_string(),
            cluster: cluster.name.clone(),
            class: class.to_string(),
            nranks,
            nodes_used: pinning.nodes_used(),
            step_seconds: step_mean,
            step_seconds_min: step_min,
            step_seconds_max: step_max,
            runtime_s: runtime,
            counters,
            breakdown,
            power,
            energy,
            timeline: full_result.timeline,
            profile,
        })
    }

    /// Strong-scaling sweep over process counts.
    pub fn sweep(
        &self,
        cluster: &ClusterSpec,
        benchmark: &dyn Benchmark,
        class: WorkloadClass,
        counts: &[usize],
    ) -> Result<Vec<RunResult>, SimError> {
        counts
            .iter()
            .map(|&n| self.run(cluster, benchmark, class, n))
            .collect()
    }
}

/// Per-kind difference `full − warm` (both from deterministic runs
/// sharing the warm-up prefix).
fn subtract_breakdown(full: &Breakdown, warm: &Breakdown) -> Breakdown {
    let mut b = Breakdown::default();
    for (kind, secs) in &full.seconds {
        let w = warm.seconds.get(kind).copied().unwrap_or(0.0);
        let d = (secs - w).max(0.0);
        if d > 0.0 {
            b.seconds.insert(*kind, d);
            b.total += d;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_kernels::registry::benchmark_by_name;
    use spechpc_machine::presets;

    fn runner() -> SimRunner {
        SimRunner::new(RunConfig::default())
    }

    #[test]
    fn tealeaf_tiny_runs_and_saturates() {
        let cluster = presets::cluster_a();
        let b = benchmark_by_name("tealeaf").unwrap();
        let r = runner();
        let t1 = r.run(&cluster, &*b, WorkloadClass::Tiny, 1).unwrap();
        let t6 = r.run(&cluster, &*b, WorkloadClass::Tiny, 6).unwrap();
        let t18 = r.run(&cluster, &*b, WorkloadClass::Tiny, 18).unwrap();
        let s6 = t1.step_seconds / t6.step_seconds;
        let s18 = t1.step_seconds / t18.step_seconds;
        assert!(s6 > 3.0, "speedup(6) = {s6}");
        assert!(s18 < 1.6 * s6, "no saturation: {s6} vs {s18}");
        // Memory-bound: the node draws a large share of the domain
        // bandwidth.
        let bw = t18.counters.mem_bandwidth();
        assert!(bw > 50.0, "memory bandwidth {bw} GB/s");
    }

    #[test]
    fn results_are_deterministic() {
        let cluster = presets::cluster_b();
        let b = benchmark_by_name("cloverleaf").unwrap();
        let r = runner();
        let a = r.run(&cluster, &*b, WorkloadClass::Tiny, 26).unwrap();
        let c = r.run(&cluster, &*b, WorkloadClass::Tiny, 26).unwrap();
        assert_eq!(a.step_seconds, c.step_seconds);
        assert_eq!(a.energy.total_j(), c.energy.total_j());
    }

    #[test]
    fn jitter_produces_min_max_spread() {
        let cluster = presets::cluster_a();
        let b = benchmark_by_name("lbm").unwrap();
        let r = runner();
        let res = r.run(&cluster, &*b, WorkloadClass::Tiny, 8).unwrap();
        assert!(res.step_seconds_min <= res.step_seconds);
        assert!(res.step_seconds_max >= res.step_seconds);
        assert!(res.step_seconds_max > res.step_seconds_min);
    }

    #[test]
    fn minisweep_59_collapses_with_recv_domination() {
        // The paper's §4.1.5 headline: 58 → 59 processes drops
        // performance by ~75 %, with MPI_Recv dominating.
        let cluster = presets::cluster_a();
        let b = benchmark_by_name("minisweep").unwrap();
        let r = runner();
        let t58 = r.run(&cluster, &*b, WorkloadClass::Tiny, 58).unwrap();
        let t59 = r.run(&cluster, &*b, WorkloadClass::Tiny, 59).unwrap();
        assert!(
            t59.step_seconds > 1.5 * t58.step_seconds,
            "no serialization collapse: {} vs {}",
            t58.step_seconds,
            t59.step_seconds
        );
        use spechpc_simmpi::trace::EventKind;
        assert_eq!(t59.breakdown.dominant_mpi(), Some(EventKind::Recv));
        assert!(
            t59.breakdown.fraction(EventKind::Recv) > 0.4,
            "Recv fraction {}",
            t59.breakdown.fraction(EventKind::Recv)
        );
    }

    #[test]
    fn power_between_baseline_and_tdp() {
        let cluster = presets::cluster_a();
        let r = runner();
        for name in ["soma", "sph-exa", "pot3d"] {
            let b = benchmark_by_name(name).unwrap();
            let res = r.run(&cluster, &*b, WorkloadClass::Tiny, 72).unwrap();
            let rapl = RaplModel::new(&cluster);
            assert!(res.power.package_w > rapl.baseline_power(1));
            assert!(res.power.package_w <= rapl.tdp(1) + 1e-9);
        }
    }

    #[test]
    fn multi_node_sweep_spans_nodes() {
        let cluster = presets::cluster_a();
        let b = benchmark_by_name("weather").unwrap();
        let r = SimRunner::new(RunConfig::default().with_trace(false));
        let res = r
            .sweep(&cluster, &*b, WorkloadClass::Small, &[72, 144, 288])
            .unwrap();
        assert_eq!(res[0].nodes_used, 1);
        assert_eq!(res[1].nodes_used, 2);
        assert_eq!(res[2].nodes_used, 4);
        // Scaling reduces the step time.
        assert!(res[2].step_seconds < res[0].step_seconds);
    }
}
