//! Rendering of the observability layer: profile and executor-metrics
//! tables (for the CLI) and their CSV artifacts under `results/`.
//!
//! The [`Profile`] is the simulator's ITAC analog (per-rank MPI time
//! breakdowns, Fig. 2 of the paper); [`ExecMetrics`] is its
//! LIKWID-counter analog for the execution layer itself. This module
//! turns both into the aligned text tables of [`report`](crate::report)
//! and into CSV files, so `cli profile` and `--metrics` share one code
//! path.

use std::io;
use std::path::{Path, PathBuf};

use spechpc_simmpi::profile::{Profile, Regime};

use crate::exec::ExecMetrics;
use crate::report::{fmt, pct, ReportError, Table};

/// Per-rank phase-split table — the Fig.-2-style MPI time breakdown.
/// Ends with an all-ranks TOTAL row.
pub fn profile_rank_table(title: &str, p: &Profile) -> Result<Table, ReportError> {
    let mut t = Table::new(
        title,
        &[
            "rank",
            "compute",
            "eager",
            "rdv stall",
            "recv wait",
            "coll wait",
            "fault stall",
            "comm %",
        ],
    );
    for (rank, ph) in p.per_rank.iter().enumerate() {
        t.row(vec![
            rank.to_string(),
            fmt(ph.compute_s),
            fmt(ph.eager_send_s),
            fmt(ph.rendezvous_stall_s),
            fmt(ph.recv_wait_s),
            fmt(ph.collective_wait_s),
            fmt(ph.fault_stall_s),
            pct(ph.comm_fraction() * 100.0),
        ])?;
    }
    let tot = p.totals();
    t.row(vec![
        "TOTAL".to_string(),
        fmt(tot.compute_s),
        fmt(tot.eager_send_s),
        fmt(tot.rendezvous_stall_s),
        fmt(tot.recv_wait_s),
        fmt(tot.collective_wait_s),
        fmt(tot.fault_stall_s),
        pct(tot.comm_fraction() * 100.0),
    ])?;
    Ok(t)
}

/// Message-size histogram table, both protocol regimes, non-empty
/// buckets only.
pub fn profile_histogram_table(title: &str, p: &Profile) -> Result<Table, ReportError> {
    let mut t = Table::new(title, &["regime", ">= bytes", "messages", "payload B"]);
    for (name, regime) in [("eager", Regime::Eager), ("rendezvous", Regime::Rendezvous)] {
        let hist = match regime {
            Regime::Eager => &p.eager_hist,
            Regime::Rendezvous => &p.rendezvous_hist,
        };
        for (bucket, b) in hist.iter().enumerate() {
            if b.count == 0 && b.bytes == 0 {
                continue;
            }
            t.row(vec![
                name.to_string(),
                spechpc_simmpi::profile::bucket_floor(bucket).to_string(),
                b.count.to_string(),
                b.bytes.to_string(),
            ])?;
        }
    }
    Ok(t)
}

/// The heaviest sender→receiver pairs of the communication matrix
/// (ITAC message-statistics view), at most `top` rows.
pub fn profile_matrix_table(title: &str, p: &Profile, top: usize) -> Result<Table, ReportError> {
    let mut pairs: Vec<(usize, usize, u64)> = Vec::new();
    for from in 0..p.nranks {
        for to in 0..p.nranks {
            let bytes = p.bytes_between(from, to);
            if bytes > 0 {
                pairs.push((from, to, bytes));
            }
        }
    }
    // Heaviest first; ties broken by (from, to) so the output is stable.
    pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    pairs.truncate(top);
    let mut t = Table::new(title, &["from", "to", "payload B"]);
    for (from, to, bytes) in pairs {
        t.row(vec![from.to_string(), to.to_string(), bytes.to_string()])?;
    }
    Ok(t)
}

/// Executor/cache counters as one table.
pub fn metrics_table(title: &str, m: &ExecMetrics) -> Result<Table, ReportError> {
    let mut t = Table::new(title, &["metric", "value"]);
    let kv = |t: &mut Table, k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv(&mut t, "runs executed", m.runs_executed.to_string())?;
    kv(&mut t, "peer cache hits", m.peer_hits.to_string())?;
    kv(&mut t, "prepass reuses", m.prepass_reuses.to_string())?;
    kv(&mut t, "cache hits (memory)", m.cache.hits_mem.to_string())?;
    kv(&mut t, "cache hits (disk)", m.cache.hits_disk.to_string())?;
    kv(&mut t, "cache misses", m.cache.misses.to_string())?;
    kv(&mut t, "cache corrupt entries", m.cache.corrupt.to_string())?;
    kv(
        &mut t,
        "cache entries quarantined",
        m.cache.quarantined.to_string(),
    )?;
    kv(
        &mut t,
        "cache torn entries scrubbed",
        m.cache.torn_quarantined.to_string(),
    )?;
    kv(&mut t, "cache stores", m.cache.stores.to_string())?;
    kv(&mut t, "cache hit rate", pct(m.cache.hit_rate() * 100.0))?;
    for (w, runs) in m.per_worker_runs.iter().enumerate() {
        kv(&mut t, &format!("worker {w} runs"), runs.to_string())?;
    }
    kv(
        &mut t,
        "grid points timed",
        m.point_wall_s.len().to_string(),
    )?;
    kv(&mut t, "total wall s", format!("{:.3}", m.total_wall_s()))?;
    Ok(t)
}

/// Executor/cache counters as CSV (one `metric,value` pair per line,
/// then one `wall_s,<label>,<seconds>` line per timed grid point).
pub fn metrics_to_csv(m: &ExecMetrics) -> String {
    let mut out = String::from("metric,value\n");
    out.push_str(&format!("runs_executed,{}\n", m.runs_executed));
    out.push_str(&format!("peer_hits,{}\n", m.peer_hits));
    out.push_str(&format!("prepass_reuses,{}\n", m.prepass_reuses));
    out.push_str(&format!("cache_hits_mem,{}\n", m.cache.hits_mem));
    out.push_str(&format!("cache_hits_disk,{}\n", m.cache.hits_disk));
    out.push_str(&format!("cache_misses,{}\n", m.cache.misses));
    out.push_str(&format!("cache_corrupt,{}\n", m.cache.corrupt));
    out.push_str(&format!("cache_quarantined,{}\n", m.cache.quarantined));
    out.push_str(&format!(
        "cache_torn_quarantined,{}\n",
        m.cache.torn_quarantined
    ));
    out.push_str(&format!("cache_stores,{}\n", m.cache.stores));
    for (w, runs) in m.per_worker_runs.iter().enumerate() {
        out.push_str(&format!("worker_{w}_runs,{runs}\n"));
    }
    out.push_str("\nwall_s,label,seconds\n");
    for (label, secs) in &m.point_wall_s {
        out.push_str(&format!("wall_s,{label},{secs:.6}\n"));
    }
    out
}

/// Write the three profile CSV views under `dir` with a common `stem`:
/// `<stem>_ranks.csv`, `<stem>_hist.csv`, `<stem>_matrix.csv`.
/// Returns the written paths.
pub fn write_profile_csvs(dir: &Path, stem: &str, p: &Profile) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let files = [
        (format!("{stem}_ranks.csv"), p.ranks_to_csv()),
        (format!("{stem}_hist.csv"), p.histogram_to_csv()),
        (format!("{stem}_matrix.csv"), p.matrix_to_csv()),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

/// Write the executor metrics CSV under `dir` as `<stem>.csv`.
pub fn write_metrics_csv(dir: &Path, stem: &str, m: &ExecMetrics) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.csv"));
    std::fs::write(&path, metrics_to_csv(m))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheMetrics;
    use spechpc_simmpi::profile::Phase;

    fn sample_profile() -> Profile {
        let mut p = Profile::new(2);
        p.record_phase(0, Phase::Compute, 2.0);
        p.record_phase(1, Phase::RecvWait, 1.5);
        p.record_phase(1, Phase::Compute, 0.5);
        p.record_message(0, 1, 4096, Regime::Eager);
        p.record_message(1, 0, 1 << 20, Regime::Rendezvous);
        p
    }

    #[test]
    fn rank_table_has_total_row_and_fractions() {
        let t = profile_rank_table("demo", &sample_profile()).unwrap();
        assert_eq!(t.rows.len(), 3); // 2 ranks + TOTAL
        assert_eq!(t.rows[2][0], "TOTAL");
        assert_eq!(t.rows[1][7], "75%"); // rank 1: 1.5 of 2.0 s in MPI
    }

    #[test]
    fn histogram_table_lists_both_regimes() {
        let t = profile_histogram_table("h", &sample_profile()).unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "eager");
        assert_eq!(t.rows[1][0], "rendezvous");
        assert_eq!(t.rows[0][1], "4096");
    }

    #[test]
    fn matrix_table_is_heaviest_first_and_bounded() {
        let t = profile_matrix_table("m", &sample_profile(), 10).unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][2], (1u64 << 20).to_string());
        let t1 = profile_matrix_table("m", &sample_profile(), 1).unwrap();
        assert_eq!(t1.rows.len(), 1);
    }

    #[test]
    fn metrics_render_as_table_and_csv() {
        let m = ExecMetrics {
            runs_executed: 3,
            peer_hits: 0,
            prepass_reuses: 6,
            cache: CacheMetrics {
                hits_mem: 2,
                hits_disk: 1,
                misses: 3,
                corrupt: 0,
                quarantined: 0,
                torn_quarantined: 0,
                stores: 3,
            },
            per_worker_runs: vec![4, 2],
            point_wall_s: vec![("lbm/tiny/4@ClusterA".into(), 0.0123)],
        };
        let t = metrics_table("metrics", &m).unwrap();
        assert!(t.render().contains("cache hits (memory)"));
        let csv = metrics_to_csv(&m);
        assert!(csv.contains("cache_hits_mem,2"));
        assert!(csv.contains("worker_1_runs,2"));
        assert!(csv.contains("wall_s,lbm/tiny/4@ClusterA,0.012300"));
    }

    #[test]
    fn csv_files_land_on_disk_non_empty() {
        let dir = std::env::temp_dir().join(format!("spechpc-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_profile_csvs(&dir, "lbm_tiny", &sample_profile()).unwrap();
        assert_eq!(written.len(), 3);
        for path in &written {
            let body = std::fs::read_to_string(path).unwrap();
            assert!(body.lines().count() >= 2, "{path:?} must have data rows");
        }
        let mpath = write_metrics_csv(&dir, "metrics", &ExecMetrics::default()).unwrap();
        assert!(std::fs::read_to_string(&mpath)
            .unwrap()
            .contains("metric,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
