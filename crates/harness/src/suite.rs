//! Suite-level driver: run all nine benchmarks under SPEC-like rules.

use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::registry::all_benchmarks;
use spechpc_machine::cluster::ClusterSpec;

use crate::exec::{Executor, GridFailure, RunSpec};
use crate::report::{fmt, Table};
use crate::runner::{RunConfig, RunResult};

/// One suite execution: a workload class at one process count.
#[derive(Debug, Clone)]
pub struct Suite {
    pub class: WorkloadClass,
    pub nranks: usize,
}

impl Suite {
    /// The paper's node-level configuration: tiny workloads on a full
    /// node of the given cluster.
    pub fn tiny_full_node(cluster: &ClusterSpec) -> Self {
        Suite {
            class: WorkloadClass::Tiny,
            nranks: cluster.node.cores(),
        }
    }

    /// Run every benchmark of the suite (skipping those that do not
    /// ship the requested workload class).
    ///
    /// Convenience wrapper over [`Suite::run_with`] using a default
    /// (parallel, memory-cached) executor.
    pub fn run(&self, cluster: &ClusterSpec, config: RunConfig) -> SuiteReport {
        self.run_with(&Executor::new(config, Default::default()), cluster)
    }

    /// Run the suite through `exec`: all nine benchmarks execute as one
    /// concurrent batch, in Table 1 order.
    ///
    /// The suite always finishes: benchmarks that fail (e.g. under an
    /// injected fault plan) land in [`SuiteReport::failures`] while the
    /// survivors fill [`SuiteReport::results`].
    pub fn run_with(&self, exec: &Executor, cluster: &ClusterSpec) -> SuiteReport {
        let specs: Vec<RunSpec> = all_benchmarks()
            .iter()
            .filter(|b| match self.class {
                WorkloadClass::Medium | WorkloadClass::Large => b.meta().supports_medium_large,
                _ => true,
            })
            .map(|b| RunSpec::new(b.meta().name, self.class, self.nranks))
            .collect();
        let grid = exec.run_all(cluster, &specs);
        SuiteReport {
            cluster: cluster.name.clone(),
            class: self.class,
            results: grid.results.into_iter().flatten().collect(),
            failures: grid.failures,
        }
    }
}

/// Results of a full-suite run: the benchmarks that completed, in
/// Table 1 order, plus the per-benchmark failure report for those that
/// did not.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    pub cluster: String,
    pub class: WorkloadClass,
    pub results: Vec<RunResult>,
    pub failures: Vec<GridFailure>,
}

impl SuiteReport {
    /// Did every benchmark of the suite complete?
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn result(&self, benchmark: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.benchmark == benchmark)
    }

    /// SPEC-style score against a reference run: the geometric mean of
    /// `reference_runtime / runtime` over the benchmarks present in
    /// both reports (SPEC's "base" metric, with the reference machine
    /// scoring 1.0). Returns `None` when the reports share no
    /// benchmarks.
    pub fn spec_score(&self, reference: &SuiteReport) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for r in &self.results {
            if let Some(refr) = reference.result(&r.benchmark) {
                if r.runtime_s > 0.0 && refr.runtime_s > 0.0 {
                    log_sum += (refr.runtime_s / r.runtime_s).ln();
                    n += 1;
                }
            }
        }
        (n > 0).then(|| (log_sum / n as f64).exp())
    }

    /// Render a per-benchmark summary table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("SPEChpc 2021 {} suite on {}", self.class, self.cluster),
            &[
                "benchmark",
                "ranks",
                "runtime [s]",
                "Gflop/s",
                "mem BW [GB/s]",
                "MPI [%]",
                "power [W]",
                "energy [kJ]",
            ],
        );
        for r in &self.results {
            t.row(vec![
                r.benchmark.clone(),
                r.nranks.to_string(),
                fmt(r.runtime_s),
                fmt(r.gflops()),
                fmt(r.counters.mem_bandwidth()),
                fmt(r.breakdown.mpi_fraction() * 100.0),
                fmt(r.power.total()),
                fmt(r.energy.total_j() / 1e3),
            ])
            .expect("suite row matches header");
        }
        let mut out = t.render();
        if !self.failures.is_empty() {
            out.push_str(&format!(
                "\n{} of {} benchmarks failed:\n",
                self.failures.len(),
                self.failures.len() + self.results.len()
            ));
            for f in &self.failures {
                out.push_str(&format!("  FAILED {}: {}\n", f.label, f.error));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    #[test]
    fn tiny_suite_runs_all_nine_on_cluster_a() {
        let cluster = presets::cluster_a();
        let suite = Suite::tiny_full_node(&cluster);
        let report = suite.run(
            &cluster,
            RunConfig::default().with_repetitions(1).with_trace(false),
        );
        assert!(report.is_complete());
        assert_eq!(report.results.len(), 9);
        for r in &report.results {
            assert!(r.runtime_s > 0.0, "{} has zero runtime", r.benchmark);
            assert!(r.power.total() > 0.0);
        }
        let text = report.render();
        assert!(text.contains("tealeaf"));
        assert!(text.contains("sph-exa"));
        assert!(!text.contains("FAILED"));
    }

    #[test]
    fn suite_degrades_to_partial_results_under_an_injected_crash() {
        use spechpc_simmpi::faults::{FaultEvent, FaultPlan};
        let cluster = presets::cluster_a();
        let suite = Suite::tiny_full_node(&cluster);
        // Crash a mid-grid rank immediately: every benchmark that
        // schedules rank 30 aborts with MPI-abort semantics, yet the
        // suite still renders the survivors and blames the rank.
        let report = suite.run(
            &cluster,
            RunConfig::default()
                .with_repetitions(1)
                .with_trace(false)
                .with_faults(FaultPlan {
                    seed: 11,
                    events: vec![FaultEvent::Crash {
                        rank: 30,
                        at_s: 0.0,
                    }],
                }),
        );
        assert!(!report.is_complete());
        assert_eq!(report.results.len() + report.failures.len(), 9);
        assert!(
            !report.failures.is_empty(),
            "a full-node suite schedules rank 30 somewhere"
        );
        for f in &report.failures {
            assert_eq!(f.error.failed_rank(), Some(30), "{}", f.error);
        }
        let text = report.render();
        assert!(text.contains("FAILED"), "{text}");
        assert!(text.contains("benchmarks failed"), "{text}");
    }

    #[test]
    fn spec_score_is_one_against_itself_and_favours_cluster_b() {
        let cfg = RunConfig::default().with_repetitions(1).with_trace(false);
        let a = presets::cluster_a();
        let b = presets::cluster_b();
        let ra = Suite::tiny_full_node(&a).run(&a, cfg.clone());
        let rb = Suite::tiny_full_node(&b).run(&b, cfg);
        let self_score = ra.spec_score(&ra).unwrap();
        assert!((self_score - 1.0).abs() < 1e-12);
        let b_score = rb.spec_score(&ra).unwrap();
        // The geometric mean of the §4.1.2 acceleration factors
        // (1.0–2.05) lands around 1.4.
        assert!(
            (1.2..1.8).contains(&b_score),
            "ClusterB suite score {b_score}"
        );
    }

    #[test]
    fn medium_suite_skips_unsupported_codes() {
        let cluster = presets::cluster_b();
        let suite = Suite {
            class: WorkloadClass::Medium,
            nranks: cluster.node.cores(),
        };
        let report = suite.run(
            &cluster,
            RunConfig::default().with_repetitions(1).with_trace(false),
        );
        // Six of nine ship medium/large workloads.
        assert_eq!(report.results.len(), 6);
        assert!(report.result("minisweep").is_none());
        assert!(report.result("soma").is_none());
        assert!(report.result("sph-exa").is_none());
    }
}
