//! Power and energy experiments: the paper's Fig. 3 (CPU and DRAM
//! power), Fig. 4 (Z-plots and total energy), the §4.2.1 hot/cool table
//! and the §4.2.3 baseline-power comparison — all on the *tiny* suite.

use crate::error::HarnessError;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_machine::node::NodeSpec;
use spechpc_power::zplot::{ZPlot, ZPoint};

use crate::exec::Executor;
use crate::experiments::node_level::{fig1_with, Fig1};
use crate::report::{fmt, Table};
use crate::runner::RunConfig;

/// Per-benchmark domain series: `(n, speedup, package W, DRAM W)` for
/// n within the first ccNUMA domain.
pub type DomainPowerSeries = Vec<(String, Vec<(usize, f64, f64, f64)>)>;

/// Per-benchmark node series: `(n, package W, DRAM W)` across the full
/// node.
pub type NodePowerSeries = Vec<(String, Vec<(usize, f64, f64)>)>;

/// Fig. 3 data: power vs. speedup on one ccNUMA domain (a/c) and power
/// vs. process count on the full node (b/d).
#[derive(Debug, Clone)]
pub struct Fig3 {
    pub cluster: String,
    pub domain_series: DomainPowerSeries,
    pub node_series: NodePowerSeries,
    /// Zero-core extrapolated baseline per socket (the dotted line of
    /// Fig. 3 a/c).
    pub extrapolated_baseline_w: f64,
}

/// Derive Fig. 3 from a Fig. 1 sweep.
pub fn fig3(f1: &Fig1, cluster: &ClusterSpec) -> Fig3 {
    let domain = cluster.node.cores_per_domain();
    let mut domain_series = Vec::new();
    let mut node_series = Vec::new();
    for s in &f1.sweeps {
        let t1 = s.results.first().map(|r| r.step_seconds).unwrap_or(1.0);
        let d: Vec<(usize, f64, f64, f64)> = s
            .results
            .iter()
            .filter(|r| r.nranks <= domain)
            .map(|r| {
                (
                    r.nranks,
                    t1 / r.step_seconds,
                    r.power.package_w,
                    r.power.dram_w,
                )
            })
            .collect();
        let n: Vec<(usize, f64, f64)> = s
            .results
            .iter()
            .map(|r| (r.nranks, r.power.package_w, r.power.dram_w))
            .collect();
        domain_series.push((s.benchmark.clone(), d));
        node_series.push((s.benchmark.clone(), n));
    }
    // Zero-core extrapolation: linear fit through the first two domain
    // points, evaluated at n = 0 (per active socket — subtract the idle
    // second socket's baseline).
    let idle_socket = cluster.node.cpu.baseline_power_w;
    let extrapolated = domain_series
        .first()
        .and_then(|(_, d)| {
            if d.len() < 2 {
                return None;
            }
            let (n0, _, p0, _) = d[0];
            let (n1, _, p1, _) = d[1];
            let slope = (p1 - p0) / (n1 as f64 - n0 as f64);
            Some(p0 - slope * n0 as f64 - idle_socket)
        })
        .unwrap_or(idle_socket);
    Fig3 {
        cluster: f1.cluster.clone(),
        domain_series,
        node_series,
        extrapolated_baseline_w: extrapolated,
    }
}

/// Fig. 4 data: Z-plots (energy vs. speedup, cores as parameter) per
/// benchmark, plus total node energy vs. process count.
#[derive(Debug, Clone)]
pub struct Fig4 {
    pub cluster: String,
    pub zplots: Vec<ZPlot>,
}

/// Derive Fig. 4 from a Fig. 1 sweep. Energies are normalized to the
/// full tiny workload.
pub fn fig4(f1: &Fig1) -> Fig4 {
    let mut zplots = Vec::new();
    for s in &f1.sweeps {
        let t1 = s.results.first().map(|r| r.step_seconds).unwrap_or(1.0);
        let mut z = ZPlot::new(format!("{} ({})", s.benchmark, f1.cluster));
        for r in &s.results {
            z.push(ZPoint {
                resources: r.nranks,
                speedup: t1 / r.step_seconds,
                energy_j: r.energy.total_j(),
                runtime_s: r.runtime_s,
            });
        }
        zplots.push(z);
    }
    Fig4 {
        cluster: f1.cluster.clone(),
        zplots,
    }
}

/// The §4.2.1 hot/cool table: fraction of socket TDP per benchmark at
/// the full node.
pub fn hot_cool_table(f1: &Fig1, cluster: &ClusterSpec) -> Vec<(String, f64, f64)> {
    let tdp = cluster.node.tdp();
    f1.sweeps
        .iter()
        .map(|s| {
            let r = s.results.last().expect("non-empty sweep");
            let frac = r.power.package_w / tdp;
            (s.benchmark.clone(), r.power.package_w / 2.0, frac)
        })
        .collect()
}

/// The §4.2.3 baseline-power comparison across CPU generations.
pub fn baseline_table(nodes: &[&NodeSpec]) -> Table {
    let mut t = Table::new(
        "§4.2.3 — extrapolated zero-core baseline power across CPU generations",
        &["node", "TDP [W]", "baseline [W]", "baseline/TDP [%]"],
    );
    for n in nodes {
        t.row(vec![
            n.cpu.model.clone(),
            fmt(n.cpu.tdp_w),
            fmt(n.cpu.baseline_power_w),
            fmt(100.0 * n.cpu.baseline_power_w / n.cpu.tdp_w),
        ])
        .expect("row matches header");
    }
    t
}

/// Run the full tiny-suite power/energy pipeline for one cluster.
///
/// Convenience wrapper over [`run_power_energy_with`] using a default
/// (parallel, memory-cached) executor.
pub fn run_power_energy(
    cluster: &ClusterSpec,
    config: &RunConfig,
    step: usize,
) -> Result<(Fig1, Fig3, Fig4), HarnessError> {
    run_power_energy_with(
        &Executor::new(config.clone(), Default::default()),
        cluster,
        step,
    )
}

/// Run the power/energy pipeline through `exec`; Fig. 3 and Fig. 4 are
/// pure derivations, so one Fig. 1 grid feeds all three artifacts (and
/// a warm cache makes the grid itself free).
pub fn run_power_energy_with(
    exec: &Executor,
    cluster: &ClusterSpec,
    step: usize,
) -> Result<(Fig1, Fig3, Fig4), HarnessError> {
    let f1 = fig1_with(exec, cluster, step)?;
    let f3 = fig3(&f1, cluster);
    let f4 = fig4(&f1);
    Ok((f1, f3, f4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::node_level::fig1;
    use spechpc_machine::presets;
    use spechpc_power::rapl::RaplModel;

    fn quick() -> RunConfig {
        RunConfig::default().with_repetitions(1).with_trace(false)
    }

    #[test]
    fn fig3_baseline_extrapolation_matches_spec() {
        // The extrapolated zero-core baseline must recover the CPU's
        // configured baseline power (§4.2.3: 95–101 W on Ice Lake).
        let cluster = presets::cluster_a();
        let f1 = fig1(&cluster, &quick(), 4).unwrap();
        let f3 = fig3(&f1, &cluster);
        let base = f3.extrapolated_baseline_w;
        assert!(
            (base - 98.0).abs() < 15.0,
            "extrapolated baseline {base} W vs configured 98 W"
        );
    }

    #[test]
    fn fig3_power_grows_with_sockets() {
        // Fig. 3 b/d: going from one socket to two roughly doubles the
        // dynamic power swing.
        let cluster = presets::cluster_a();
        let f1 = fig1(&cluster, &quick(), 17).unwrap();
        let f3 = fig3(&f1, &cluster);
        let (_, series) = f3.node_series.iter().find(|(b, _)| b == "sph-exa").unwrap();
        let p36 = series.iter().find(|(n, _, _)| *n == 36).unwrap().1;
        let p72 = series.iter().find(|(n, _, _)| *n == 72).unwrap().1;
        let rapl = RaplModel::new(&cluster);
        let base = rapl.baseline_power(1);
        let swing_ratio = (p72 - base) / (p36 - base);
        assert!(
            (swing_ratio - 2.0).abs() < 0.3,
            "dynamic power swing ratio {swing_ratio}"
        );
    }

    #[test]
    fn fig4_minima_nearly_coincide_on_modern_cpus() {
        // §4.3.1: E and EDP minima "so close together as to be hardly
        // discernible".
        let cluster = presets::cluster_b();
        let f1 = fig1(&cluster, &quick(), 12).unwrap();
        let f4 = fig4(&f1);
        for z in &f4.zplots {
            if z.label.starts_with("lbm") || z.label.starts_with("minisweep") {
                continue; // erratic codes: minima track the dips
            }
            let sep = z.min_separation_steps().unwrap();
            assert!(
                sep <= 1,
                "{}: E/EDP minima separated by {sep} steps",
                z.label
            );
        }
    }

    #[test]
    fn hot_cool_table_matches_421() {
        let cluster = presets::cluster_a();
        let f1 = fig1(&cluster, &quick(), 71).unwrap();
        let hc = hot_cool_table(&f1, &cluster);
        let get = |n: &str| hc.iter().find(|(b, _, _)| b == n).unwrap();
        let (_, w_sph, f_sph) = get("sph-exa");
        let (_, w_soma, f_soma) = get("soma");
        // sph-exa ≈ 244 W/socket (98 % TDP), soma ≈ 222 W (89 %).
        assert!((w_sph - 244.0).abs() < 12.0, "sph-exa {w_sph} W");
        assert!((w_soma - 222.0).abs() < 12.0, "soma {w_soma} W");
        assert!(f_sph > f_soma);
        // sph-exa is the hottest of the suite.
        for (b, _, f) in &hc {
            assert!(*f <= f_sph + 1e-9, "{b} hotter than sph-exa");
        }
    }

    #[test]
    fn baseline_table_shows_the_generational_shift() {
        let a = presets::cluster_a();
        let b = presets::cluster_b();
        let sb = presets::sandy_bridge_node();
        let text = baseline_table(&[&a.node, &b.node, &sb]).render();
        assert!(text.contains("8360Y"));
        assert!(text.contains("E5-2680"));
        // Sandy Bridge <20 %, Ice Lake ~39 %, SPR ~51 %.
        assert!(
            text.contains("18.3"),
            "Sandy Bridge fraction missing: {text}"
        );
    }
}
