//! Renderers for the paper's static tables (Tables 1–3).

use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::registry::all_benchmarks;
use spechpc_machine::cluster::ClusterSpec;

use crate::report::{fmt, Table};

/// Table 1 — key attributes of the SPEChpc 2021 parallel benchmarks.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 — key attributes of SPEChpc 2021 parallel benchmarks",
        &[
            "name",
            "B",
            "language",
            "LOC",
            "collective",
            "tiny",
            "small",
        ],
    );
    for b in all_benchmarks() {
        let m = b.meta();
        let cfg = |class: WorkloadClass| {
            b.config(class)
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("; ")
        };
        t.row(vec![
            m.name.to_string(),
            format!("{:02}", m.spec_id),
            m.language.to_string(),
            m.loc.to_string(),
            m.collective.to_string(),
            cfg(WorkloadClass::Tiny),
            cfg(WorkloadClass::Small),
        ])
        .expect("row matches header");
    }
    t
}

/// Table 2 — numeric and domain data of the suite.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — numeric and domain data of the SPEChpc 2021 suite",
        &["name", "numerical brief information", "application domain"],
    );
    for b in all_benchmarks() {
        let m = b.meta();
        t.row(vec![
            m.name.to_string(),
            m.numerics.to_string(),
            m.domain.to_string(),
        ])
        .expect("row matches header");
    }
    t
}

/// Table 3 — key hardware attributes of the two clusters.
pub fn table3(clusters: &[&ClusterSpec]) -> Table {
    let mut header = vec!["attribute"];
    let names: Vec<String> = clusters.iter().map(|c| c.name.clone()).collect();
    for n in &names {
        header.push(n);
    }
    let mut t = Table::new(
        "Table 3 — key hardware and software attributes of the systems",
        &header,
    );
    let row = |label: &str, f: &dyn Fn(&ClusterSpec) -> String| {
        let mut cells = vec![label.to_string()];
        for c in clusters {
            cells.push(f(c));
        }
        cells
    };
    let rows: Vec<Vec<String>> = vec![
        row("Processor model", &|c| c.node.cpu.model.clone()),
        row("Microarchitecture", &|c| {
            c.node.cpu.microarchitecture.clone()
        }),
        row("Base clock speed [GHz]", &|c| {
            fmt(c.node.cpu.base_clock_ghz)
        }),
        row("Physical cores per node", &|c| c.node.cores().to_string()),
        row("ccNUMA domains per node", &|c| {
            c.node.numa_domains().to_string()
        }),
        row("Sockets per node", &|c| c.node.sockets.to_string()),
        row("Per-core L2 cache [KiB]", &|c| {
            (c.node.caches.level(2).map(|l| l.capacity).unwrap_or(0) / 1024).to_string()
        }),
        row("Shared L3 per socket [MiB]", &|c| {
            (c.node.caches.level(3).map(|l| l.capacity).unwrap_or(0) / (1024 * 1024)).to_string()
        }),
        row("Memory per node [GiB]", &|c| {
            fmt(c.node.memory_capacity_gib())
        }),
        row("Theor. node memory bandwidth [GB/s]", &|c| {
            fmt(c.node.theoretical_mem_bandwidth())
        }),
        row("Saturated node memory bandwidth [GB/s]", &|c| {
            fmt(c.node.saturated_mem_bandwidth())
        }),
        row("Peak DP performance per node [Gflop/s]", &|c| {
            fmt(c.node.peak_flops())
        }),
        row("Thermal design power per socket [W]", &|c| {
            fmt(c.node.cpu.tdp_w)
        }),
        row("Node interconnect", &|c| c.interconnect.name.clone()),
        row("Raw link bandwidth [Gbit/s]", &|c| {
            fmt(c.interconnect.link_bandwidth * 8.0)
        }),
    ];
    for r in rows {
        t.row(r).expect("row matches header");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    #[test]
    fn table1_lists_all_nine_with_configs() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        let text = t.render();
        assert!(text.contains("lbm"));
        assert!(text.contains("{4096,16384}"), "tiny lbm lattice missing");
        assert!(text.contains("14000000"), "soma polymer count missing");
        assert!(text.contains("Allreduce"));
    }

    #[test]
    fn table2_has_domains() {
        let text = table2().render();
        assert!(text.contains("Solar physics"));
        assert!(text.contains("Lattice-Boltzmann"));
        assert!(text.contains("Radiation transport"));
    }

    #[test]
    fn table3_matches_key_numbers() {
        let a = presets::cluster_a();
        let b = presets::cluster_b();
        let text = table3(&[&a, &b]).render();
        assert!(text.contains("8360Y"));
        assert!(text.contains("8470"));
        assert!(text.contains("| 72"), "ClusterA core count");
        assert!(text.contains("| 104"), "ClusterB core count");
        assert!(text.contains("100"), "HDR100 link speed");
    }
}
