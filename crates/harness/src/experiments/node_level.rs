//! Node-level experiments: the paper's Fig. 1, Fig. 2 and the §4.1.1
//! (parallel efficiency), §4.1.2 (acceleration factors) and §4.1.3
//! (vectorization ratios) tables, using the *tiny* workloads.

use crate::error::HarnessError;
use spechpc_analysis::speedup::{parallel_efficiency, SpeedupCurve};
use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::registry::all_benchmarks;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_simmpi::trace::EventKind;

use crate::exec::{Executor, RunSpec};
use crate::report::{fmt, Table};
use crate::runner::{RunConfig, RunResult};

/// One benchmark's node-level sweep on one cluster.
#[derive(Debug, Clone)]
pub struct NodeSweep {
    pub benchmark: String,
    pub cluster: String,
    /// Results per process count, ascending.
    pub results: Vec<RunResult>,
}

impl NodeSweep {
    /// Speedup curve (runtime per step vs. process count).
    pub fn curve(&self) -> SpeedupCurve {
        SpeedupCurve::new(
            self.results
                .iter()
                .map(|r| (r.nranks, r.step_seconds))
                .collect(),
        )
    }

    /// Result at an exact process count.
    pub fn at(&self, nranks: usize) -> Option<&RunResult> {
        self.results.iter().find(|r| r.nranks == nranks)
    }
}

/// Fig. 1: speedup and DP / DP-AVX performance vs. core count for the
/// whole suite on one cluster.
#[derive(Debug, Clone)]
pub struct Fig1 {
    pub cluster: String,
    pub sweeps: Vec<NodeSweep>,
}

/// Process counts to sweep: every `step`-th count from 1 to the full
/// node, plus the domain boundaries.
pub fn sweep_counts(cluster: &ClusterSpec, step: usize) -> Vec<usize> {
    let cores = cluster.node.cores();
    let domain = cluster.node.cores_per_domain();
    let mut v: Vec<usize> = (1..=cores).step_by(step.max(1)).collect();
    for d in 1..=cluster.node.numa_domains() {
        v.push(d * domain);
    }
    v.push(1);
    v.sort_unstable();
    v.dedup();
    v
}

/// Run the Fig. 1 sweep (`step` controls the sampling density; the
/// paper uses every core count, i.e. `step = 1`).
///
/// Convenience wrapper over [`fig1_with`] using a default (parallel,
/// memory-cached) executor.
pub fn fig1(cluster: &ClusterSpec, config: &RunConfig, step: usize) -> Result<Fig1, HarnessError> {
    fig1_with(
        &Executor::new(config.clone(), Default::default()),
        cluster,
        step,
    )
}

/// Run the Fig. 1 sweep through `exec`: the whole 9-benchmark ×
/// rank-count grid is dispatched as one batch, so every point runs
/// concurrently (and cached points are free).
pub fn fig1_with(
    exec: &Executor,
    cluster: &ClusterSpec,
    step: usize,
) -> Result<Fig1, HarnessError> {
    let counts = sweep_counts(cluster, step);
    let benches = all_benchmarks();
    let specs: Vec<RunSpec> = benches
        .iter()
        .flat_map(|b| {
            counts
                .iter()
                .map(|&n| RunSpec::new(b.meta().name, WorkloadClass::Tiny, n))
        })
        .collect();
    let results = exec.run_all(cluster, &specs).into_results()?;
    let mut it = results.into_iter();
    let sweeps = benches
        .iter()
        .map(|b| NodeSweep {
            benchmark: b.meta().name.to_string(),
            cluster: cluster.name.clone(),
            results: it.by_ref().take(counts.len()).collect(),
        })
        .collect();
    Ok(Fig1 {
        cluster: cluster.name.clone(),
        sweeps,
    })
}

impl Fig1 {
    /// Render the speedup panel (Fig. 1 a/d) as a table.
    pub fn render_speedup(&self) -> String {
        let mut t = Table::new(
            format!("Fig. 1 ({}) — tiny suite speedup vs. cores", self.cluster),
            &[
                "benchmark",
                "n",
                "speedup",
                "min",
                "max",
                "DP Gflop/s",
                "DP-AVX Gflop/s",
            ],
        );
        for s in &self.sweeps {
            let t1 = s.results.first().map(|r| r.step_seconds).unwrap_or(1.0);
            for r in &s.results {
                t.row(vec![
                    s.benchmark.clone(),
                    r.nranks.to_string(),
                    fmt(t1 / r.step_seconds),
                    fmt(t1 / r.step_seconds_max),
                    fmt(t1 / r.step_seconds_min),
                    fmt(r.counters.dp_gflops()),
                    fmt(r.counters.dp_avx_gflops()),
                ])
                .expect("row matches header");
            }
        }
        t.render()
    }
}

/// The §4.1.1 parallel-efficiency table: speedup percentage from one
/// ccNUMA domain to the full node, per benchmark.
pub fn efficiency_table(fig1: &Fig1, cluster: &ClusterSpec) -> Vec<(String, f64)> {
    let domain = cluster.node.cores_per_domain();
    let cores = cluster.node.cores();
    fig1.sweeps
        .iter()
        .map(|s| {
            let eff = parallel_efficiency(&s.curve(), domain, cores)
                .expect("sweep must contain the domain and node counts");
            (s.benchmark.clone(), eff)
        })
        .collect()
}

/// The §4.1.2 acceleration-factor table: full-node ClusterB over
/// ClusterA runtime ratio per benchmark.
pub fn acceleration_table(fig1_a: &Fig1, fig1_b: &Fig1) -> Vec<(String, f64)> {
    fig1_a
        .sweeps
        .iter()
        .zip(&fig1_b.sweeps)
        .map(|(a, b)| {
            let ta = a.results.last().expect("non-empty").step_seconds;
            let tb = b.results.last().expect("non-empty").step_seconds;
            (a.benchmark.clone(), ta / tb)
        })
        .collect()
}

/// The §4.1.3 vectorization-ratio table (% of flops executed with
/// AVX-512), per benchmark. Identical on both clusters by construction
/// (the paper measures near-identical ratios too).
pub fn vectorization_table(fig1: &Fig1) -> Vec<(String, f64)> {
    fig1.sweeps
        .iter()
        .map(|s| {
            let r = s.results.last().expect("non-empty");
            (
                s.benchmark.clone(),
                100.0 * r.counters.vectorization_ratio(),
            )
        })
        .collect()
}

/// Fig. 2 data: per-benchmark memory/L3/L2 bandwidths and data volumes
/// vs. core count (reuses the Fig. 1 sweeps), plus the two ITAC insets.
#[derive(Debug, Clone)]
pub struct Fig2 {
    pub cluster: String,
    pub sweeps: Vec<NodeSweep>,
    /// ASCII timeline of minisweep at 59 processes (inset of Fig. 2 g).
    pub minisweep_inset: String,
    /// Breakdown fractions of the minisweep@59 run.
    pub minisweep_59: InsetStats,
    /// ASCII timeline of lbm at (cores − 1) processes (inset of
    /// Fig. 2 h).
    pub lbm_inset: String,
    pub lbm_odd: InsetStats,
}

/// Key numbers of an inset run.
#[derive(Debug, Clone, Copy)]
pub struct InsetStats {
    pub nranks: usize,
    pub step_seconds: f64,
    pub recv_fraction: f64,
    pub wait_fraction: f64,
    pub barrier_fraction: f64,
    pub compute_fraction: f64,
    pub dominant: Option<EventKind>,
}

/// Run Fig. 2: bandwidth/volume curves plus the two pathology insets.
///
/// Convenience wrapper over [`fig2_with`] using a default executor.
pub fn fig2(cluster: &ClusterSpec, config: &RunConfig, step: usize) -> Result<Fig2, HarnessError> {
    fig2_with(
        &Executor::new(config.clone(), Default::default()),
        cluster,
        step,
    )
}

/// Run Fig. 2 through `exec`. The insets need full event timelines, so
/// those two runs go through [`Executor::run_traced`] (uncached); the
/// bandwidth curves reuse the Fig. 1 grid.
pub fn fig2_with(
    exec: &Executor,
    cluster: &ClusterSpec,
    step: usize,
) -> Result<Fig2, HarnessError> {
    let f1 = fig1_with(exec, cluster, step)?;

    let ms59 = exec.run_traced(cluster, &RunSpec::new("minisweep", WorkloadClass::Tiny, 59))?;
    let odd = cluster.node.cores() - 1;
    let lbm_odd = exec.run_traced(cluster, &RunSpec::new("lbm", WorkloadClass::Tiny, odd))?;

    let stats = |r: &RunResult| InsetStats {
        nranks: r.nranks,
        step_seconds: r.step_seconds,
        recv_fraction: r.breakdown.fraction(EventKind::Recv),
        wait_fraction: r.breakdown.fraction(EventKind::Wait),
        barrier_fraction: r.breakdown.fraction(EventKind::Barrier),
        compute_fraction: r.breakdown.fraction(EventKind::Compute),
        dominant: r.breakdown.dominant_mpi(),
    };

    Ok(Fig2 {
        cluster: cluster.name.clone(),
        minisweep_inset: ms59.timeline.render_ascii(100),
        minisweep_59: stats(&ms59),
        lbm_inset: lbm_odd.timeline.render_ascii(100),
        lbm_odd: stats(&lbm_odd),
        sweeps: f1.sweeps,
    })
}

impl Fig2 {
    /// Render the bandwidth/volume panels.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Fig. 2 ({}) — bandwidth and data volume vs. cores",
                self.cluster
            ),
            &[
                "benchmark",
                "n",
                "mem BW [GB/s]",
                "L3 BW [GB/s]",
                "L2 BW [GB/s]",
                "mem vol [GB/step]",
                "L2 vol [GB/step]",
            ],
        );
        for s in &self.sweeps {
            for r in &s.results {
                let steps = r.counters.mem_bytes / r.counters.mem_bandwidth().max(1e-30) / 1e9;
                let _ = steps;
                let per_step = |total: f64| total / (r.runtime_s / r.step_seconds);
                t.row(vec![
                    s.benchmark.clone(),
                    r.nranks.to_string(),
                    fmt(r.counters.mem_bandwidth()),
                    fmt(r.counters.l3_bandwidth()),
                    fmt(r.counters.l2_bandwidth()),
                    fmt(per_step(r.counters.mem_bytes) / 1e9),
                    fmt(per_step(r.counters.l2_bytes) / 1e9),
                ])
                .expect("row matches header");
            }
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    fn quick() -> RunConfig {
        RunConfig::default().with_repetitions(3).with_trace(false)
    }

    #[test]
    fn efficiency_table_matches_paper_shape() {
        // Paper §4.1.1 (ClusterA): tealeaf/pot3d ≈ 100 %, cloverleaf 98,
        // hpgmgfv 95, minisweep 73, soma 93, sph-exa 80.
        let cluster = presets::cluster_a();
        let f1 = fig1(&cluster, &quick(), 17).unwrap();
        let eff = efficiency_table(&f1, &cluster);
        let get = |n: &str| eff.iter().find(|(b, _)| b == n).unwrap().1;
        for name in ["tealeaf", "pot3d", "cloverleaf", "hpgmgfv"] {
            let e = get(name);
            assert!((94.0..112.0).contains(&e), "{name}: efficiency {e}");
        }
        assert!(get("minisweep") < 85.0, "minisweep must scale poorly");
        assert!(get("sph-exa") < 95.0, "sph-exa must lose efficiency");
        // The saturating codes are the most efficient across domains.
        assert!(get("tealeaf") > get("minisweep"));
    }

    #[test]
    fn acceleration_factors_match_paper_shape() {
        // §4.1.2: memory-bound codes accelerate 1.57–1.66; lbm ≈ 1.21;
        // weather tops the suite at ≈ 2.03.
        let a = presets::cluster_a();
        let b = presets::cluster_b();
        let f1a = fig1(&a, &quick(), 71).unwrap();
        let f1b = fig1(&b, &quick(), 103).unwrap();
        let acc = acceleration_table(&f1a, &f1b);
        let get = |n: &str| acc.iter().find(|(x, _)| x == n).unwrap().1;
        for name in ["tealeaf", "cloverleaf", "pot3d", "hpgmgfv"] {
            let x = get(name);
            assert!((1.4..1.8).contains(&x), "{name}: acceleration {x}");
        }
        let lbm = get("lbm");
        assert!((1.1..1.4).contains(&lbm), "lbm acceleration {lbm}");
        let w = get("weather");
        assert!(w > 1.7, "weather must top the suite: {w}");
        // Ordering: weather > memory-bound > lbm.
        assert!(w > get("tealeaf"));
        assert!(get("tealeaf") > lbm);
    }

    #[test]
    fn vectorization_table_matches_paper_shape() {
        // §4.1.3: cloverleaf/pot3d/lbm highest; tealeaf and soma lowest.
        let cluster = presets::cluster_a();
        let f1 = fig1(&cluster, &quick(), 71).unwrap();
        let v = vectorization_table(&f1);
        let get = |n: &str| v.iter().find(|(x, _)| x == n).unwrap().1;
        assert!(get("pot3d") > 90.0);
        assert!(get("cloverleaf") > 90.0);
        assert!(get("lbm") > 90.0);
        assert!(get("tealeaf") < 15.0);
        assert!(get("soma") < 15.0);
    }

    #[test]
    fn fig2_insets_show_the_pathologies() {
        let cluster = presets::cluster_a();
        let f2 = fig2(&cluster, &quick(), 71).unwrap();
        // minisweep@59: MPI_Recv dominates (paper: 75 %).
        assert_eq!(f2.minisweep_59.dominant, Some(EventKind::Recv));
        assert!(
            f2.minisweep_59.recv_fraction > 0.4,
            "Recv fraction {}",
            f2.minisweep_59.recv_fraction
        );
        // lbm@71: the slow rank makes the others wait (Wait/Barrier).
        let lbm_wait = f2.lbm_odd.wait_fraction + f2.lbm_odd.barrier_fraction;
        assert!(lbm_wait > 0.02, "lbm waiting fraction {lbm_wait}");
        // Timelines render non-trivially.
        assert!(f2.minisweep_inset.lines().count() == 59);
        assert!(f2.lbm_inset.lines().count() == 71);
    }

    #[test]
    fn sweep_counts_cover_domain_boundaries() {
        let cluster = presets::cluster_a();
        let c = sweep_counts(&cluster, 10);
        assert!(c.contains(&1));
        assert!(c.contains(&18));
        assert!(c.contains(&36));
        assert!(c.contains(&54));
        assert!(c.contains(&72));
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
