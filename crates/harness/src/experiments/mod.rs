//! One driver per table/figure of the paper's evaluation.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Tables 1–3 | [`tables`] |
//! | Fig. 1, §4.1.1–4.1.3 tables | [`node_level`] |
//! | Fig. 2 (+ minisweep/lbm insets) | [`node_level::fig2`] |
//! | Fig. 3, Fig. 4, §4.2.1, §4.2.3 | [`power_energy`] |
//! | Fig. 5, Fig. 6, §5.1 cases, §5.1.2 soma anomaly | [`multi_node`] |

pub mod multi_node;
pub mod node_level;
pub mod power_energy;
pub mod tables;
