//! Multi-node experiments on the *small* workloads: the paper's Fig. 5
//! (strong scaling, per-node bandwidth, aggregate data volume), Fig. 6
//! (power and energy scaling), the §5 communication-routine ranking,
//! the §5.1 scaling-case classification, the §5.1.2 soma anomaly and
//! the §5.1.3 cluster comparison.

use crate::error::HarnessError;
use spechpc_analysis::scaling::{classify_scaling, ScalingCase, ScalingEvidence};
use spechpc_analysis::speedup::SpeedupCurve;
use spechpc_kernels::common::config::WorkloadClass;
use spechpc_kernels::registry::all_benchmarks;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_simmpi::trace::EventKind;

use crate::exec::{Executor, RunSpec};
use crate::report::{fmt, Table};
use crate::runner::{RunConfig, RunResult};

/// One benchmark's multi-node sweep.
#[derive(Debug, Clone)]
pub struct MultiNodeSweep {
    pub benchmark: String,
    pub cluster: String,
    /// Results per node count (full nodes), ascending.
    pub results: Vec<RunResult>,
}

impl MultiNodeSweep {
    /// Speedup curve over node counts.
    pub fn curve(&self) -> SpeedupCurve {
        SpeedupCurve::new(
            self.results
                .iter()
                .map(|r| (r.nodes_used, r.step_seconds))
                .collect(),
        )
    }

    /// Memory data volume per step (bytes) per node count.
    pub fn mem_volume(&self) -> Vec<(usize, f64)> {
        self.results
            .iter()
            .map(|r| {
                let steps = r.runtime_s / r.step_seconds;
                (r.nodes_used, r.counters.mem_bytes / steps)
            })
            .collect()
    }

    /// The §5.1 evidence bundle for the scaling classifier.
    pub fn evidence(&self) -> ScalingEvidence {
        ScalingEvidence {
            curve: self.curve(),
            mem_volume: self.mem_volume(),
            comm_fraction: self
                .results
                .last()
                .map(|r| r.breakdown.mpi_fraction())
                .unwrap_or(0.0),
        }
    }
}

/// Fig. 5 (and the raw material for Fig. 6): the full small-suite
/// multi-node sweep on one cluster.
#[derive(Debug, Clone)]
pub struct Fig5 {
    pub cluster: String,
    pub node_counts: Vec<usize>,
    pub sweeps: Vec<MultiNodeSweep>,
}

/// Run the small-suite sweep over `node_counts` full nodes.
///
/// Convenience wrapper over [`fig5_with`] using a default (parallel,
/// memory-cached) executor.
pub fn fig5(
    cluster: &ClusterSpec,
    config: &RunConfig,
    node_counts: &[usize],
) -> Result<Fig5, HarnessError> {
    fig5_with(
        &Executor::new(config.clone(), Default::default()),
        cluster,
        node_counts,
    )
}

/// Run the small-suite sweep through `exec`: the full 9-benchmark ×
/// node-count grid is dispatched as one concurrent batch.
pub fn fig5_with(
    exec: &Executor,
    cluster: &ClusterSpec,
    node_counts: &[usize],
) -> Result<Fig5, HarnessError> {
    let cores = cluster.node.cores();
    let counts: Vec<usize> = node_counts.iter().map(|n| n * cores).collect();
    let benches = all_benchmarks();
    let specs: Vec<RunSpec> = benches
        .iter()
        .flat_map(|b| {
            counts
                .iter()
                .map(|&n| RunSpec::new(b.meta().name, WorkloadClass::Small, n))
        })
        .collect();
    let results = exec.run_all(cluster, &specs).into_results()?;
    let mut it = results.into_iter();
    let sweeps = benches
        .iter()
        .map(|b| MultiNodeSweep {
            benchmark: b.meta().name.to_string(),
            cluster: cluster.name.clone(),
            results: it.by_ref().take(counts.len()).collect(),
        })
        .collect();
    Ok(Fig5 {
        cluster: cluster.name.clone(),
        node_counts: node_counts.to_vec(),
        sweeps,
    })
}

impl Fig5 {
    pub fn sweep(&self, benchmark: &str) -> Option<&MultiNodeSweep> {
        self.sweeps.iter().find(|s| s.benchmark == benchmark)
    }

    /// Render the three panels of Fig. 5 as one table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("Fig. 5 ({}) — small suite multi-node scaling", self.cluster),
            &[
                "benchmark",
                "nodes",
                "speedup",
                "per-node mem BW [GB/s]",
                "aggregate mem volume [GB/step]",
                "MPI [%]",
            ],
        );
        for s in &self.sweeps {
            let t1 = s.results.first().map(|r| r.step_seconds).unwrap_or(1.0);
            for r in &s.results {
                let steps = r.runtime_s / r.step_seconds;
                t.row(vec![
                    s.benchmark.clone(),
                    r.nodes_used.to_string(),
                    fmt(t1 / r.step_seconds),
                    fmt(r.mem_bandwidth_per_node()),
                    fmt(r.counters.mem_bytes / steps / 1e9),
                    fmt(r.breakdown.mpi_fraction() * 100.0),
                ])
                .expect("row matches header");
            }
        }
        t.render()
    }
}

/// The §5.1 scaling-case classification of the whole suite.
pub fn scaling_cases(f5: &Fig5) -> Vec<(String, ScalingCase)> {
    f5.sweeps
        .iter()
        .map(|s| (s.benchmark.clone(), classify_scaling(&s.evidence())))
        .collect()
}

/// §5 communication-routine ranking: total seconds spent per MPI kind,
/// summed over the suite at the largest node count.
pub fn comm_breakdown(f5: &Fig5) -> Vec<(String, EventKind, f64)> {
    let mut out = Vec::new();
    for s in &f5.sweeps {
        if let Some(r) = s.results.last() {
            for kind in EventKind::ALL {
                if kind.is_mpi() {
                    let frac = r.breakdown.fraction(kind);
                    if frac > 0.001 {
                        out.push((s.benchmark.clone(), kind, frac));
                    }
                }
            }
        }
    }
    out
}

/// Per-benchmark series: `(nodes, total power kW, total energy MJ)`.
pub type EnergySeries = Vec<(String, Vec<(usize, f64, f64)>)>;

/// Fig. 6: total power and energy vs. node count.
#[derive(Debug, Clone)]
pub struct Fig6 {
    pub cluster: String,
    pub series: EnergySeries,
}

pub fn fig6(f5: &Fig5) -> Fig6 {
    let series = f5
        .sweeps
        .iter()
        .map(|s| {
            let pts = s
                .results
                .iter()
                .map(|r| {
                    (
                        r.nodes_used,
                        r.power.total() / 1e3,
                        r.energy.total_j() / 1e6,
                    )
                })
                .collect();
            (s.benchmark.clone(), pts)
        })
        .collect();
    Fig6 {
        cluster: f5.cluster.clone(),
        series,
    }
}

/// The §5.1.2 soma-anomaly diagnostics.
#[derive(Debug, Clone)]
pub struct SomaAnomaly {
    /// (nodes, per-node memory bandwidth GB/s).
    pub per_node_bw: Vec<(usize, f64)>,
    /// (nodes, aggregate memory volume per step, bytes).
    pub volume: Vec<(usize, f64)>,
    /// Fraction of runtime in MPI_Allreduce at the largest count.
    pub allreduce_fraction: f64,
}

pub fn soma_anomaly(f5: &Fig5) -> Option<SomaAnomaly> {
    let s = f5.sweep("soma")?;
    Some(SomaAnomaly {
        per_node_bw: s
            .results
            .iter()
            .map(|r| (r.nodes_used, r.mem_bandwidth_per_node()))
            .collect(),
        volume: s.mem_volume(),
        allreduce_fraction: s
            .results
            .last()
            .map(|r| r.breakdown.fraction(EventKind::Allreduce))
            .unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    fn quick() -> RunConfig {
        RunConfig::default().with_repetitions(1).with_trace(true)
    }

    const NODES: [usize; 3] = [1, 2, 4];

    #[test]
    fn scaling_cases_match_the_paper_table() {
        // §5.1 (ClusterB): weather & pot3d case A; tealeaf case B;
        // hpgmgfv case C; cloverleaf case D; soma/lbm/sph-exa/minisweep
        // poor. The full node range sharpens the signals.
        let cluster = presets::cluster_b();
        let f5 = fig5(&cluster, &quick(), &[1, 2, 4, 8]).unwrap();
        let cases = scaling_cases(&f5);
        let get = |n: &str| cases.iter().find(|(b, _)| b == n).unwrap().1;
        assert_eq!(
            get("weather"),
            ScalingCase::A,
            "weather must be superlinear"
        );
        assert!(
            matches!(get("pot3d"), ScalingCase::A | ScalingCase::B),
            "pot3d: {:?}",
            get("pot3d")
        );
        assert!(
            matches!(get("cloverleaf"), ScalingCase::C | ScalingCase::D),
            "cloverleaf: {:?}",
            get("cloverleaf")
        );
        for name in ["soma", "minisweep"] {
            assert_eq!(get(name), ScalingCase::Poor, "{name} must scale poorly");
        }
        // sph-exa degrades through C at 8 nodes and collapses further
        // out (its imbalance grows as tiles shrink).
        assert!(
            matches!(get("sph-exa"), ScalingCase::C | ScalingCase::Poor),
            "sph-exa: {:?}",
            get("sph-exa")
        );
        // hpgmgfv: cache gain eaten by communication (case C).
        assert!(
            matches!(get("hpgmgfv"), ScalingCase::B | ScalingCase::C),
            "hpgmgfv: {:?}",
            get("hpgmgfv")
        );
    }

    #[test]
    fn soma_anomaly_reproduced() {
        // §5.1.2: per-node bandwidth *rises* with node count while
        // scaling stalls; aggregate volume grows ~linearly; Allreduce
        // dominates.
        let cluster = presets::cluster_a();
        let f5 = fig5(&cluster, &quick(), &NODES).unwrap();
        let a = soma_anomaly(&f5).unwrap();
        let bw1 = a.per_node_bw.first().unwrap().1;
        let bw_last = a.per_node_bw.last().unwrap().1;
        assert!(
            bw_last > 1.2 * bw1,
            "per-node bandwidth must rise: {bw1} → {bw_last}"
        );
        assert!(
            bw_last < 0.8 * cluster.node.saturated_mem_bandwidth(),
            "…but stay below saturation ({bw_last} GB/s)"
        );
        let v1 = a.volume.first().unwrap().1;
        let v_last = a.volume.last().unwrap().1;
        let nodes_ratio = NODES.last().unwrap() / NODES[0];
        let growth = v_last / v1;
        assert!(
            growth > 0.5 * nodes_ratio as f64,
            "aggregate volume must grow with nodes: ×{growth}"
        );
        assert!(
            a.allreduce_fraction > 0.2,
            "Allreduce fraction {}",
            a.allreduce_fraction
        );
    }

    #[test]
    fn tealeaf_energy_flat_poor_scalers_rising() {
        // §5.2: scalable codes (tealeaf) have ~constant energy over
        // node counts; poor scalers burn more.
        let cluster = presets::cluster_a();
        let f5 = fig5(&cluster, &quick(), &NODES).unwrap();
        let f6 = fig6(&f5);
        let series = |n: &str| &f6.series.iter().find(|(b, _)| b == n).unwrap().1;
        let tealeaf = series("tealeaf");
        let e_ratio = tealeaf.last().unwrap().2 / tealeaf[0].2;
        assert!(
            (0.7..1.4).contains(&e_ratio),
            "tealeaf energy must stay ~constant: ×{e_ratio}"
        );
        let soma = series("soma");
        let soma_ratio = soma.last().unwrap().2 / soma[0].2;
        assert!(soma_ratio > 1.5, "soma energy must rise: ×{soma_ratio}");
    }

    #[test]
    fn power_fraction_of_tdp_in_paper_band() {
        // §5.2: 74–85 % of CPU TDP on ClusterA at the full node set.
        let cluster = presets::cluster_a();
        let f5 = fig5(&cluster, &quick(), &[4]).unwrap();
        for s in &f5.sweeps {
            let r = s.results.last().unwrap();
            let tdp = cluster.node.tdp() * r.nodes_used as f64;
            let frac = r.power.package_w / tdp;
            assert!(
                (0.50..1.0).contains(&frac),
                "{}: package power fraction {frac}",
                s.benchmark
            );
        }
    }

    #[test]
    fn weather_superlinear_stronger_on_cluster_b() {
        // §5.1.3: weather's superlinear multi-node scaling is stronger
        // on ClusterB (larger caches). Weather-only sweep to 8 nodes,
        // where the cache fit fully engages on ClusterB.
        let exec = Executor::new(quick(), Default::default());
        let eff = |cluster: &spechpc_machine::cluster::ClusterSpec| {
            let cores = cluster.node.cores();
            let counts = [cores, 4 * cores, 8 * cores];
            let res = exec
                .sweep(cluster, "weather", WorkloadClass::Small, &counts)
                .unwrap();
            (res[0].step_seconds / res[2].step_seconds) / 8.0
        };
        let ea = eff(&presets::cluster_a());
        let eb = eff(&presets::cluster_b());
        assert!(eb > ea, "weather: effB {eb} must exceed effA {ea}");
        assert!(eb > 1.08, "weather on B must be superlinear: {eb}");
    }

    #[test]
    fn comm_ranking_includes_the_reduction_codes() {
        let cluster = presets::cluster_a();
        let f5 = fig5(&cluster, &quick(), &[1, 4]).unwrap();
        let ranking = comm_breakdown(&f5);
        // soma leads the Allreduce users (§5).
        let soma_allred = ranking
            .iter()
            .find(|(b, k, _)| b == "soma" && *k == EventKind::Allreduce)
            .map(|(_, _, f)| *f)
            .unwrap_or(0.0);
        assert!(soma_allred > 0.1, "soma Allreduce share {soma_allred}");
        // lbm's barrier appears.
        assert!(
            ranking
                .iter()
                .any(|(b, k, _)| b == "lbm" && *k == EventKind::Barrier),
            "lbm barrier missing from the ranking"
        );
    }
}
