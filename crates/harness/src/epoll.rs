//! Thin raw-syscall readiness binding for the [`serve`](crate::serve)
//! event loop.
//!
//! The workspace is dependency-free, so — exactly like the `signal(2)`
//! binding in [`serve`](crate::serve::install_signal_handlers) — the
//! kernel interface is declared by hand against the libc that `std`
//! already links. Two small abstractions are exposed:
//!
//! * [`Poller`] — readiness multiplexing over raw file descriptors:
//!   `epoll(7)` on Linux, `poll(2)` on other Unixes. Level-triggered on
//!   both backends, so a handler that does not fully drain a socket is
//!   simply woken again — no edge-trigger starvation hazards.
//! * [`WakePipe`] — a self-pipe that lets worker threads interrupt a
//!   blocked [`Poller::wait`] (the classic self-pipe trick; the read
//!   end is registered with the poller, the write end is handed to the
//!   workers).
//!
//! Tokens are opaque `u64`s chosen by the caller (the serve loop uses
//! connection-slab indices); readiness reports carry the token back, so
//! the loop never touches a file descriptor it did not register.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;

/// What a registered descriptor wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the idle state of a keep-alive connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Writable only — a connection flushing a response backlog.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Neither — parked (e.g. while a request is in the worker pool and
    /// the loop wants TCP backpressure instead of unbounded buffering).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Data can be read without blocking.
    pub readable: bool,
    /// Data can be written without blocking.
    pub writable: bool,
    /// The peer closed or the descriptor errored (`EPOLLHUP`/`EPOLLERR`
    /// class); the owner should read to EOF and tear down.
    pub closed: bool,
}

// ---------------------------------------------------------------------------
// Linux backend: epoll(7)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::{Interest, Readiness};
    use std::io;
    use std::os::fd::RawFd;

    // The kernel ABI wants the event struct packed on x86-64 (a 12-byte
    // layout); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// epoll(7)-backed readiness multiplexer (level-triggered).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&mut self, out: &mut Vec<Readiness>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // a signal (e.g. SIGTERM) — caller re-checks its latch
                }
                return Err(e);
            }
            for ev in events.iter().take(n as usize) {
                // Copy out of the possibly-packed struct before use.
                let (bits, token) = (ev.events, ev.data);
                out.push(Readiness {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: poll(2)
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Interest, Readiness};
    use std::io;
    use std::os::fd::RawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    // POSIX types `nfds` as `nfds_t`, which is `unsigned int` (32-bit)
    // on several Unix targets — declaring it `u64` here would make the
    // call pass a too-wide integer and silently truncate large counts.
    #[allow(non_camel_case_types)]
    type nfds_t = std::os::raw::c_uint;
    const _: () = assert!(
        std::mem::size_of::<nfds_t>() == 4,
        "poll(2) nfds_t must be 32-bit on this target; revisit the fallback binding"
    );

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: nfds_t, timeout: i32) -> i32;
    }

    /// poll(2)-backed fallback for non-Linux Unixes. Registration is a
    /// flat list rebuilt into a `pollfd` array per wait — O(conns) per
    /// tick, which is fine for the fallback tier.
    #[derive(Debug)]
    pub struct Poller {
        regs: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { regs: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.regs.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for r in &mut self.regs {
                if r.0 == fd {
                    *r = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.regs.retain(|r| r.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Readiness>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .regs
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let nfds: nfds_t = fds.len().try_into().map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "too many fds for poll(2)")
            })?;
            let n = unsafe { poll(fds.as_mut_ptr(), nfds, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&self.regs) {
                if pfd.revents != 0 {
                    out.push(Readiness {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        closed: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

/// Readiness multiplexer over raw file descriptors: `epoll(7)` on
/// Linux, `poll(2)` elsewhere. Level-triggered; see the module docs.
pub use imp::Poller;

// ---------------------------------------------------------------------------
// Self-pipe wakeup
// ---------------------------------------------------------------------------

const F_SETFL: i32 = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x4;

extern "C" {
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// A nonblocking self-pipe: [`Waker::wake`] from any thread makes the
/// poller's registered read end ready, interrupting a blocked
/// [`Poller::wait`]. Multiple wakes coalesce (the pipe is drained, not
/// counted), which is exactly what a completion-queue consumer wants.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                let e = io::Error::last_os_error();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(e);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The descriptor to register with the [`Poller`] (read interest).
    pub fn poll_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A cloneable sender half for worker threads.
    pub fn waker(&self) -> Waker {
        Waker {
            write_fd: self.write_fd,
        }
    }

    /// Drain pending wake bytes so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break; // empty (EAGAIN) or closed — either way, drained
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// The write half of a [`WakePipe`]. `Copy` + `Send`: hand one to every
/// worker thread. The fd stays valid for the lifetime of the pipe that
/// issued it — the serve loop joins its workers before dropping the
/// pipe, which upholds that.
#[derive(Debug, Clone, Copy)]
pub struct Waker {
    write_fd: RawFd,
}

impl Waker {
    /// Make the poller wake up. A full pipe (`EAGAIN`) is success — the
    /// consumer is already scheduled to wake.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            write(self.write_fd, &byte, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_listener_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no pending connection yet");

        let _client = TcpStream::connect(addr).unwrap();
        // Level-triggered: the pending accept stays readable until taken.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "listener never ready");
        }
    }

    #[test]
    fn poller_interest_modification_gates_events() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::NONE).unwrap();
        let mut client = client;
        client.write_all(b"x").unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(
            events.iter().all(|e| e.token != 1 || !e.readable),
            "parked interest must not report readability"
        );
        poller
            .modify(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "read interest restored, byte pending: {events:?}"
        );
        poller.remove(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn wake_pipe_rouses_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.poll_fd(), 42, Interest::READ).unwrap();
        let waker = pipe.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
            waker.wake(); // coalesces
        });
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            poller.wait(&mut events, 200).unwrap();
            if events.iter().any(|e| e.token == 42 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "wake never arrived");
        }
        pipe.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(
            events.iter().all(|e| e.token != 42),
            "drained pipe must quiesce: {events:?}"
        );
        t.join().unwrap();
    }
}
