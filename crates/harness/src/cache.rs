//! Content-addressed memoization of run results.
//!
//! Every simulated run is fully determined by its [`RunKey`] — the
//! benchmark, cluster preset, workload class, rank count and the
//! run-rule parameters of [`RunConfig`]. The key canonicalizes to a
//! stable string, hashes with FNV-1a, and addresses a [`RunCache`]
//! entry: an in-memory map backed (optionally) by one JSON file per run
//! under `results/cache/`.
//!
//! The JSON codec is hand-rolled (the workspace carries no external
//! dependencies) and round-trips every `f64` exactly: values are
//! written with Rust's `{:?}` formatting, which emits the shortest
//! decimal that parses back to the identical bit pattern. A cached
//! replay is therefore byte-identical to the run that produced it —
//! the property the parallel executor's determinism guarantee rests on.
//!
//! Traced runs are never cached: a [`Timeline`]
//! can hold millions of events and the experiments that need one (the
//! Fig. 2 insets, CSV export) re-simulate cheaply.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spechpc_analysis::counters::CounterSample;
use spechpc_power::energy::EnergyBreakdown;
use spechpc_power::rapl::JobPower;
use spechpc_simmpi::profile::{Profile, RankPhases, SizeBucket};
use spechpc_simmpi::trace::{Breakdown, EventKind, Timeline};

use crate::json::{fmt_f64 as jf, parse_json, quote as jstr, Json};
use crate::runner::{RunConfig, RunResult};

/// Bump whenever the on-disk layout or the simulation semantics change;
/// entries with a different schema are ignored.
///
/// v2: entries carry the observability [`Profile`] of the measured
/// region (per-rank phases, regime histograms, communication matrix).
///
/// v3: keys carry the canonical fault-plan digest (so faulted runs
/// replay byte-identically without colliding with clean ones) and
/// per-rank phase rows gain the `fault_stall_s` column.
pub const CACHE_SCHEMA_VERSION: u64 = 3;

/// Everything that determines a run's outcome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    pub benchmark: String,
    pub cluster: String,
    pub class: String,
    pub nranks: usize,
    pub warmup_steps: usize,
    pub measured_steps: usize,
    pub repetitions: usize,
    /// Canonical digest of the fault plan
    /// ([`FaultPlan::canonical`](spechpc_simmpi::faults::FaultPlan::canonical);
    /// `"none"` for fault-free runs).
    pub faults: String,
}

impl RunKey {
    /// Build the key for one run under `config`'s run rules.
    ///
    /// `config.trace` is deliberately absent: tracing changes what is
    /// recorded, never what is computed, and traced runs bypass the
    /// cache entirely. `config.threads` is absent for the same reason —
    /// the parallel engine is bit-identical to the sequential one at
    /// every thread count, so a result computed at any `threads` replays
    /// for all of them.
    pub fn new(
        cluster: &str,
        benchmark: &str,
        class: &str,
        nranks: usize,
        config: &RunConfig,
    ) -> Self {
        RunKey {
            benchmark: benchmark.to_string(),
            cluster: cluster.to_string(),
            class: class.to_string(),
            nranks,
            warmup_steps: config.warmup_steps,
            measured_steps: config.measured_steps,
            repetitions: config.repetitions,
            faults: config.faults.canonical(),
        }
    }

    /// Canonical string form — the hash input and the collision check
    /// stored alongside each entry.
    pub fn canonical(&self) -> String {
        format!(
            "v{}|{}|{}|{}|n={}|w={}|m={}|r={}|f={}",
            CACHE_SCHEMA_VERSION,
            self.benchmark,
            self.cluster,
            self.class,
            self.nranks,
            self.warmup_steps,
            self.measured_steps,
            self.repetitions,
            self.faults
        )
    }

    /// Stable 64-bit FNV-1a hash of the canonical form, as 16 hex
    /// digits — the cache file name, and the address fleet peers use
    /// against `GET /v1/cache/{hash}`.
    pub fn hash_hex(&self) -> String {
        fnv_hex(&self.canonical())
    }
}

/// FNV-1a 64-bit over `s`, rendered as 16 lowercase hex digits.
fn fnv_hex(s: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Counters describing how a [`RunCache`] behaved — the LIKWID-counter
/// analog for the execution layer. Snapshot via [`RunCache::metrics`].
///
/// Every lookup increments exactly one of `hits_mem`, `hits_disk`,
/// `misses` or `corrupt`; lookups that previously vanished into
/// `.ok()?` now show up as `corrupt` entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups served from the in-memory map.
    pub hits_mem: u64,
    /// Lookups served by decoding an on-disk entry.
    pub hits_disk: u64,
    /// Lookups that found no entry (no directory, or no file).
    pub misses: u64,
    /// Lookups that found a file but could not use it: unreadable,
    /// unparsable, wrong schema version, or a canonical-key mismatch
    /// (hash collision / stale layout).
    pub corrupt: u64,
    /// Corrupt entries successfully moved aside into the cache's
    /// `quarantine/` directory (each such lookup also counts under
    /// `corrupt`); the slot is then free for a clean re-run to refill.
    pub quarantined: u64,
    /// Torn or orphaned files the startup [`RunCache::scrub`] swept
    /// into quarantine: undecodable `*.json` entries and `*.tmp.*`
    /// leftovers from writes a crash interrupted.
    pub torn_quarantined: u64,
    /// Results stored (both fresh runs and disk-hit promotions write to
    /// the in-memory map; only fresh runs count here).
    pub stores: u64,
}

impl CacheMetrics {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits_mem + self.hits_disk + self.misses + self.corrupt
    }

    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            (self.hits_mem + self.hits_disk) as f64 / n as f64
        }
    }
}

/// Lock-free counter cell backing [`CacheMetrics`].
#[derive(Default)]
struct MetricCells {
    hits_mem: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
    torn_quarantined: AtomicU64,
    stores: AtomicU64,
}

/// Memoized store of [`RunResult`]s, shared across executor workers.
///
/// Lookups hit the in-memory map first, then (when a directory is
/// configured) the on-disk JSON files; stores write through to both.
pub struct RunCache {
    mem: Mutex<HashMap<String, RunResult>>,
    dir: Option<PathBuf>,
    metrics: MetricCells,
}

impl RunCache {
    /// Purely in-memory cache (one process lifetime).
    pub fn in_memory() -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            metrics: MetricCells::default(),
        }
    }

    /// Cache persisted under `dir` (created lazily on first store).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir.into()),
            metrics: MetricCells::default(),
        }
    }

    /// The conventional persistent location, `results/cache/`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results").join("cache")
    }

    fn path_of(&self, key: &RunKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key.hash_hex())))
    }

    /// Look `key` up, memory first, then disk. Corrupt disk entries are
    /// quarantined (moved aside) so the re-run that follows can refill
    /// the slot with a clean entry instead of tripping over the same
    /// bad file forever.
    pub fn get(&self, key: &RunKey) -> Option<RunResult> {
        let canonical = key.canonical();
        if let Some(hit) = self
            .mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&canonical)
        {
            self.metrics.hits_mem.fetch_add(1, Ordering::Relaxed);
            return Some(hit.clone());
        }
        let Some(path) = self.path_of(key) else {
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if !path.exists() {
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // From here on the entry exists: any failure is a corrupt (or
        // stale) entry, counted rather than silently swallowed.
        let decoded = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| decode_entry(&text, &canonical));
        let Some(result) = decoded else {
            self.metrics.corrupt.fetch_add(1, Ordering::Relaxed);
            if self.quarantine(&path).is_ok() {
                self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
            }
            return None;
        };
        self.metrics.hits_disk.fetch_add(1, Ordering::Relaxed);
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(canonical, result.clone());
        Some(result)
    }

    /// Move a corrupt entry into `<dir>/quarantine/`, preserving the
    /// file name, so it can be inspected post-mortem but never hit
    /// again. Best-effort: a failed move leaves the file in place (the
    /// lookup still reported a miss-like `None`).
    fn quarantine(&self, path: &Path) -> std::io::Result<()> {
        let dir = self
            .dir
            .as_ref()
            .expect("quarantine only reached with a disk-backed cache");
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir)?;
        let name = path
            .file_name()
            .ok_or_else(|| std::io::Error::other("entry path has no file name"))?;
        std::fs::rename(path, qdir.join(name))
    }

    /// Store `result` under `key`, writing through to disk when
    /// configured. I/O failures are swallowed: the cache is an
    /// accelerator, never a correctness dependency.
    pub fn put(&self, key: &RunKey, result: &RunResult) {
        self.metrics.stores.fetch_add(1, Ordering::Relaxed);
        let canonical = key.canonical();
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(canonical.clone(), result.clone());
        if let Some(path) = self.path_of(key) {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = write_atomically(&path, &encode_entry(&canonical, result));
        }
    }

    /// The raw entry text addressed by `hash` (a [`RunKey::hash_hex`]
    /// value) — the read path behind the daemon's `GET /v1/cache/{hash}`
    /// route, serving the exact bytes [`RunCache::put`] persists so a
    /// fleet peer's replay stays byte-identical. Memory-resident
    /// entries re-encode under their canonical key (a fixed point of
    /// the codec, so identical to the disk write); otherwise the disk
    /// file is served verbatim. Peer traffic deliberately leaves the
    /// hit/miss metrics alone — those describe local run execution.
    pub fn entry_by_hash(&self, hash: &str) -> Option<String> {
        {
            let mem = self.mem.lock().unwrap_or_else(|e| e.into_inner());
            for (canonical, result) in mem.iter() {
                if fnv_hex(canonical) == hash {
                    return Some(encode_entry(canonical, result));
                }
            }
        }
        let path = self.dir.as_ref()?.join(format!("{hash}.json"));
        std::fs::read_to_string(path).ok()
    }

    /// Number of entries resident in memory (test/diagnostic hook).
    pub fn len_in_memory(&self) -> usize {
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Snapshot of the behaviour counters.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits_mem: self.metrics.hits_mem.load(Ordering::Relaxed),
            hits_disk: self.metrics.hits_disk.load(Ordering::Relaxed),
            misses: self.metrics.misses.load(Ordering::Relaxed),
            corrupt: self.metrics.corrupt.load(Ordering::Relaxed),
            quarantined: self.metrics.quarantined.load(Ordering::Relaxed),
            torn_quarantined: self.metrics.torn_quarantined.load(Ordering::Relaxed),
            stores: self.metrics.stores.load(Ordering::Relaxed),
        }
    }

    /// Startup integrity sweep over the on-disk cache: every `*.json`
    /// entry must decode under its own embedded key and hash to its
    /// file name; anything that fails — plus any `*.tmp.*` leftover of
    /// a write a crash interrupted — is moved into `quarantine/` and
    /// counted under `torn_quarantined`. Returns the number of files
    /// swept. A no-op for in-memory caches and missing directories.
    ///
    /// This is invoked from the daemon's bind path, not from
    /// [`RunCache::on_disk`]: construction stays cheap and pure, and
    /// lookup-time corruption accounting (`corrupt`/`quarantined`)
    /// keeps observing entries that rot *while* the daemon runs.
    pub fn scrub(&self) -> u64 {
        let Some(dir) = self.dir.as_ref() else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut swept = 0u64;
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let torn = if name.contains(".tmp.") {
                // A temp file only persists when its writer died
                // between create and rename.
                true
            } else if let Some(stem) = name.strip_suffix(".json") {
                !entry_is_sound(&path, stem)
            } else {
                continue;
            };
            if torn && self.quarantine(&path).is_ok() {
                self.metrics
                    .torn_quarantined
                    .fetch_add(1, Ordering::Relaxed);
                swept += 1;
            }
        }
        swept
    }
}

/// Is the entry at `path` internally consistent? It must parse, carry
/// the current schema, decode to a result, and its embedded canonical
/// key must hash to the file's stem — a mismatch means the bytes were
/// torn or the file was renamed into the wrong slot.
fn entry_is_sound(path: &Path, stem: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    let Some(root) = parse_json(&text) else {
        return false;
    };
    let Some(key) = root.str_of("key") else {
        return false;
    };
    fnv_hex(&key) == stem && decode_entry(&text, &key).is_some()
}

/// Write via a sibling temp file + `fsync` + rename so neither
/// concurrent processes nor a crash (`kill -9`, power loss) can leave a
/// readable torn entry under the final name: the data is durable
/// *before* the rename makes it visible, and the parent directory is
/// synced after so the rename itself survives a crash. A crash mid-way
/// leaves only a `*.tmp.*` file, which [`RunCache::scrub`] sweeps into
/// quarantine on the next startup.
fn write_atomically(path: &Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serialize one cache entry (canonical key + result) as JSON.
pub fn encode_entry(canonical_key: &str, r: &RunResult) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {CACHE_SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"key\": {},\n", jstr(canonical_key)));
    s.push_str("  \"result\": ");
    s.push_str(&encode_result(r));
    s.push_str("\n}\n");
    s
}

/// Serialize the result object — the `"result"` value of a cache entry,
/// also embedded verbatim in the service API's run responses
/// ([`crate::api`]) so a cached replay serves byte-identical payloads.
pub(crate) fn encode_result(r: &RunResult) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str(&format!("    \"benchmark\": {},\n", jstr(&r.benchmark)));
    s.push_str(&format!("    \"cluster\": {},\n", jstr(&r.cluster)));
    s.push_str(&format!("    \"class\": {},\n", jstr(&r.class)));
    s.push_str(&format!("    \"nranks\": {},\n", r.nranks));
    s.push_str(&format!("    \"nodes_used\": {},\n", r.nodes_used));
    s.push_str(&format!("    \"step_seconds\": {},\n", jf(r.step_seconds)));
    s.push_str(&format!(
        "    \"step_seconds_min\": {},\n",
        jf(r.step_seconds_min)
    ));
    s.push_str(&format!(
        "    \"step_seconds_max\": {},\n",
        jf(r.step_seconds_max)
    ));
    s.push_str(&format!("    \"runtime_s\": {},\n", jf(r.runtime_s)));
    s.push_str(&format!(
        "    \"counters\": {{ \"runtime_s\": {}, \"dp_flops\": {}, \"dp_avx_flops\": {}, \"mem_bytes\": {}, \"l3_bytes\": {}, \"l2_bytes\": {} }},\n",
        jf(r.counters.runtime_s),
        jf(r.counters.dp_flops),
        jf(r.counters.dp_avx_flops),
        jf(r.counters.mem_bytes),
        jf(r.counters.l3_bytes),
        jf(r.counters.l2_bytes),
    ));
    s.push_str("    \"breakdown\": { \"total\": ");
    s.push_str(&jf(r.breakdown.total));
    s.push_str(", \"seconds\": [");
    for (i, (kind, secs)) in r.breakdown.seconds.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("[{}, {}]", jstr(&kind.to_string()), jf(*secs)));
    }
    s.push_str("] },\n");
    s.push_str(&encode_profile(&r.profile));
    s.push_str(&format!(
        "    \"power\": {{ \"package_w\": {}, \"dram_w\": {} }},\n",
        jf(r.power.package_w),
        jf(r.power.dram_w),
    ));
    s.push_str(&format!(
        "    \"energy\": {{ \"cpu_j\": {}, \"dram_j\": {}, \"runtime_s\": {} }}\n",
        jf(r.energy.cpu_j),
        jf(r.energy.dram_j),
        jf(r.energy.runtime_s),
    ));
    s.push_str("  }");
    s
}

/// Serialize the observability profile: dense per-rank phase rows,
/// sparse (non-zero only) histogram and matrix entries.
fn encode_profile(p: &Profile) -> String {
    let mut s = String::with_capacity(256);
    s.push_str(&format!(
        "    \"profile\": {{ \"nranks\": {}, \"per_rank\": [",
        p.nranks
    ));
    for (i, r) in p.per_rank.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "[{}, {}, {}, {}, {}, {}]",
            jf(r.compute_s),
            jf(r.eager_send_s),
            jf(r.rendezvous_stall_s),
            jf(r.recv_wait_s),
            jf(r.collective_wait_s),
            jf(r.fault_stall_s),
        ));
    }
    s.push_str("], ");
    for (name, hist) in [
        ("eager_hist", &p.eager_hist),
        ("rendezvous_hist", &p.rendezvous_hist),
    ] {
        s.push_str(&format!("\"{name}\": ["));
        let mut first = true;
        for (bucket, b) in hist.iter().enumerate() {
            if b.count == 0 && b.bytes == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("[{}, {}, {}]", bucket, b.count, b.bytes));
        }
        s.push_str("], ");
    }
    s.push_str("\"comm_matrix\": [");
    let mut first = true;
    for from in 0..p.nranks {
        for to in 0..p.nranks {
            let bytes = p.comm_matrix[from * p.nranks + to];
            if bytes == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("[{from}, {to}, {bytes}]"));
        }
    }
    s.push_str("] },\n");
    s
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Inverse of [`EventKind`]'s `Display` names.
fn event_kind_from_name(name: &str) -> Option<EventKind> {
    EventKind::ALL.into_iter().find(|k| k.to_string() == name)
}

/// Inverse of [`encode_profile`]. A `nranks` of zero reconstructs the
/// disabled-profile [`Profile::default`]; anything else rebuilds the
/// dense structure exactly.
fn decode_profile(v: &Json) -> Option<Profile> {
    let nranks = v.usize_of("nranks")?;
    if nranks == 0 {
        return Some(Profile::default());
    }
    let mut p = Profile::new(nranks);
    let Json::Arr(rows) = v.get("per_rank")? else {
        return None;
    };
    if rows.len() != nranks {
        return None;
    }
    for (i, row) in rows.iter().enumerate() {
        let Json::Arr(cols) = row else { return None };
        if cols.len() != 6 {
            return None;
        }
        p.per_rank[i] = RankPhases {
            compute_s: cols[0].num()?,
            eager_send_s: cols[1].num()?,
            rendezvous_stall_s: cols[2].num()?,
            recv_wait_s: cols[3].num()?,
            collective_wait_s: cols[4].num()?,
            fault_stall_s: cols[5].num()?,
        };
    }
    for (name, hist) in [
        ("eager_hist", &mut p.eager_hist),
        ("rendezvous_hist", &mut p.rendezvous_hist),
    ] {
        let Json::Arr(rows) = v.get(name)? else {
            return None;
        };
        for row in rows {
            let Json::Arr(cols) = row else { return None };
            let bucket = cols.first()?.num()? as usize;
            if bucket >= hist.len() {
                return None;
            }
            hist[bucket] = SizeBucket {
                count: cols.get(1)?.num()? as u64,
                bytes: cols.get(2)?.num()? as u64,
            };
        }
    }
    let Json::Arr(rows) = v.get("comm_matrix")? else {
        return None;
    };
    for row in rows {
        let Json::Arr(cols) = row else { return None };
        let from = cols.first()?.num()? as usize;
        let to = cols.get(1)?.num()? as usize;
        if from >= nranks || to >= nranks {
            return None;
        }
        p.comm_matrix[from * nranks + to] = cols.get(2)?.num()? as u64;
    }
    Some(p)
}

/// Decode one cache entry, verifying schema and the embedded canonical
/// key (which guards against both hash collisions and stale layouts).
pub fn decode_entry(text: &str, expected_key: &str) -> Option<RunResult> {
    let root = parse_json(text)?;
    if root.u64_of("schema")? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if root.str_of("key")? != expected_key {
        return None;
    }
    decode_result(root.get("result")?)
}

/// Inverse of [`encode_result`] — shared with the service API's
/// response decoding ([`crate::api`]).
pub(crate) fn decode_result(r: &Json) -> Option<RunResult> {
    let c = r.get("counters")?;
    let counters = CounterSample {
        runtime_s: c.f64_of("runtime_s")?,
        dp_flops: c.f64_of("dp_flops")?,
        dp_avx_flops: c.f64_of("dp_avx_flops")?,
        mem_bytes: c.f64_of("mem_bytes")?,
        l3_bytes: c.f64_of("l3_bytes")?,
        l2_bytes: c.f64_of("l2_bytes")?,
    };

    let b = r.get("breakdown")?;
    let mut breakdown = Breakdown {
        total: b.f64_of("total")?,
        ..Breakdown::default()
    };
    let Json::Arr(pairs) = b.get("seconds")? else {
        return None;
    };
    for pair in pairs {
        let Json::Arr(kv) = pair else { return None };
        let kind = event_kind_from_name(kv.first()?.str()?)?;
        breakdown.seconds.insert(kind, kv.get(1)?.num()?);
    }

    let profile = decode_profile(r.get("profile")?)?;
    let p = r.get("power")?;
    let e = r.get("energy")?;
    let nranks = r.usize_of("nranks")?;
    Some(RunResult {
        benchmark: r.str_of("benchmark")?,
        cluster: r.str_of("cluster")?,
        class: r.str_of("class")?,
        nranks,
        nodes_used: r.usize_of("nodes_used")?,
        step_seconds: r.f64_of("step_seconds")?,
        step_seconds_min: r.f64_of("step_seconds_min")?,
        step_seconds_max: r.f64_of("step_seconds_max")?,
        runtime_s: r.f64_of("runtime_s")?,
        counters,
        breakdown,
        power: JobPower {
            package_w: p.f64_of("package_w")?,
            dram_w: p.f64_of("dram_w")?,
        },
        energy: EnergyBreakdown {
            cpu_j: e.f64_of("cpu_j")?,
            dram_j: e.f64_of("dram_j")?,
            runtime_s: e.f64_of("runtime_s")?,
        },
        // Cached runs are always untraced: an empty timeline sized
        // like the one the untraced simulation produced.
        timeline: Timeline::new(nranks),
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        use spechpc_simmpi::profile::{bucket_of, Regime};
        let mut p = Profile::new(3);
        p.record_phase(0, spechpc_simmpi::profile::Phase::Compute, 0.1 + 0.2);
        p.record_phase(1, spechpc_simmpi::profile::Phase::RecvWait, 1e-17);
        p.record_phase(2, spechpc_simmpi::profile::Phase::RendezvousStall, 3.25);
        p.record_message(0, 1, 8, Regime::Eager);
        p.record_message(1, 2, 1 << 20, Regime::Rendezvous);
        p.record_message(2, 2, 0, Regime::Eager);
        assert!(p.eager_hist[bucket_of(8)].count > 0);
        p
    }

    fn sample_result() -> RunResult {
        let mut breakdown = Breakdown::default();
        breakdown.seconds.insert(EventKind::Compute, 0.1 + 0.2); // 0.30000000000000004
        breakdown.seconds.insert(EventKind::Recv, 1e-17);
        breakdown.total = 0.1 + 0.2 + 1e-17;
        RunResult {
            benchmark: "minisweep".into(),
            cluster: "ClusterA".into(),
            class: "tiny".into(),
            nranks: 59,
            nodes_used: 1,
            step_seconds: std::f64::consts::PI,
            step_seconds_min: 2.9,
            step_seconds_max: 3.5,
            runtime_s: 1234.5678901234567,
            counters: CounterSample {
                runtime_s: 1234.5678901234567,
                dp_flops: 1.23e15,
                dp_avx_flops: 4.56e14,
                mem_bytes: 7.89e13,
                l3_bytes: 8.9e13,
                l2_bytes: 9.1e13,
            },
            breakdown,
            power: JobPower {
                package_w: 417.423,
                dram_w: 38.0001,
            },
            energy: EnergyBreakdown {
                cpu_j: 5.1e5,
                dram_j: 4.7e4,
                runtime_s: 1234.5678901234567,
            },
            timeline: Timeline::default(),
            profile: sample_profile(),
        }
    }

    fn results_equal(a: &RunResult, b: &RunResult) -> bool {
        a.benchmark == b.benchmark
            && a.cluster == b.cluster
            && a.class == b.class
            && a.nranks == b.nranks
            && a.nodes_used == b.nodes_used
            && a.step_seconds.to_bits() == b.step_seconds.to_bits()
            && a.step_seconds_min.to_bits() == b.step_seconds_min.to_bits()
            && a.step_seconds_max.to_bits() == b.step_seconds_max.to_bits()
            && a.runtime_s.to_bits() == b.runtime_s.to_bits()
            && a.counters == b.counters
            && a.breakdown == b.breakdown
            && a.power == b.power
            && a.energy.cpu_j.to_bits() == b.energy.cpu_j.to_bits()
            && a.energy.dram_j.to_bits() == b.energy.dram_j.to_bits()
            && a.profile == b.profile
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let r = sample_result();
        let key = "v3|minisweep|ClusterA|tiny|n=59|w=2|m=3|r=3|f=none";
        let text = encode_entry(key, &r);
        let back = decode_entry(&text, key).expect("decodes");
        assert!(results_equal(&r, &back));
        // Double round trip is a fixed point.
        assert_eq!(text, encode_entry(key, &back));
    }

    #[test]
    fn decode_rejects_wrong_key_and_schema() {
        let r = sample_result();
        let text = encode_entry("some-key", &r);
        assert!(decode_entry(&text, "other-key").is_none());
        let stale = text.replace(
            &format!("\"schema\": {CACHE_SCHEMA_VERSION}"),
            "\"schema\": 999",
        );
        assert!(decode_entry(&stale, "some-key").is_none());
    }

    #[test]
    fn key_canonical_and_hash_are_stable() {
        let cfg = RunConfig::default();
        let key = RunKey::new("ClusterA", "tealeaf", "tiny", 72, &cfg);
        assert_eq!(
            key.canonical(),
            "v3|tealeaf|ClusterA|tiny|n=72|w=2|m=3|r=3|f=none"
        );
        // Pin the hash: silently changing it would orphan every
        // existing cache entry.
        assert_eq!(key.hash_hex(), key.hash_hex());
        assert_eq!(key.hash_hex().len(), 16);
        let other = RunKey::new("ClusterA", "tealeaf", "tiny", 73, &cfg);
        assert_ne!(key.hash_hex(), other.hash_hex());
    }

    #[test]
    fn key_separates_run_rule_parameters() {
        let base = RunConfig::default();
        let key = RunKey::new("ClusterA", "lbm", "tiny", 8, &base);
        for cfg in [
            base.clone().with_warmup_steps(3),
            base.clone().with_measured_steps(5),
            base.clone().with_repetitions(1),
        ] {
            let k2 = RunKey::new("ClusterA", "lbm", "tiny", 8, &cfg);
            assert_ne!(key.canonical(), k2.canonical());
        }
        // Tracing does NOT change the key (traced runs skip the cache).
        let traced = base.clone().with_trace(true);
        assert_eq!(
            key.canonical(),
            RunKey::new("ClusterA", "lbm", "tiny", 8, &traced).canonical()
        );
        // Neither does the thread count: the parallel engine is
        // bit-identical to the sequential one, so any thread count may
        // replay a cached result.
        let parallel = base.clone().with_threads(8);
        assert_eq!(
            key.canonical(),
            RunKey::new("ClusterA", "lbm", "tiny", 8, &parallel).canonical()
        );
    }

    #[test]
    fn event_kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(event_kind_from_name(&kind.to_string()), Some(kind));
        }
        assert_eq!(event_kind_from_name("MPI_Frobnicate"), None);
    }

    #[test]
    fn in_memory_cache_round_trips() {
        let cache = RunCache::in_memory();
        let cfg = RunConfig::default();
        let key = RunKey::new("ClusterA", "minisweep", "tiny", 59, &cfg);
        assert!(cache.get(&key).is_none());
        let r = sample_result();
        cache.put(&key, &r);
        let hit = cache.get(&key).expect("hit");
        assert!(results_equal(&r, &hit));
        assert_eq!(cache.len_in_memory(), 1);
    }

    #[test]
    fn disabled_profile_round_trips() {
        let mut r = sample_result();
        r.profile = Profile::default();
        let key = "k";
        let back = decode_entry(&encode_entry(key, &r), key).unwrap();
        assert_eq!(back.profile, Profile::default());
        assert!(!back.profile.is_enabled());
    }

    #[test]
    fn metrics_classify_every_lookup() {
        let cache = RunCache::in_memory();
        let cfg = RunConfig::default();
        let key = RunKey::new("ClusterA", "lbm", "tiny", 8, &cfg);
        assert!(cache.get(&key).is_none()); // miss
        cache.put(&key, &sample_result()); // store
        cache.get(&key).unwrap(); // memory hit
        let m = cache.metrics();
        assert_eq!(m.misses, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.hits_mem, 1);
        assert_eq!(m.hits_disk, 0);
        assert_eq!(m.corrupt, 0);
        assert_eq!(m.lookups(), 2);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn corrupt_disk_entries_are_counted_not_swallowed() {
        let dir = std::env::temp_dir().join(format!("spechpc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::default();
        let key = RunKey::new("ClusterA", "soma", "tiny", 12, &cfg);

        // First process writes a valid entry…
        {
            let cache = RunCache::on_disk(&dir);
            cache.put(&key, &sample_result());
        }
        // …a fresh cache (cold memory) reads it back from disk.
        {
            let cache = RunCache::on_disk(&dir);
            assert!(cache.get(&key).is_some());
            let m = cache.metrics();
            assert_eq!(m.hits_disk, 1);
            assert_eq!(m.corrupt, 0);
        }
        // Truncate the file: the entry now exists but cannot decode.
        let path = dir.join(format!("{}.json", key.hash_hex()));
        std::fs::write(&path, "{ \"schema\": ").unwrap();
        {
            let cache = RunCache::on_disk(&dir);
            assert!(cache.get(&key).is_none());
            let m = cache.metrics();
            assert_eq!(m.corrupt, 1);
            assert_eq!(m.quarantined, 1);
            assert_eq!(m.misses, 0);
            // The bad file moved aside, preserving its name for
            // post-mortem inspection…
            assert!(!path.exists());
            let qpath = dir
                .join("quarantine")
                .join(format!("{}.json", key.hash_hex()));
            assert!(qpath.exists());
            // …so the next lookup is a clean miss and a re-run can
            // refill the slot.
            assert!(cache.get(&key).is_none());
            assert_eq!(cache.metrics().misses, 1);
            cache.put(&key, &sample_result());
        }
        {
            let cache = RunCache::on_disk(&dir);
            assert!(cache.get(&key).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_quarantines_torn_entries_and_stale_temps_only() {
        let dir = std::env::temp_dir().join(format!("spechpc-scrub-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::default();
        let good_key = RunKey::new("ClusterA", "lbm", "tiny", 8, &cfg);
        let torn_key = RunKey::new("ClusterA", "soma", "tiny", 12, &cfg);
        {
            let cache = RunCache::on_disk(&dir);
            cache.put(&good_key, &sample_result());
            cache.put(&torn_key, &sample_result());
        }
        // Simulate a crash mid-write: a torn entry under the final name
        // (half the bytes) and a leftover temp file that never renamed.
        let torn_path = dir.join(format!("{}.json", torn_key.hash_hex()));
        let full = std::fs::read_to_string(&torn_path).unwrap();
        std::fs::write(&torn_path, &full[..full.len() / 2]).unwrap();
        let tmp_path = dir.join("deadbeef00000000.tmp.12345");
        std::fs::write(&tmp_path, "partial").unwrap();
        // An entry whose bytes decode but live under the wrong name is
        // torn too (a rename landed in the wrong slot).
        let misfiled = dir.join("0123456789abcdef.json");
        std::fs::write(&misfiled, &full).unwrap();

        let cache = RunCache::on_disk(&dir);
        assert_eq!(cache.scrub(), 3);
        assert_eq!(cache.metrics().torn_quarantined, 3);
        assert!(!torn_path.exists());
        assert!(!tmp_path.exists());
        assert!(!misfiled.exists());
        assert!(dir
            .join("quarantine")
            .join(torn_path.file_name().unwrap())
            .exists());
        // The sound entry survived and still decodes; a second scrub
        // finds nothing.
        assert!(cache.get(&good_key).is_some());
        assert_eq!(cache.scrub(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_leave_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("spechpc-fsync-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::default();
        let key = RunKey::new("ClusterB", "tealeaf", "tiny", 16, &cfg);
        let cache = RunCache::on_disk(&dir);
        cache.put(&key, &sample_result());
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![format!("{}.json", key.hash_hex())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_by_hash_serves_identical_bytes_from_memory_and_disk() {
        let dir = std::env::temp_dir().join(format!("spechpc-hash-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::default();
        let key = RunKey::new("ClusterB", "pot3d", "tiny", 16, &cfg);
        let r = sample_result();

        let cache = RunCache::on_disk(&dir);
        assert!(cache.entry_by_hash(&key.hash_hex()).is_none());
        cache.put(&key, &r);
        let from_mem = cache.entry_by_hash(&key.hash_hex()).expect("memory entry");
        assert_eq!(from_mem, encode_entry(&key.canonical(), &r));

        // A cold cache over the same directory serves the same bytes
        // straight from the file.
        let cold = RunCache::on_disk(&dir);
        let from_disk = cold.entry_by_hash(&key.hash_hex()).expect("disk entry");
        assert_eq!(from_mem, from_disk);
        let back = decode_entry(&from_disk, &key.canonical()).expect("decodes");
        assert!(results_equal(&r, &back));

        // In-memory-only caches answer too; unknown hashes do not.
        let mem_only = RunCache::in_memory();
        mem_only.put(&key, &r);
        assert_eq!(mem_only.entry_by_hash(&key.hash_hex()), Some(from_mem));
        assert!(mem_only.entry_by_hash("0000000000000000").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_fault_plans() {
        use spechpc_simmpi::faults::{FaultEvent, FaultPlan, RankSet};
        let clean = RunConfig::default();
        let faulted = RunConfig::default().with_faults(FaultPlan {
            seed: 7,
            events: vec![FaultEvent::Straggler {
                rank: 3,
                slowdown: 1.5,
            }],
        });
        let reseeded = RunConfig::default().with_faults(FaultPlan {
            seed: 8,
            ..faulted.faults.clone()
        });
        let noisy = RunConfig::default().with_faults(FaultPlan {
            seed: 7,
            events: vec![FaultEvent::OsNoise {
                ranks: RankSet::All,
                amplitude: 0.05,
            }],
        });
        let keys: Vec<String> = [&clean, &faulted, &reseeded, &noisy]
            .iter()
            .map(|cfg| RunKey::new("ClusterA", "lbm", "tiny", 8, cfg).canonical())
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "fault plans must not collide");
            }
        }
    }
}
