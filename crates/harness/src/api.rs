//! The typed request/response vocabulary of the harness — one API for
//! the CLI, the `spechpc serve` daemon ([`serve`](crate::serve)) and
//! library users.
//!
//! A [`RunRequest`] names one grid point plus its run rules; a
//! [`SuiteRequest`] names a whole suite execution. Both serialize
//! through the in-tree [`json`](crate::json) codec, dispatch against a
//! resident [`Executor`] ([`dispatch_run`] / [`dispatch_suite`]) and
//! come back as a [`RunResponse`] / [`SuiteResponse`] or a typed
//! [`ApiError`] carrying an HTTP status and a machine-readable code.
//!
//! The run-response payload embeds the *cache encoding* of the result
//! ([`cache::encode_entry`]'s `"result"` object), so a request answered
//! from the content-addressed store is byte-identical to the one that
//! simulated — the service inherits the cache's replay guarantee.

use spechpc_kernels::common::config::WorkloadClass;
use spechpc_machine::cluster::ClusterSpec;
use spechpc_machine::presets;
use spechpc_simmpi::engine::SimError;
use spechpc_simmpi::faults::{FaultEvent, FaultPlan, RankSet};

use crate::cache;
use crate::error::HarnessError;
use crate::exec::{Executor, RunSpec};
use crate::json::{fmt_f64, parse_json, quote, Json};
use crate::report::fmt;
use crate::runner::{RunConfig, RunResult};
use crate::suite::{Suite, SuiteReport};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A failed API call: HTTP status, stable machine-readable code, and a
/// human-readable message. This is the *single* error surface clients
/// see — every [`HarnessError`] maps through [`ApiError::from`], and
/// the CLI derives its process exit codes from the same mapping
/// ([`ApiError::exit_code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ApiError {
    /// HTTP status the daemon answers with.
    pub status: u16,
    /// Stable machine-readable code (`snake_case`), independent of the
    /// message wording.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    pub fn new(status: u16, code: impl Into<String>, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code: code.into(),
            message: message.into(),
        }
    }

    /// 400 — the request itself is malformed.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError::new(400, "bad_request", message)
    }

    /// 404 — no such route or resource.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError::new(404, "not_found", message)
    }

    /// 429 — the executor is saturated; retry later.
    pub fn saturated(message: impl Into<String>) -> Self {
        ApiError::new(429, "saturated", message)
    }

    /// 503 — the daemon is draining for shutdown.
    pub fn shutting_down() -> Self {
        ApiError::new(503, "shutting_down", "server is draining for shutdown")
    }

    /// 500 — unexpected internal failure.
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError::new(500, "internal", message)
    }

    /// 207 — a suite completed with some failed benchmarks (the
    /// partial-results analog of Multi-Status).
    pub fn partial_suite(message: impl Into<String>) -> Self {
        ApiError::new(207, "partial_suite", message)
    }

    /// 408 — the client did not deliver a complete request within the
    /// daemon's read deadline (the slow-loris reaper's answer).
    pub fn read_timeout(deadline_s: f64) -> Self {
        ApiError::new(
            408,
            "read_timeout",
            format!("request not received within the {deadline_s}s read deadline"),
        )
    }

    /// 431 — the request's header block exceeds the daemon's cap.
    pub fn headers_too_large(limit: usize) -> Self {
        ApiError::new(
            431,
            "headers_too_large",
            format!("request headers exceed {limit} bytes"),
        )
    }

    /// 503 — the daemon is at its concurrent-connection cap
    /// (`--max-conns`); retry once load subsides.
    pub fn connection_limit(max: usize) -> Self {
        ApiError::new(
            503,
            "connection_limit",
            format!("connection limit {max} reached; retry later"),
        )
    }

    /// 502 — an upstream worker answered with bytes the coordinator
    /// could not trust (truncated body, corrupt framing, undecodable
    /// payload). The partial bytes are never relayed.
    pub fn bad_upstream(message: impl Into<String>) -> Self {
        ApiError::new(502, "bad_upstream", message)
    }

    /// The process exit code a CLI invocation derives from this error:
    /// partial suites exit 3 (some benchmarks completed), everything
    /// else exits 1. (Argument-parse errors exit 2 before any `ApiError`
    /// exists.)
    pub fn exit_code(&self) -> i32 {
        if self.code == "partial_suite" {
            3
        } else {
            1
        }
    }

    /// Serialize as the error body the daemon sends.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("error".into(), Json::from(self.code.as_str())),
            ("status".into(), Json::from(self.status as u64)),
            ("message".into(), Json::from(self.message.as_str())),
        ])
        .render()
    }

    /// Decode an error body (the client half of [`ApiError::to_json`]).
    /// The status must be an exact integer in `u16` range — fractional
    /// or out-of-range values reject the body instead of truncating.
    pub fn from_json(text: &str) -> Option<ApiError> {
        let v = parse_json(text)?;
        Some(ApiError {
            status: v.u16_of("status")?,
            code: v.str_of("error")?,
            message: v.str_of("message")?,
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.code, self.status, self.message)
    }
}

impl std::error::Error for ApiError {}

/// The single `HarnessError` → wire-error mapping: simulation failures
/// are the client's fault (422 — the requested program cannot execute),
/// infrastructure failures are the server's (5xx).
impl From<HarnessError> for ApiError {
    fn from(e: HarnessError) -> Self {
        let message = e.to_string();
        match e {
            HarnessError::UnknownBenchmark { .. } => {
                ApiError::new(400, "unknown_benchmark", message)
            }
            HarnessError::Sim(sim) => match sim {
                SimError::RankFailed { .. } => ApiError::new(422, "rank_failed", message),
                SimError::Deadlock(_) => ApiError::new(422, "deadlock", message),
                SimError::CollectiveMismatch { .. }
                | SimError::InvalidProgram { .. }
                | SimError::RankOutOfRange { .. } => ApiError::new(422, "invalid_program", message),
                SimError::Cancelled => ApiError::new(503, "cancelled", message),
            },
            HarnessError::Timeout { .. } => ApiError::new(504, "timeout", message),
            HarnessError::Panic { .. } => ApiError::new(500, "panic", message),
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Resolve a cluster name (the CLI's aliases included) to its preset.
pub fn resolve_cluster(name: &str) -> Result<ClusterSpec, ApiError> {
    match name.to_ascii_lowercase().as_str() {
        "a" | "clustera" | "icelake" | "icx" => Ok(presets::cluster_a()),
        "b" | "clusterb" | "sapphirerapids" | "spr" => Ok(presets::cluster_b()),
        other => Err(ApiError::bad_request(format!(
            "unknown cluster '{other}' (use a|b)"
        ))),
    }
}

/// Parse a workload-class name (the CLI's aliases included).
pub fn parse_class(s: &str) -> Result<WorkloadClass, ApiError> {
    match s.to_ascii_lowercase().as_str() {
        "test" => Ok(WorkloadClass::Test),
        "tiny" | "t" => Ok(WorkloadClass::Tiny),
        "small" | "s" => Ok(WorkloadClass::Small),
        "medium" | "m" => Ok(WorkloadClass::Medium),
        "large" | "l" => Ok(WorkloadClass::Large),
        other => Err(ApiError::bad_request(format!(
            "unknown workload class '{other}' (use test|tiny|small|medium|large)"
        ))),
    }
}

/// One simulation request: a grid point plus its run rules.
///
/// Built with [`RunRequest::new`] and the `with_*` builders; serialized
/// with [`RunRequest::to_json`] / [`RunRequest::from_json`]. The same
/// value drives `spechpc run` locally and `POST /v1/run` remotely.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunRequest {
    /// Cluster name or alias (`a`, `b`, `icelake`, `spr`, …).
    pub cluster: String,
    /// Registry name of the benchmark.
    pub benchmark: String,
    pub class: WorkloadClass,
    /// Rank count; `0` resolves to one full node of the cluster.
    pub nranks: usize,
    /// Run rules (repetitions, warm-up, faults, tracing).
    pub config: RunConfig,
}

impl RunRequest {
    pub fn new(benchmark: impl Into<String>, class: WorkloadClass, nranks: usize) -> Self {
        RunRequest {
            cluster: "a".to_string(),
            benchmark: benchmark.into(),
            class,
            nranks,
            config: RunConfig::default(),
        }
    }

    /// Builder: target cluster (name or alias).
    pub fn with_cluster(mut self, cluster: impl Into<String>) -> Self {
        self.cluster = cluster.into();
        self
    }

    /// Builder: replace the whole run configuration.
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: seeded fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.config = self.config.with_faults(faults);
        self
    }

    /// Builder: record the full event timeline.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.config = self.config.with_trace(trace);
        self
    }

    /// Builder: repetitions for min/max/avg statistics.
    pub fn with_repetitions(mut self, reps: usize) -> Self {
        self.config = self.config.with_repetitions(reps);
        self
    }

    /// Builder: engine worker threads (must be ≥ 1; `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config = self.config.with_threads(threads);
        self
    }

    /// The grid point this request names, with `nranks == 0` resolved
    /// against the cluster's full node.
    pub fn spec(&self, cluster: &ClusterSpec) -> RunSpec {
        let nranks = if self.nranks == 0 {
            cluster.node.cores()
        } else {
            self.nranks
        };
        RunSpec::new(self.benchmark.clone(), self.class, nranks)
    }

    /// Serialize as the `POST /v1/run` body.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("cluster".into(), Json::from(self.cluster.as_str())),
            ("benchmark".into(), Json::from(self.benchmark.as_str())),
            ("class".into(), Json::from(self.class.to_string())),
            ("nranks".into(), Json::from(self.nranks)),
            ("config".into(), config_to_json(&self.config)),
        ])
        .render()
    }

    /// Decode a `POST /v1/run` body. Unknown benchmarks are caught at
    /// dispatch; malformed shapes are caught here.
    pub fn from_json(text: &str) -> Result<RunRequest, ApiError> {
        let v = parse_json(text)
            .ok_or_else(|| ApiError::bad_request("request body is not valid JSON"))?;
        let benchmark = v
            .str_of("benchmark")
            .ok_or_else(|| ApiError::bad_request("missing field 'benchmark'"))?;
        let class = parse_class(&v.str_of("class").unwrap_or_else(|| "tiny".to_string()))?;
        let nranks = v.usize_of("nranks").unwrap_or(0);
        let cluster = v.str_of("cluster").unwrap_or_else(|| "a".to_string());
        let config = match v.get("config") {
            Some(c) => config_from_json(c)?,
            None => RunConfig::default(),
        };
        Ok(RunRequest {
            cluster,
            benchmark,
            class,
            nranks,
            config,
        })
    }
}

/// One suite request: a workload class over all nine benchmarks.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SuiteRequest {
    /// Cluster name or alias.
    pub cluster: String,
    pub class: WorkloadClass,
    /// Rank count; `0` resolves to one full node of the cluster.
    pub nranks: usize,
    pub config: RunConfig,
}

impl SuiteRequest {
    pub fn new(class: WorkloadClass) -> Self {
        SuiteRequest {
            cluster: "a".to_string(),
            class,
            nranks: 0,
            config: RunConfig::default(),
        }
    }

    /// Builder: target cluster (name or alias).
    pub fn with_cluster(mut self, cluster: impl Into<String>) -> Self {
        self.cluster = cluster.into();
        self
    }

    /// Builder: explicit rank count (default: one full node).
    pub fn with_nranks(mut self, nranks: usize) -> Self {
        self.nranks = nranks;
        self
    }

    /// Builder: replace the whole run configuration.
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: seeded fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.config = self.config.with_faults(faults);
        self
    }

    /// Serialize as the `POST /v1/suite` body.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("cluster".into(), Json::from(self.cluster.as_str())),
            ("class".into(), Json::from(self.class.to_string())),
            ("nranks".into(), Json::from(self.nranks)),
            ("config".into(), config_to_json(&self.config)),
        ])
        .render()
    }

    /// Decode a `POST /v1/suite` body.
    pub fn from_json(text: &str) -> Result<SuiteRequest, ApiError> {
        let v = parse_json(text)
            .ok_or_else(|| ApiError::bad_request("request body is not valid JSON"))?;
        let class = parse_class(&v.str_of("class").unwrap_or_else(|| "tiny".to_string()))?;
        let cluster = v.str_of("cluster").unwrap_or_else(|| "a".to_string());
        let nranks = v.usize_of("nranks").unwrap_or(0);
        let config = match v.get("config") {
            Some(c) => config_from_json(c)?,
            None => RunConfig::default(),
        };
        Ok(SuiteRequest {
            cluster,
            class,
            nranks,
            config,
        })
    }
}

// ---------------------------------------------------------------------------
// Run-config / fault-plan codec
// ---------------------------------------------------------------------------

/// Encode run rules as the `"config"` object of a request. Only the
/// non-default fault plan and thread count are emitted, keeping default
/// requests small (and their cache keys stable across client versions).
pub(crate) fn config_to_json(c: &RunConfig) -> Json {
    let mut fields = vec![
        ("warmup_steps".into(), Json::from(c.warmup_steps)),
        ("measured_steps".into(), Json::from(c.measured_steps)),
        ("repetitions".into(), Json::from(c.repetitions)),
        ("trace".into(), Json::from(c.trace)),
    ];
    if c.threads != 1 {
        fields.push(("threads".into(), Json::from(c.threads)));
    }
    if !c.faults.is_none() {
        fields.push(("faults".into(), fault_plan_to_json(&c.faults)));
    }
    Json::Obj(fields)
}

/// Decode the `"config"` object; absent fields keep their defaults.
pub(crate) fn config_from_json(v: &Json) -> Result<RunConfig, ApiError> {
    let d = RunConfig::default();
    let mut c = RunConfig::default()
        .with_warmup_steps(v.usize_of("warmup_steps").unwrap_or(d.warmup_steps))
        .with_measured_steps(v.usize_of("measured_steps").unwrap_or(d.measured_steps))
        .with_repetitions(v.usize_of("repetitions").unwrap_or(d.repetitions))
        .with_trace(v.bool_of("trace").unwrap_or(d.trace));
    if let Some(threads) = v.usize_of("threads") {
        if threads == 0 {
            return Err(ApiError::new(
                422,
                "invalid_threads",
                "'threads' must be >= 1 (1 = sequential engine)",
            ));
        }
        c = c.with_threads(threads);
    }
    if let Some(f) = v.get("faults") {
        c = c.with_faults(fault_plan_from_json(f)?);
    }
    Ok(c)
}

fn rank_set_to_json(rs: &RankSet) -> Json {
    match rs {
        RankSet::All => Json::from("all"),
        RankSet::One(r) => Json::Arr(vec![Json::from(*r)]),
        RankSet::List(rs) => Json::Arr(rs.iter().map(|&r| Json::from(r)).collect()),
    }
}

fn rank_set_from_json(v: &Json) -> Result<RankSet, ApiError> {
    match v {
        Json::Str(s) if s == "all" => Ok(RankSet::All),
        Json::Arr(items) => {
            let ranks: Option<Vec<usize>> =
                items.iter().map(|i| i.num().map(|x| x as usize)).collect();
            let ranks = ranks.ok_or_else(|| ApiError::bad_request("rank set must be numeric"))?;
            Ok(match ranks.as_slice() {
                [one] => RankSet::One(*one),
                _ => RankSet::List(ranks),
            })
        }
        _ => Err(ApiError::bad_request(
            "rank set must be \"all\" or an array",
        )),
    }
}

/// Encode a fault plan as the wire JSON of the `"faults"` field.
pub fn fault_plan_to_json(plan: &FaultPlan) -> Json {
    let events = plan
        .events
        .iter()
        .map(|e| match e {
            FaultEvent::OsNoise { ranks, amplitude } => Json::Obj(vec![
                ("kind".into(), Json::from("os_noise")),
                ("ranks".into(), rank_set_to_json(ranks)),
                ("amplitude".into(), Json::from(*amplitude)),
            ]),
            FaultEvent::Straggler { rank, slowdown } => Json::Obj(vec![
                ("kind".into(), Json::from("straggler")),
                ("rank".into(), Json::from(*rank)),
                ("slowdown".into(), Json::from(*slowdown)),
            ]),
            FaultEvent::FlakyLink {
                from,
                to,
                drop_prob,
                retransmit_latency_s,
            } => Json::Obj(vec![
                ("kind".into(), Json::from("flaky_link")),
                ("from".into(), Json::from(*from)),
                ("to".into(), Json::from(*to)),
                ("drop_prob".into(), Json::from(*drop_prob)),
                (
                    "retransmit_latency_s".into(),
                    Json::from(*retransmit_latency_s),
                ),
            ]),
            FaultEvent::Throttle {
                ranks,
                t_start_s,
                t_end_s,
                slowdown,
            } => Json::Obj(vec![
                ("kind".into(), Json::from("throttle")),
                ("ranks".into(), rank_set_to_json(ranks)),
                ("t_start_s".into(), Json::from(*t_start_s)),
                ("t_end_s".into(), Json::from(*t_end_s)),
                ("slowdown".into(), Json::from(*slowdown)),
            ]),
            FaultEvent::Crash { rank, at_s } => Json::Obj(vec![
                ("kind".into(), Json::from("crash")),
                ("rank".into(), Json::from(*rank)),
                ("at_s".into(), Json::from(*at_s)),
            ]),
        })
        .collect();
    Json::Obj(vec![
        ("seed".into(), Json::from(plan.seed)),
        ("events".into(), Json::Arr(events)),
    ])
}

/// Decode the `"faults"` wire JSON back into a plan.
pub fn fault_plan_from_json(v: &Json) -> Result<FaultPlan, ApiError> {
    let seed = v.f64_of("seed").unwrap_or(0.0) as u64;
    let events = v
        .get("events")
        .and_then(Json::arr)
        .ok_or_else(|| ApiError::bad_request("fault plan needs an 'events' array"))?;
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let kind = e
            .str_of("kind")
            .ok_or_else(|| ApiError::bad_request("fault event needs a 'kind'"))?;
        let need = |key: &str| -> Result<f64, ApiError> {
            e.f64_of(key)
                .ok_or_else(|| ApiError::bad_request(format!("{kind} event needs '{key}'")))
        };
        out.push(match kind.as_str() {
            "os_noise" => FaultEvent::OsNoise {
                ranks: rank_set_from_json(
                    e.get("ranks")
                        .ok_or_else(|| ApiError::bad_request("os_noise event needs 'ranks'"))?,
                )?,
                amplitude: need("amplitude")?,
            },
            "straggler" => FaultEvent::Straggler {
                rank: need("rank")? as usize,
                slowdown: need("slowdown")?,
            },
            "flaky_link" => FaultEvent::FlakyLink {
                from: need("from")? as usize,
                to: need("to")? as usize,
                drop_prob: need("drop_prob")?,
                retransmit_latency_s: need("retransmit_latency_s")?,
            },
            "throttle" => FaultEvent::Throttle {
                ranks: rank_set_from_json(
                    e.get("ranks")
                        .ok_or_else(|| ApiError::bad_request("throttle event needs 'ranks'"))?,
                )?,
                t_start_s: need("t_start_s")?,
                t_end_s: need("t_end_s")?,
                slowdown: need("slowdown")?,
            },
            "crash" => FaultEvent::Crash {
                rank: need("rank")? as usize,
                at_s: need("at_s")?,
            },
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown fault event kind '{other}'"
                )))
            }
        });
    }
    Ok(FaultPlan { seed, events: out })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A completed run. The JSON body embeds the cache encoding of the
/// result, so identical requests serve byte-identical payloads whether
/// simulated or replayed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunResponse {
    pub result: RunResult,
}

impl RunResponse {
    /// Serialize as the `POST /v1/run` success body. Deterministic: no
    /// timestamps, no cache-hit flags — the same request always yields
    /// the same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"result\": ");
        // The indented cache encoding nests at entry depth; reuse it
        // verbatim so cached replays cannot drift from fresh runs.
        s.push_str(&cache::encode_result(&self.result));
        s.push_str("\n}\n");
        s
    }

    /// Decode a success body (the client half of
    /// [`RunResponse::to_json`]).
    pub fn from_json(text: &str) -> Option<RunResponse> {
        let v = parse_json(text)?;
        Some(RunResponse {
            result: cache::decode_result(v.get("result")?)?,
        })
    }
}

/// A completed suite execution (possibly partial — failed benchmarks
/// are reported, not fatal).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SuiteResponse {
    pub report: SuiteReport,
}

impl SuiteResponse {
    /// The partial-completion error this suite maps to, if any — the
    /// daemon sends it as the response status, the CLI exits with
    /// [`ApiError::exit_code`] (3).
    pub fn partial_error(&self) -> Option<ApiError> {
        if self.report.is_complete() {
            None
        } else {
            Some(ApiError::partial_suite(format!(
                "{} of {} benchmarks failed",
                self.report.failures.len(),
                self.report.failures.len() + self.report.results.len()
            )))
        }
    }

    /// Serialize as the `POST /v1/suite` body (status 200 when
    /// complete, 207 when partial).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"cluster\": {},\n",
            quote(&self.report.cluster)
        ));
        s.push_str(&format!(
            "  \"class\": {},\n",
            quote(&self.report.class.to_string())
        ));
        s.push_str(&format!("  \"complete\": {},\n", self.report.is_complete()));
        s.push_str("  \"results\": [");
        for (i, r) in self.report.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            s.push_str(&cache::encode_result(r));
        }
        s.push_str("],\n  \"failures\": [");
        for (i, f) in self.report.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let e = ApiError::from(f.error.clone());
            s.push_str(&format!(
                "    {{ \"label\": {}, \"error\": {}, \"message\": {} }}",
                quote(&f.label),
                quote(&e.code),
                quote(&e.message)
            ));
        }
        s.push_str("]\n}\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Execute one run request against a resident executor. The request's
/// run rules fork the executor ([`Executor::with_run_config`]), so
/// arbitrary per-request configurations still share one cache and one
/// metrics ledger.
pub fn dispatch_run(exec: &Executor, req: &RunRequest) -> Result<RunResponse, ApiError> {
    let cluster = resolve_cluster(&req.cluster)?;
    let spec = req.spec(&cluster);
    let forked = exec.with_run_config(req.config.clone());
    let result = forked.run_one(&cluster, &spec)?;
    Ok(RunResponse { result })
}

/// Execute one suite request against a resident executor.
pub fn dispatch_suite(exec: &Executor, req: &SuiteRequest) -> Result<SuiteResponse, ApiError> {
    let cluster = resolve_cluster(&req.cluster)?;
    let nranks = if req.nranks == 0 {
        cluster.node.cores()
    } else {
        req.nranks
    };
    let forked = exec.with_run_config(req.config.clone());
    let suite = Suite {
        class: req.class,
        nranks,
    };
    let report = suite.run_with(&forked, &cluster);
    Ok(SuiteResponse { report })
}

// ---------------------------------------------------------------------------
// Endpoint registry
// ---------------------------------------------------------------------------

/// Version of the wire schema advertised by `GET /v1/capabilities`.
/// Bumped whenever a request/response body changes shape incompatibly;
/// clients feature-detect against it instead of sniffing bodies.
pub const API_SCHEMA_VERSION: u64 = 1;

/// Stable identity of one endpoint. `serve` and the fleet coordinator
/// look a request up in [`ENDPOINTS`] and dispatch on this id — the
/// path/method literals live in exactly one place (the route table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointId {
    Run,
    Suite,
    Plan,
    Profile,
    CacheEntry,
    Health,
    Metrics,
    Capabilities,
    Shutdown,
}

impl EndpointId {
    /// The registry row for this endpoint.
    pub fn endpoint(self) -> &'static Endpoint {
        ENDPOINTS
            .iter()
            .find(|e| e.id == self)
            .expect("every EndpointId has a registry row")
    }

    /// The concrete request path (exact routes) or path prefix (routes
    /// with a trailing segment) — what a client *sends*, so forwarding
    /// code builds upstream requests from the table too.
    pub fn path(self) -> &'static str {
        self.endpoint().pattern.prefix_str()
    }
}

/// How an endpoint's path is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPattern {
    /// The path must equal this string.
    Exact(&'static str),
    /// The path must extend this prefix with a non-empty trailing
    /// segment (e.g. a benchmark name or cache hash).
    Prefix(&'static str),
}

impl PathPattern {
    /// Does `path` match this pattern?
    pub fn matches(&self, path: &str) -> bool {
        match self {
            PathPattern::Exact(p) => path == *p,
            PathPattern::Prefix(p) => path.len() > p.len() && path.starts_with(p),
        }
    }

    /// The trailing segment of a matched prefix path (`""` for exact
    /// patterns).
    pub fn trailing<'a>(&self, path: &'a str) -> &'a str {
        match self {
            PathPattern::Exact(_) => "",
            PathPattern::Prefix(p) => path.strip_prefix(p).unwrap_or(""),
        }
    }

    fn prefix_str(&self) -> &'static str {
        match self {
            PathPattern::Exact(p) | PathPattern::Prefix(p) => p,
        }
    }
}

/// How the single-daemon event loop executes an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeClass {
    /// Answered inline on the event-loop thread; exempt from admission
    /// control so health/metrics stay responsive under load.
    Fast,
    /// Dispatched to the simulation worker pool under admission control
    /// (may run the engine for seconds).
    Sim,
}

impl ServeClass {
    /// Table label for docs/capabilities.
    pub fn label(self) -> &'static str {
        match self {
            ServeClass::Fast => "fast",
            ServeClass::Sim => "sim",
        }
    }
}

/// How the fleet coordinator treats an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetClass {
    /// Answered by the coordinator itself (even while draining).
    Local,
    /// Forwarded to the worker owning the request's content hash.
    Forward,
    /// Sharded across all live workers and reassembled.
    FanOut,
    /// Not routable through the coordinator (worker-local resource).
    Unrouted,
}

impl FleetClass {
    /// Table label for docs/capabilities.
    pub fn label(self) -> &'static str {
        match self {
            FleetClass::Local => "local",
            FleetClass::Forward => "forward",
            FleetClass::FanOut => "fan-out",
            FleetClass::Unrouted => "unrouted",
        }
    }
}

/// One row of the route table: everything `serve`, the fleet
/// coordinator, `/v1/capabilities` and the generated API reference need
/// to know about an endpoint.
#[derive(Debug)]
#[non_exhaustive]
pub struct Endpoint {
    pub id: EndpointId,
    /// HTTP method.
    pub method: &'static str,
    /// Path matcher.
    pub pattern: PathPattern,
    /// Wire path with `{placeholder}` segments, for display only.
    pub display_path: &'static str,
    /// Execution class on a single daemon.
    pub serve: ServeClass,
    /// Routing class on the fleet coordinator.
    pub fleet: FleetClass,
    /// Request body type (`"-"` when the endpoint takes none).
    pub request: &'static str,
    /// Response body type.
    pub response: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The route table — the single source of truth for the service
/// surface. Order is the display order of `/v1/capabilities` and the
/// generated SERVICE.md reference.
pub const ENDPOINTS: &[Endpoint] = &[
    Endpoint {
        id: EndpointId::Run,
        method: "POST",
        pattern: PathPattern::Exact("/v1/run"),
        display_path: "/v1/run",
        serve: ServeClass::Sim,
        fleet: FleetClass::Forward,
        request: "RunRequest",
        response: "RunResponse",
        summary: "Simulate one benchmark run (cached, byte-replayable)",
    },
    Endpoint {
        id: EndpointId::Suite,
        method: "POST",
        pattern: PathPattern::Exact("/v1/suite"),
        display_path: "/v1/suite",
        serve: ServeClass::Sim,
        fleet: FleetClass::FanOut,
        request: "SuiteRequest",
        response: "SuiteResponse",
        summary: "Run every benchmark at one workload class",
    },
    Endpoint {
        id: EndpointId::Plan,
        method: "POST",
        pattern: PathPattern::Exact("/v1/plan"),
        display_path: "/v1/plan",
        serve: ServeClass::Sim,
        fleet: FleetClass::Forward,
        request: "PlanRequest",
        response: "PlanResponse",
        summary: "Capacity-plan a job queue on a modeled cluster",
    },
    Endpoint {
        id: EndpointId::Profile,
        method: "GET",
        pattern: PathPattern::Prefix("/v1/profile/"),
        display_path: "/v1/profile/{benchmark}",
        serve: ServeClass::Sim,
        fleet: FleetClass::Unrouted,
        request: "-",
        response: "ProfileTables",
        summary: "Traced run: MPI phase, message-size and pair tables",
    },
    Endpoint {
        id: EndpointId::CacheEntry,
        method: "GET",
        pattern: PathPattern::Prefix("/v1/cache/"),
        display_path: "/v1/cache/{hash}",
        serve: ServeClass::Fast,
        fleet: FleetClass::Unrouted,
        request: "-",
        response: "CacheEntry",
        summary: "Fetch one cache entry by key hash (peer warm-start)",
    },
    Endpoint {
        id: EndpointId::Health,
        method: "GET",
        pattern: PathPattern::Exact("/v1/health"),
        display_path: "/v1/health",
        serve: ServeClass::Fast,
        fleet: FleetClass::Local,
        request: "-",
        response: "Health",
        summary: "Liveness, inflight load and drain state",
    },
    Endpoint {
        id: EndpointId::Metrics,
        method: "GET",
        pattern: PathPattern::Exact("/v1/metrics"),
        display_path: "/v1/metrics",
        serve: ServeClass::Fast,
        fleet: FleetClass::Local,
        request: "-",
        response: "Metrics",
        summary: "Run, cache and worker counters",
    },
    Endpoint {
        id: EndpointId::Capabilities,
        method: "GET",
        pattern: PathPattern::Exact("/v1/capabilities"),
        display_path: "/v1/capabilities",
        serve: ServeClass::Fast,
        fleet: FleetClass::Local,
        request: "-",
        response: "Capabilities",
        summary: "Route table + schema version (feature detection)",
    },
    Endpoint {
        id: EndpointId::Shutdown,
        method: "POST",
        pattern: PathPattern::Exact("/v1/shutdown"),
        display_path: "/v1/shutdown",
        serve: ServeClass::Fast,
        fleet: FleetClass::Local,
        request: "-",
        response: "DrainAck",
        summary: "Begin graceful drain",
    },
];

/// Look a request up in the route table. First match wins (patterns are
/// disjoint; a test enforces it).
pub fn endpoint_for(method: &str, path: &str) -> Option<&'static Endpoint> {
    ENDPOINTS
        .iter()
        .find(|e| e.method == method && e.pattern.matches(path))
}

/// The typed 404 every unmatched `(method, path)` maps to — worded in
/// one place so serve and fleet answer identically.
pub fn no_route(method: &str, path: &str) -> ApiError {
    ApiError::not_found(format!("no route for {method} {path}"))
}

/// The `GET /v1/capabilities` body: schema version plus one row per
/// registry endpoint, rendered deterministically in table order.
pub fn capabilities_json() -> String {
    let endpoints = ENDPOINTS
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("method".into(), Json::from(e.method)),
                ("path".into(), Json::from(e.display_path)),
                ("request".into(), Json::from(e.request)),
                ("response".into(), Json::from(e.response)),
                ("serve".into(), Json::from(e.serve.label())),
                ("fleet".into(), Json::from(e.fleet.label())),
                ("summary".into(), Json::from(e.summary)),
            ])
        })
        .collect();
    let mut body = Json::Obj(vec![
        ("schema".into(), Json::from(API_SCHEMA_VERSION)),
        ("endpoints".into(), Json::Arr(endpoints)),
    ])
    .render();
    body.push('\n');
    body
}

/// The SERVICE.md API-reference section, generated from the route table
/// (a repo test keeps the committed copy in sync with this output).
pub fn reference_markdown() -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Schema version {API_SCHEMA_VERSION}. Generated from the route table \
         (`harness::api::ENDPOINTS`) — edit the table, not this block.\n\n"
    ));
    s.push_str("| Method | Path | Request | Response | Serve | Fleet | Summary |\n");
    s.push_str("|--------|------|---------|----------|-------|-------|---------|\n");
    for e in ENDPOINTS {
        s.push_str(&format!(
            "| {} | `{}` | {} | {} | {} | {} | {} |\n",
            e.method,
            e.display_path,
            e.request,
            e.response,
            e.serve.label(),
            e.fleet.label(),
            e.summary
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Rendering (the CLI's human-readable view of a response)
// ---------------------------------------------------------------------------

/// The `spechpc run` summary block for one result — shared by the CLI
/// so the service dispatch path and the local path print identically.
pub fn render_run_text(r: &RunResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} ({}) on {}: {} ranks over {} node(s)\n",
        r.benchmark, r.class, r.cluster, r.nranks, r.nodes_used
    ));
    out.push_str(&format!(
        "  runtime        {} s  (step {} s, min {} / max {})\n",
        fmt(r.runtime_s),
        fmt_f64(r.step_seconds),
        fmt_f64(r.step_seconds_min),
        fmt_f64(r.step_seconds_max),
    ));
    out.push_str(&format!(
        "  performance    {} Gflop/s ({} AVX)\n",
        fmt(r.counters.dp_gflops()),
        fmt(r.counters.dp_avx_gflops())
    ));
    out.push_str(&format!(
        "  memory BW      {} GB/s\n",
        fmt(r.counters.mem_bandwidth())
    ));
    out.push_str(&format!(
        "  MPI share      {}\n",
        crate::report::pct(r.breakdown.mpi_fraction() * 100.0)
    ));
    out.push_str(&format!(
        "  power          {} W package + {} W DRAM\n",
        fmt(r.power.package_w),
        fmt(r.power.dram_w)
    ));
    out.push_str(&format!(
        "  energy         {} kJ\n",
        fmt(r.energy.total_j() / 1e3)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;

    fn quick() -> RunConfig {
        RunConfig::default().with_repetitions(1)
    }

    #[test]
    fn run_request_round_trips_through_json() {
        let req = RunRequest::new("lbm", WorkloadClass::Tiny, 8)
            .with_cluster("b")
            .with_repetitions(2)
            .with_faults(FaultPlan {
                seed: 7,
                events: vec![
                    FaultEvent::Straggler {
                        rank: 3,
                        slowdown: 1.5,
                    },
                    FaultEvent::OsNoise {
                        ranks: RankSet::All,
                        amplitude: 0.05,
                    },
                    FaultEvent::Throttle {
                        ranks: RankSet::List(vec![1, 2]),
                        t_start_s: 0.5,
                        t_end_s: 1.0,
                        slowdown: 2.0,
                    },
                ],
            });
        let text = req.to_json();
        let back = RunRequest::from_json(&text).unwrap();
        assert_eq!(back.benchmark, "lbm");
        assert_eq!(back.cluster, "b");
        assert_eq!(back.class, WorkloadClass::Tiny);
        assert_eq!(back.nranks, 8);
        assert_eq!(back.config.repetitions, 2);
        assert_eq!(
            back.config.faults.canonical(),
            req.config.faults.canonical()
        );
        // Serialization is a fixed point.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn default_config_omits_the_fault_plan() {
        let text = RunRequest::new("lbm", WorkloadClass::Tiny, 4).to_json();
        assert!(!text.contains("faults"), "{text}");
        let req = RunRequest::from_json(&text).unwrap();
        assert!(req.config.faults.is_none());
    }

    #[test]
    fn threads_round_trip_and_default_omission() {
        // Sequential default: the field never hits the wire.
        let text = RunRequest::new("lbm", WorkloadClass::Tiny, 4).to_json();
        assert!(!text.contains("threads"), "{text}");
        assert_eq!(RunRequest::from_json(&text).unwrap().config.threads, 1);
        // A parallel request round-trips through a fixed point.
        let req = RunRequest::new("lbm", WorkloadClass::Tiny, 4).with_threads(4);
        let text = req.to_json();
        assert!(text.contains("\"threads\":4"), "{text}");
        let back = RunRequest::from_json(&text).unwrap();
        assert_eq!(back.config.threads, 4);
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn zero_threads_is_a_typed_422() {
        let err =
            RunRequest::from_json(r#"{"benchmark": "lbm", "config": {"threads": 0}}"#).unwrap_err();
        assert_eq!(err.status, 422, "{err}");
        assert_eq!(err.code, "invalid_threads");
    }

    #[test]
    fn malformed_requests_are_bad_request_errors() {
        for body in [
            "not json",
            "{}",
            r#"{"benchmark": "lbm", "class": "epic"}"#,
            r#"{"benchmark": "lbm", "config": {"faults": {"seed": 1}}}"#,
            r#"{"benchmark": "lbm", "config": {"faults": {"events": [{"kind": "warp"}]}}}"#,
        ] {
            let err = RunRequest::from_json(body).unwrap_err();
            assert_eq!(err.status, 400, "{body} → {err}");
        }
    }

    #[test]
    fn error_mapping_covers_every_harness_variant() {
        let cases: Vec<(HarnessError, u16, &str)> = vec![
            (
                HarnessError::UnknownBenchmark { name: "hpl".into() },
                400,
                "unknown_benchmark",
            ),
            (
                HarnessError::Sim(SimError::RankFailed {
                    rank: 2,
                    op_index: 0,
                    at_s: 0.0,
                }),
                422,
                "rank_failed",
            ),
            (
                HarnessError::Sim(SimError::Deadlock(vec![])),
                422,
                "deadlock",
            ),
            (
                HarnessError::Sim(SimError::InvalidProgram {
                    rank: 0,
                    reason: "x".into(),
                }),
                422,
                "invalid_program",
            ),
            (HarnessError::Sim(SimError::Cancelled), 503, "cancelled"),
            (
                HarnessError::Timeout {
                    label: "x".into(),
                    limit_s: 1.0,
                },
                504,
                "timeout",
            ),
            (
                HarnessError::Panic {
                    label: "x".into(),
                    message: "boom".into(),
                },
                500,
                "panic",
            ),
        ];
        for (err, status, code) in cases {
            let api = ApiError::from(err);
            assert_eq!(api.status, status, "{api}");
            assert_eq!(api.code, code);
            assert_eq!(api.exit_code(), 1);
            // Wire round trip.
            let back = ApiError::from_json(&api.to_json()).unwrap();
            assert_eq!(back, api);
        }
        assert_eq!(ApiError::partial_suite("x").exit_code(), 3);
    }

    #[test]
    fn dispatch_run_serves_results_and_byte_identical_replays() {
        let exec = Executor::new(quick(), ExecConfig::default().with_jobs(1));
        let req = RunRequest::new("lbm", WorkloadClass::Tiny, 4);
        let fresh = dispatch_run(&exec, &req).unwrap();
        assert_eq!(fresh.result.benchmark, "lbm");
        let replay = dispatch_run(&exec, &req).unwrap();
        assert_eq!(
            fresh.to_json(),
            replay.to_json(),
            "cached replay must serve identical bytes"
        );
        // The response decodes back to the same physics.
        let decoded = RunResponse::from_json(&fresh.to_json()).unwrap();
        assert_eq!(
            decoded.result.step_seconds.to_bits(),
            fresh.result.step_seconds.to_bits()
        );
        // Both requests hit one shared metrics ledger: one simulation,
        // one memory hit.
        let m = exec.metrics();
        assert_eq!(m.runs_executed, 1);
        assert_eq!(m.cache.hits_mem, 1);
    }

    #[test]
    fn dispatch_run_maps_unknown_benchmarks_to_400() {
        let exec = Executor::new(quick(), ExecConfig::default().with_jobs(1));
        let err = dispatch_run(&exec, &RunRequest::new("hpl", WorkloadClass::Tiny, 4)).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "unknown_benchmark");
        let err = dispatch_run(
            &exec,
            &RunRequest::new("lbm", WorkloadClass::Tiny, 4).with_cluster("c"),
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn dispatch_suite_reports_partial_completion_as_exit_3() {
        let exec = Executor::new(quick(), ExecConfig::default().with_jobs(2));
        let req = SuiteRequest::new(WorkloadClass::Tiny).with_faults(FaultPlan {
            seed: 11,
            events: vec![FaultEvent::Crash {
                rank: 30,
                at_s: 0.0,
            }],
        });
        let resp = dispatch_suite(&exec, &req).unwrap();
        let partial = resp.partial_error().expect("rank 30 crashes something");
        assert_eq!(partial.status, 207);
        assert_eq!(partial.exit_code(), 3);
        let text = resp.to_json();
        assert!(text.contains("\"complete\": false"));
        assert!(text.contains("rank_failed"), "{text}");

        // A clean suite is complete and exit-0 shaped.
        let clean = dispatch_suite(&exec, &SuiteRequest::new(WorkloadClass::Tiny)).unwrap();
        assert!(clean.partial_error().is_none());
        assert!(clean.to_json().contains("\"complete\": true"));
    }

    #[test]
    fn run_text_rendering_is_stable() {
        let exec = Executor::new(quick(), ExecConfig::default().with_jobs(1));
        let resp = dispatch_run(&exec, &RunRequest::new("lbm", WorkloadClass::Tiny, 4)).unwrap();
        let text = render_run_text(&resp.result);
        assert!(text.contains("lbm (tiny) on ClusterA: 4 ranks"));
        assert!(text.contains("runtime"));
        assert!(text.contains("energy"));
    }

    #[test]
    fn nranks_zero_resolves_to_a_full_node() {
        let cluster = resolve_cluster("a").unwrap();
        let spec = RunRequest::new("lbm", WorkloadClass::Tiny, 0).spec(&cluster);
        assert_eq!(spec.nranks, cluster.node.cores());
    }

    #[test]
    fn error_status_round_trip_rejects_instead_of_truncating() {
        // Valid bodies round-trip exactly.
        let e = ApiError::new(422, "invalid_program", "boom");
        assert_eq!(ApiError::from_json(&e.to_json()), Some(e));
        // Fractional and out-of-range statuses are rejected, not
        // truncated to a bogus but plausible status.
        for bad in [
            r#"{"error":"x","status":404.5,"message":"m"}"#,
            r#"{"error":"x","status":70000,"message":"m"}"#,
            r#"{"error":"x","status":-1,"message":"m"}"#,
            r#"{"error":"x","status":"500","message":"m"}"#,
        ] {
            assert_eq!(ApiError::from_json(bad), None, "{bad}");
        }
    }

    #[test]
    fn registry_rows_are_unique_and_disjoint() {
        for (i, a) in ENDPOINTS.iter().enumerate() {
            // Ids are unique and EndpointId::endpoint is its inverse.
            assert_eq!(a.id.endpoint().display_path, a.display_path);
            for b in &ENDPOINTS[i + 1..] {
                assert_ne!(a.id, b.id);
                if a.method == b.method {
                    // No concrete path may match two patterns: probe each
                    // row's own prefix/exact path against the other.
                    let probe = format!("{}x", a.pattern.prefix_str());
                    assert!(
                        !(a.pattern.matches(&probe) && b.pattern.matches(&probe)),
                        "{} and {} overlap on {probe}",
                        a.display_path,
                        b.display_path
                    );
                }
            }
        }
    }

    #[test]
    fn endpoint_lookup_matches_method_and_pattern() {
        assert_eq!(endpoint_for("POST", "/v1/run").unwrap().id, EndpointId::Run);
        assert_eq!(
            endpoint_for("POST", "/v1/plan").unwrap().id,
            EndpointId::Plan
        );
        assert_eq!(
            endpoint_for("GET", "/v1/capabilities").unwrap().id,
            EndpointId::Capabilities
        );
        let prof = endpoint_for("GET", "/v1/profile/lbm").unwrap();
        assert_eq!(prof.id, EndpointId::Profile);
        assert_eq!(prof.pattern.trailing("/v1/profile/lbm"), "lbm");
        // A bare prefix (no trailing segment) does not match.
        assert!(endpoint_for("GET", "/v1/profile/").is_none());
        // Wrong method, unknown path, wrong version: no route.
        assert!(endpoint_for("GET", "/v1/run").is_none());
        assert!(endpoint_for("POST", "/v1/health").is_none());
        assert!(endpoint_for("POST", "/v2/run").is_none());
        assert_eq!(no_route("POST", "/v2/run").status, 404);
    }

    #[test]
    fn capabilities_lists_every_route_deterministically() {
        let body = capabilities_json();
        assert_eq!(body, capabilities_json());
        let v = parse_json(&body).unwrap();
        assert_eq!(v.u64_of("schema"), Some(API_SCHEMA_VERSION));
        let rows = v.get("endpoints").unwrap().arr().unwrap();
        assert_eq!(rows.len(), ENDPOINTS.len());
        for (row, e) in rows.iter().zip(ENDPOINTS) {
            assert_eq!(row.str_of("path").as_deref(), Some(e.display_path));
            assert_eq!(row.str_of("method").as_deref(), Some(e.method));
        }
    }

    #[test]
    fn reference_markdown_covers_the_table() {
        let md = reference_markdown();
        for e in ENDPOINTS {
            assert!(md.contains(e.display_path), "{} missing", e.display_path);
        }
        assert!(md.contains(&format!("Schema version {API_SCHEMA_VERSION}")));
    }
}
