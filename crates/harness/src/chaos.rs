//! `spechpc chaos` — a deterministic, seeded fault-injecting TCP proxy.
//!
//! PR 4 gave the *simulation* reproducible faults (os-noise,
//! stragglers, flaky links); this module gives the *service fabric* the
//! same treatment at the transport layer. A [`ChaosProxy`] slots
//! between clients and a daemon (or between the fleet coordinator and
//! its workers) and injects network pathologies according to a
//! [`ChaosPlan`] — a TOML file in the `faultcfg` style:
//!
//! ```toml
//! seed = 42
//!
//! [[fault]]
//! kind = "delay"          # hold the first byte of a direction
//! direction = "downstream"
//! prob = 0.25
//! delay_ms = 150
//!
//! [[fault]]
//! kind = "throttle"       # bandwidth cap on one direction
//! direction = "both"
//! prob = 0.5
//! bytes_per_s = 65536
//!
//! [[fault]]
//! kind = "truncate"       # relay N bytes, then close cleanly
//! direction = "downstream"
//! prob = 0.1
//! after_bytes = 512
//!
//! [[fault]]
//! kind = "garbage"        # relay N bytes, splice garbage, close
//! direction = "downstream"
//! prob = 0.05
//! after_bytes = 64
//! bytes = 32
//!
//! [[fault]]
//! kind = "reset"          # abortive close (RST) mid-body
//! direction = "downstream"
//! prob = 0.05
//! after_bytes = 256
//!
//! [[fault]]
//! kind = "black-hole"     # accept, read, never answer
//! prob = 0.02
//! ```
//!
//! **Determinism is the point.** Whether a fault fires on a given
//! connection is decided by a stateless hash of `(seed, connection
//! ordinal, fault index)` — the same construction the simulation's
//! fault layer uses per `(seed, rank, op)` — so the same `(plan, seed)`
//! replays the exact same fault schedule on every run: connection 17
//! gets its response truncated on Tuesday and on every CI rerun after.
//! Garbage bytes come from the same hash chain, so even the corruption
//! is bit-identical.
//!
//! The proxy is intentionally protocol-blind: it splices bytes in both
//! directions and injures them. Everything the fabric must survive —
//! torn HTTP responses, stalled reads, garbage where JSON should be —
//! emerges from these six primitive injuries. The chaos property suite
//! (`tests/chaos.rs`) and the `chaos-smoke` CI job drive the fleet
//! through this proxy and assert the hardened invariant: every client
//! gets byte-identical correct bytes or a typed 5xx, never corrupt
//! JSON, never a hang past its deadline.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::faultcfg::PlanError;

// ---------------------------------------------------------------------------
// Plan model
// ---------------------------------------------------------------------------

/// Which relay direction a fault injures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → upstream bytes (the request path).
    Upstream,
    /// Upstream → client bytes (the response path).
    Downstream,
    /// Both directions.
    Both,
}

impl Direction {
    fn parse(s: &str, line: usize) -> Result<Direction, PlanError> {
        match s {
            "upstream" => Ok(Direction::Upstream),
            "downstream" => Ok(Direction::Downstream),
            "both" => Ok(Direction::Both),
            other => Err(PlanError::at(
                line,
                format!("unknown direction '{other}' (use upstream|downstream|both)"),
            )),
        }
    }

    fn hits(self, downstream: bool) -> bool {
        match self {
            Direction::Both => true,
            Direction::Downstream => downstream,
            Direction::Upstream => !downstream,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::Upstream => "upstream",
            Direction::Downstream => "downstream",
            Direction::Both => "both",
        })
    }
}

/// What one `[[fault]]` entry injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Hold the direction's first byte for `delay_ms`.
    Delay { delay_ms: u64 },
    /// Cap the direction's relay rate.
    Throttle { bytes_per_s: u64 },
    /// Relay `after_bytes`, then close the connection cleanly (FIN) —
    /// the classic torn `Content-Length` body.
    Truncate { after_bytes: u64 },
    /// Relay `after_bytes`, splice `bytes` of deterministic garbage,
    /// then close.
    Garbage { after_bytes: u64, bytes: u64 },
    /// Relay `after_bytes`, then close abortively (RST where the
    /// platform allows forcing one; a hard close everywhere).
    Reset { after_bytes: u64 },
    /// Swallow the whole connection: read and discard, never answer,
    /// never contact the upstream.
    BlackHole,
}

/// One parsed `[[fault]]` entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosFault {
    pub kind: FaultKind,
    pub direction: Direction,
    /// Per-connection firing probability in `[0, 1]`.
    pub prob: f64,
}

impl ChaosFault {
    /// Human description, mirroring `spechpc faults`.
    pub fn describe(&self) -> String {
        let what = match self.kind {
            FaultKind::Delay { delay_ms } => format!("delay: hold first byte {delay_ms} ms"),
            FaultKind::Throttle { bytes_per_s } => {
                format!("throttle: cap at {bytes_per_s} B/s")
            }
            FaultKind::Truncate { after_bytes } => {
                format!("truncate: close after {after_bytes} B")
            }
            FaultKind::Garbage { after_bytes, bytes } => {
                format!("garbage: {bytes} B of noise after {after_bytes} B, then close")
            }
            FaultKind::Reset { after_bytes } => {
                format!("reset: abortive close after {after_bytes} B")
            }
            FaultKind::BlackHole => "black-hole: swallow the connection".to_string(),
        };
        if matches!(self.kind, FaultKind::BlackHole) {
            format!("{what} (p={})", self.prob)
        } else {
            format!("{what} [{}] (p={})", self.direction, self.prob)
        }
    }
}

/// A parsed, validated chaos plan: a seed plus the fault roster. The
/// plan is pure data — [`ChaosPlan::schedule`] derives a connection's
/// injuries without any mutable state, which is what makes replays
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    pub seed: u64,
    pub faults: Vec<ChaosFault>,
}

impl ChaosPlan {
    /// A plan that injures nothing — the proxy degenerates to a splice.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Does fault `idx` fire on connection `conn`? Stateless: the
    /// decision is a pure function of `(seed, conn, idx)`.
    pub fn fires(&self, conn: u64, idx: usize) -> bool {
        let f = &self.faults[idx];
        if f.prob >= 1.0 {
            return true;
        }
        if f.prob <= 0.0 {
            return false;
        }
        chaos_unit(self.seed, conn, idx as u64) < f.prob
    }

    /// The complete injury schedule of connection `conn` — every active
    /// fault folded into per-direction effects. Two calls with the same
    /// `(plan, seed, conn)` return identical schedules; that property is
    /// pinned by `tests/chaos.rs`.
    pub fn schedule(&self, conn: u64) -> ConnSchedule {
        let mut s = ConnSchedule::default();
        for (idx, f) in self.faults.iter().enumerate() {
            if !self.fires(conn, idx) {
                continue;
            }
            if let FaultKind::BlackHole = f.kind {
                s.black_hole = true;
                continue;
            }
            for downstream in [false, true] {
                if !f.direction.hits(downstream) {
                    continue;
                }
                let eff = if downstream {
                    &mut s.downstream
                } else {
                    &mut s.upstream
                };
                match f.kind {
                    FaultKind::Delay { delay_ms } => eff.delay_ms += delay_ms,
                    FaultKind::Throttle { bytes_per_s } => {
                        eff.bytes_per_s = Some(match eff.bytes_per_s {
                            Some(prev) => prev.min(bytes_per_s),
                            None => bytes_per_s,
                        })
                    }
                    FaultKind::Truncate { after_bytes } => {
                        eff.propose_cut(after_bytes, CutKind::Truncate)
                    }
                    FaultKind::Garbage { after_bytes, bytes } => {
                        eff.propose_cut(after_bytes, CutKind::Garbage { bytes })
                    }
                    FaultKind::Reset { after_bytes } => {
                        eff.propose_cut(after_bytes, CutKind::Reset)
                    }
                    FaultKind::BlackHole => unreachable!("handled above"),
                }
            }
        }
        s
    }

    /// The `j`-th garbage byte of connection `conn` — also stateless, so
    /// even injected corruption replays bit-identically.
    pub fn garbage_byte(&self, conn: u64, j: u64) -> u8 {
        (chaos_hash(self.seed, conn, GARBAGE_SALT ^ j) & 0xff) as u8
    }
}

/// Salt separating the garbage-byte stream from the fire/no-fire draws.
const GARBAGE_SALT: u64 = 0x67617262_61676521;

/// How a relay direction ends early, when it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    Truncate,
    Garbage { bytes: u64 },
    Reset,
}

/// The point where a direction's relay is cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    pub after_bytes: u64,
    pub kind: CutKind,
}

/// Folded effects on one relay direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DirectionEffects {
    /// Milliseconds to hold the first byte (active delays sum).
    pub delay_ms: u64,
    /// Bandwidth cap (the tightest active throttle), if any.
    pub bytes_per_s: Option<u64>,
    /// The earliest active cut, if any.
    pub cut: Option<Cut>,
}

impl DirectionEffects {
    /// Keep the earliest cut; ties resolve in fault-roster order (the
    /// first proposer wins), keeping the schedule deterministic.
    fn propose_cut(&mut self, after_bytes: u64, kind: CutKind) {
        let better = match self.cut {
            None => true,
            Some(c) => after_bytes < c.after_bytes,
        };
        if better {
            self.cut = Some(Cut { after_bytes, kind });
        }
    }
}

/// One connection's complete injury schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConnSchedule {
    pub black_hole: bool,
    /// Client → upstream effects.
    pub upstream: DirectionEffects,
    /// Upstream → client effects.
    pub downstream: DirectionEffects,
}

impl ConnSchedule {
    /// Does this connection relay completely uninjured?
    pub fn is_clean(&self) -> bool {
        !self.black_hole
            && self.upstream == DirectionEffects::default()
            && self.downstream == DirectionEffects::default()
    }
}

// ---------------------------------------------------------------------------
// Stateless hashing (the determinism core)
// ---------------------------------------------------------------------------

/// splitmix64 finalizer — the same mixer the fleet's hash ring uses.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// Stateless draw for `(seed, conn, event)` — mirrors the simulation
/// fault layer's per-`(seed, rank, op)` construction, so chaos runs
/// replay bit-identically without any RNG state to carry around.
fn chaos_hash(seed: u64, conn: u64, event: u64) -> u64 {
    mix64(
        seed ^ mix64(conn.wrapping_mul(0x9e3779b97f4a7c15))
            ^ mix64(event.wrapping_mul(0xd1b54a32d192ed03)),
    )
}

/// The draw mapped to a uniform `[0, 1)` unit.
fn chaos_unit(seed: u64, conn: u64, event: u64) -> f64 {
    (chaos_hash(seed, conn, event) >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// Plan parsing (faultcfg-style TOML subset)
// ---------------------------------------------------------------------------

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

/// One `key = value` table plus the line each key was set on.
#[derive(Debug, Default)]
struct TableData {
    entries: HashMap<String, (Value, usize)>,
}

impl TableData {
    fn str(&self, key: &str) -> Option<Result<&str, PlanError>> {
        self.entries.get(key).map(|(v, line)| match v {
            Value::Str(s) => Ok(s.as_str()),
            Value::Num(_) => Err(PlanError::at(*line, format!("'{key}' must be a string"))),
        })
    }

    fn num(&self, key: &str) -> Option<Result<f64, PlanError>> {
        self.entries.get(key).map(|(v, line)| match v {
            Value::Num(n) => Ok(*n),
            Value::Str(_) => Err(PlanError::at(*line, format!("'{key}' must be a number"))),
        })
    }

    fn require_count(&self, key: &str, kind: &str, line: usize) -> Result<u64, PlanError> {
        let n = self
            .num(key)
            .unwrap_or_else(|| Err(PlanError::at(line, format!("'{kind}' fault needs '{key}'"))))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(PlanError::at(
                line,
                format!("'{key}' must be a non-negative integer, got {n}"),
            ));
        }
        Ok(n as u64)
    }

    fn count_or(&self, key: &str, default: u64, line: usize) -> Result<u64, PlanError> {
        match self.num(key).transpose()? {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
            Some(n) => Err(PlanError::at(
                line,
                format!("'{key}' must be a non-negative integer, got {n}"),
            )),
            None => Ok(default),
        }
    }
}

/// Load and validate a chaos plan from a `.toml` file.
pub fn load_chaos_plan(path: &Path) -> Result<ChaosPlan, PlanError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PlanError::new(format!("cannot read {}: {e}", path.display())))?;
    parse_chaos_plan(&text)
}

/// Parse and validate a chaos plan from TOML text.
pub fn parse_chaos_plan(text: &str) -> Result<ChaosPlan, PlanError> {
    // Pass 1: split into the top-level table and one table per
    // `[[fault]]` header, mirroring faultcfg's two-pass structure.
    let mut top = TableData::default();
    let mut faults: Vec<(TableData, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[fault]]" {
            faults.push((TableData::default(), lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(PlanError::at(
                lineno,
                format!("unsupported section '{line}' (only [[fault]] is recognized)"),
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(PlanError::at(
                lineno,
                format!("expected 'key = value', got '{line}'"),
            ));
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim(), lineno)?;
        let table = match faults.last_mut() {
            Some((t, _)) => t,
            None => &mut top,
        };
        if table.entries.insert(key.clone(), (value, lineno)).is_some() {
            return Err(PlanError::at(lineno, format!("duplicate key '{key}'")));
        }
    }

    // Pass 2: typed conversion.
    let seed = match top.num("seed").transpose()? {
        Some(s) if s >= 0.0 && s.fract() == 0.0 => s as u64,
        Some(s) => {
            return Err(PlanError::new(format!(
                "seed must be a non-negative integer, got {s}"
            )))
        }
        None => 0,
    };
    for key in top.entries.keys() {
        if key != "seed" {
            return Err(PlanError::new(format!("unknown top-level key '{key}'")));
        }
    }
    let faults = faults
        .iter()
        .map(|(t, line)| convert_fault(t, *line))
        .collect::<Result<Vec<ChaosFault>, PlanError>>()?;
    Ok(ChaosPlan { seed, faults })
}

/// Drop a `#` comment, respecting (single-line) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<Value, PlanError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(PlanError::at(line, format!("unterminated string: {text}")));
        };
        if inner.contains('"') {
            return Err(PlanError::at(
                line,
                format!("stray quote in string: {text}"),
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| PlanError::at(line, format!("cannot parse value '{text}'")))
}

fn convert_fault(t: &TableData, line: usize) -> Result<ChaosFault, PlanError> {
    let kind = t
        .str("kind")
        .unwrap_or_else(|| Err(PlanError::at(line, "fault needs a 'kind'")))?;
    let prob = match t.num("prob").transpose()? {
        Some(p) if (0.0..=1.0).contains(&p) => p,
        Some(p) => {
            return Err(PlanError::at(
                line,
                format!("'prob' must be in [0, 1], got {p}"),
            ))
        }
        None => 1.0,
    };
    let direction = match t.str("direction").transpose()? {
        Some(s) => Direction::parse(s, line)?,
        None => Direction::Downstream,
    };
    let fault = |kind: FaultKind| ChaosFault {
        kind,
        direction,
        prob,
    };
    match kind {
        "delay" => {
            check_keys(t, &["kind", "direction", "prob", "delay_ms"], kind, line)?;
            Ok(fault(FaultKind::Delay {
                delay_ms: t.require_count("delay_ms", kind, line)?,
            }))
        }
        "throttle" => {
            check_keys(t, &["kind", "direction", "prob", "bytes_per_s"], kind, line)?;
            let bytes_per_s = t.require_count("bytes_per_s", kind, line)?;
            if bytes_per_s == 0 {
                return Err(PlanError::at(
                    line,
                    "'bytes_per_s' must be positive (use black-hole to stall entirely)",
                ));
            }
            Ok(fault(FaultKind::Throttle { bytes_per_s }))
        }
        "truncate" => {
            check_keys(t, &["kind", "direction", "prob", "after_bytes"], kind, line)?;
            Ok(fault(FaultKind::Truncate {
                after_bytes: t.require_count("after_bytes", kind, line)?,
            }))
        }
        "garbage" => {
            check_keys(
                t,
                &["kind", "direction", "prob", "after_bytes", "bytes"],
                kind,
                line,
            )?;
            let bytes = t.require_count("bytes", kind, line)?;
            if bytes == 0 {
                return Err(PlanError::at(
                    line,
                    "'bytes' must be positive (use truncate for a clean cut)",
                ));
            }
            Ok(fault(FaultKind::Garbage {
                after_bytes: t.count_or("after_bytes", 0, line)?,
                bytes,
            }))
        }
        "reset" => {
            check_keys(t, &["kind", "direction", "prob", "after_bytes"], kind, line)?;
            Ok(fault(FaultKind::Reset {
                after_bytes: t.count_or("after_bytes", 0, line)?,
            }))
        }
        "black-hole" => {
            check_keys(t, &["kind", "prob"], kind, line)?;
            Ok(fault(FaultKind::BlackHole))
        }
        other => Err(PlanError::at(
            line,
            format!(
                "unknown fault kind '{other}' \
                 (expected delay, throttle, truncate, garbage, reset or black-hole)"
            ),
        )),
    }
}

/// Reject keys the fault kind does not understand — a typo in a plan
/// must not silently become a no-op.
fn check_keys(t: &TableData, allowed: &[&str], kind: &str, line: usize) -> Result<(), PlanError> {
    for key in t.entries.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(PlanError::at(
                line,
                format!("'{kind}' fault does not take '{key}'"),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The proxy
// ---------------------------------------------------------------------------

/// How long the proxy waits for its upstream to accept.
const UPSTREAM_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Idle cap on any single relay read — a wedged peer must not pin the
/// relay thread forever.
const RELAY_READ_TIMEOUT: Duration = Duration::from_secs(120);
/// Throttle pacing quantum: the relay sleeps after each slice this big.
const THROTTLE_SLICE: usize = 1024;

/// Shared proxy state.
struct ProxyCtx {
    plan: ChaosPlan,
    upstream: String,
    shutdown: AtomicBool,
    /// Connection ordinal — the `conn` of every schedule decision.
    conns: AtomicU64,
    /// Connections that took at least one injury.
    injured: AtomicU64,
}

/// Drain trigger detached from the [`ChaosProxy`]'s lifetime.
#[derive(Clone)]
pub struct ChaosShutdownHandle(Arc<ProxyCtx>);

impl ChaosShutdownHandle {
    /// Flip the drain latch (idempotent).
    pub fn request_drain(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The fault-injecting proxy daemon. Bind with [`ChaosProxy::bind`],
/// then block on [`ChaosProxy::serve`].
pub struct ChaosProxy {
    listener: TcpListener,
    ctx: Arc<ProxyCtx>,
}

impl ChaosProxy {
    /// Bind `listen` and prepare to injure traffic towards `upstream`.
    pub fn bind(
        plan: ChaosPlan,
        listen: impl AsRef<str>,
        upstream: impl Into<String>,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen.as_ref())?;
        Ok(ChaosProxy {
            listener,
            ctx: Arc::new(ProxyCtx {
                plan,
                upstream: upstream.into(),
                shutdown: AtomicBool::new(false),
                conns: AtomicU64::new(0),
                injured: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn shutdown_handle(&self) -> ChaosShutdownHandle {
        ChaosShutdownHandle(Arc::clone(&self.ctx))
    }

    /// Connections accepted so far (diagnostic).
    pub fn connections(&self) -> u64 {
        self.ctx.conns.load(Ordering::Relaxed)
    }

    /// Connections that took at least one injury (diagnostic).
    pub fn injured(&self) -> u64 {
        self.ctx.injured.load(Ordering::Relaxed)
    }

    /// Accept-and-injure until the drain latch flips (or a SIGTERM
    /// lands, sharing the serve daemon's signal latch).
    pub fn serve(self) -> io::Result<()> {
        let ChaosProxy { listener, ctx } = self;
        listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !ctx.shutdown.load(Ordering::SeqCst) && !crate::serve::signalled() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn = ctx.conns.fetch_add(1, Ordering::Relaxed);
                    let ctx = Arc::clone(&ctx);
                    handlers.push(std::thread::spawn(move || handle_conn(stream, conn, &ctx)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// One proxied connection: derive its schedule, then splice (and
/// injure) both directions until either side closes.
fn handle_conn(client: TcpStream, conn: u64, ctx: &Arc<ProxyCtx>) {
    let schedule = ctx.plan.schedule(conn);
    if !schedule.is_clean() {
        ctx.injured.fetch_add(1, Ordering::Relaxed);
    }
    let _ = client.set_nodelay(true);
    let _ = client.set_read_timeout(Some(RELAY_READ_TIMEOUT));
    let _ = client.set_write_timeout(Some(RELAY_READ_TIMEOUT));

    if schedule.black_hole {
        // Read and discard until the client gives up; never answer,
        // never contact the upstream. The client's own read deadline is
        // what bounds this — exactly the stall the fabric must survive.
        let mut sink = client;
        let mut buf = [0u8; 4096];
        while let Ok(n) = sink.read(&mut buf) {
            if n == 0 {
                break;
            }
        }
        return;
    }

    let upstream = match ctx
        .upstream
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .ok_or(())
        .and_then(|a| TcpStream::connect_timeout(&a, UPSTREAM_CONNECT_TIMEOUT).map_err(|_| ()))
    {
        Ok(s) => s,
        // No upstream: drop the client — indistinguishable from a dead
        // worker, which is the point.
        Err(()) => return,
    };
    let _ = upstream.set_nodelay(true);
    let _ = upstream.set_read_timeout(Some(RELAY_READ_TIMEOUT));
    let _ = upstream.set_write_timeout(Some(RELAY_READ_TIMEOUT));

    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let plan = ctx.plan.clone();
    let up_effects = schedule.upstream;
    let down_effects = schedule.downstream;
    let up = std::thread::spawn({
        let plan = plan.clone();
        move || relay(client_r, upstream, up_effects, &plan, conn)
    });
    relay(upstream_r, client, down_effects, &plan, conn);
    let _ = up.join();
}

/// Splice `src` → `dst` under `effects`. Returns when the stream ends,
/// errors, or a cut fires.
fn relay(
    mut src: TcpStream,
    mut dst: TcpStream,
    effects: DirectionEffects,
    plan: &ChaosPlan,
    conn: u64,
) {
    let mut relayed: u64 = 0;
    let mut delayed = false;
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if !delayed {
            delayed = true;
            if effects.delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(effects.delay_ms));
            }
        }
        // The cut fires mid-chunk: forward the prefix, injure, stop.
        if let Some(cut) = effects.cut {
            if relayed + n as u64 >= cut.after_bytes {
                let keep = (cut.after_bytes - relayed) as usize;
                if keep > 0 {
                    let _ = write_paced(&mut dst, &buf[..keep], effects.bytes_per_s);
                }
                match cut.kind {
                    CutKind::Truncate => {}
                    CutKind::Garbage { bytes } => {
                        let noise: Vec<u8> =
                            (0..bytes).map(|j| plan.garbage_byte(conn, j)).collect();
                        let _ = dst.write_all(&noise);
                    }
                    CutKind::Reset => abortive_close(&dst),
                }
                break;
            }
        }
        if write_paced(&mut dst, &buf[..n], effects.bytes_per_s).is_err() {
            break;
        }
        relayed += n as u64;
    }
    // Tear down both halves so the paired relay thread unblocks.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Write `data`, pacing to `bytes_per_s` when throttled.
fn write_paced(dst: &mut TcpStream, data: &[u8], bytes_per_s: Option<u64>) -> io::Result<()> {
    let Some(rate) = bytes_per_s else {
        return dst.write_all(data);
    };
    for slice in data.chunks(THROTTLE_SLICE) {
        dst.write_all(slice)?;
        let secs = slice.len() as f64 / rate as f64;
        std::thread::sleep(Duration::from_secs_f64(secs.min(0.25)));
    }
    Ok(())
}

/// Arrange for the socket's close to be abortive (RST) where the
/// platform lets us say so; the subsequent `shutdown` + drop does the
/// rest. On other platforms this degrades to a hard close, which the
/// fabric must survive anyway.
#[cfg(target_os = "linux")]
fn abortive_close(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    // SAFETY: fd is a live socket owned by `stream`; the struct layout
    // matches the kernel ABI's `struct linger`.
    unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        );
    }
}

#[cfg(not(target_os = "linux"))]
fn abortive_close(_stream: &TcpStream) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> ChaosPlan {
        parse_chaos_plan(text).unwrap()
    }

    #[test]
    fn full_plan_round_trips_every_fault_kind() {
        let p = plan(
            r#"
# kitchen sink
seed = 7

[[fault]]
kind = "delay"
direction = "upstream"
prob = 0.25
delay_ms = 150

[[fault]]
kind = "throttle"
direction = "both"
bytes_per_s = 65536

[[fault]]
kind = "truncate"
prob = 0.1
after_bytes = 512

[[fault]]
kind = "garbage"
after_bytes = 64
bytes = 32

[[fault]]
kind = "reset"
direction = "downstream"
after_bytes = 256

[[fault]]
kind = "black-hole"
prob = 0.02
"#,
        );
        assert_eq!(p.seed, 7);
        assert_eq!(p.faults.len(), 6);
        assert_eq!(
            p.faults[0],
            ChaosFault {
                kind: FaultKind::Delay { delay_ms: 150 },
                direction: Direction::Upstream,
                prob: 0.25,
            }
        );
        assert_eq!(p.faults[1].prob, 1.0, "prob defaults to certain");
        assert_eq!(
            p.faults[2].direction,
            Direction::Downstream,
            "direction defaults to downstream"
        );
        assert!(matches!(p.faults[5].kind, FaultKind::BlackHole));
        for f in &p.faults {
            assert!(!f.describe().is_empty());
        }
    }

    #[test]
    fn parser_rejects_typos_probabilities_and_syntax() {
        let typo = parse_chaos_plan("[[fault]]\nkind = \"truncate\"\nafter = 10\n").unwrap_err();
        assert!(typo.to_string().contains("does not take 'after'"), "{typo}");

        let kind =
            parse_chaos_plan("[[fault]]\nkind = \"truncat\"\nafter_bytes = 10\n").unwrap_err();
        assert!(kind.to_string().contains("truncat"), "{kind}");

        let prob = parse_chaos_plan("[[fault]]\nkind = \"black-hole\"\nprob = 1.5\n").unwrap_err();
        assert!(prob.to_string().contains("[0, 1]"), "{prob}");

        let syntax = parse_chaos_plan("seed 42\n").unwrap_err();
        assert_eq!(syntax.line, Some(1));

        let dir = parse_chaos_plan(
            "[[fault]]\nkind = \"delay\"\ndirection = \"sideways\"\ndelay_ms = 1\n",
        )
        .unwrap_err();
        assert!(dir.to_string().contains("sideways"), "{dir}");

        let hole =
            parse_chaos_plan("[[fault]]\nkind = \"black-hole\"\ndirection = \"downstream\"\n")
                .unwrap_err();
        assert!(hole.to_string().contains("does not take"), "{hole}");

        assert!(parse_chaos_plan("").unwrap().faults.is_empty());
    }

    #[test]
    fn schedules_are_stateless_and_seed_sensitive() {
        let text = r#"
seed = 42
[[fault]]
kind = "truncate"
prob = 0.5
after_bytes = 100
[[fault]]
kind = "delay"
prob = 0.5
delay_ms = 10
"#;
        let a = plan(text);
        let b = plan(text);
        for conn in 0..256 {
            assert_eq!(a.schedule(conn), b.schedule(conn), "conn {conn}");
        }
        // Roughly half the connections take each fault.
        let hits = (0..256).filter(|&c| a.fires(c, 0)).count();
        assert!((64..192).contains(&hits), "p=0.5 fired {hits}/256 times");
        // A different seed reshuffles the schedule.
        let other = ChaosPlan {
            seed: 43,
            ..a.clone()
        };
        assert!(
            (0..256).any(|c| a.schedule(c) != other.schedule(c)),
            "seed must matter"
        );
        // Garbage bytes are part of the deterministic schedule too.
        let g1: Vec<u8> = (0..32).map(|j| a.garbage_byte(9, j)).collect();
        let g2: Vec<u8> = (0..32).map(|j| b.garbage_byte(9, j)).collect();
        assert_eq!(g1, g2);
    }

    #[test]
    fn effects_fold_sanely() {
        let p = plan(
            r#"
[[fault]]
kind = "throttle"
direction = "both"
bytes_per_s = 1000
[[fault]]
kind = "throttle"
bytes_per_s = 500
[[fault]]
kind = "truncate"
after_bytes = 100
[[fault]]
kind = "reset"
after_bytes = 50
"#,
        );
        let s = p.schedule(0);
        assert!(!s.is_clean());
        assert_eq!(s.upstream.bytes_per_s, Some(1000));
        assert_eq!(
            s.downstream.bytes_per_s,
            Some(500),
            "tightest throttle wins"
        );
        assert_eq!(
            s.downstream.cut,
            Some(Cut {
                after_bytes: 50,
                kind: CutKind::Reset
            }),
            "earliest cut wins"
        );
        assert!(s.upstream.cut.is_none());
        assert!(ChaosPlan::none().schedule(123).is_clean());
    }

    #[test]
    fn clean_plan_proxies_bytes_verbatim() {
        // An echo upstream: whatever arrives goes back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in upstream.incoming() {
                let Ok(mut s) = stream else { break };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        let proxy =
            ChaosProxy::bind(ChaosPlan::none(), "127.0.0.1:0", upstream_addr.to_string()).unwrap();
        let addr = proxy.local_addr().unwrap();
        let handle = proxy.shutdown_handle();
        let join = std::thread::spawn(move || proxy.serve());

        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"hello through the proxy").unwrap();
        let mut got = [0u8; 23];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello through the proxy");
        drop(c);

        handle.request_drain();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn truncate_cuts_the_stream_at_the_exact_byte() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Some(Ok(mut s)) = upstream.incoming().next() {
                let _ = s.write_all(&[0xabu8; 4096]);
            }
        });
        let p = plan("[[fault]]\nkind = \"truncate\"\nafter_bytes = 100\n");
        let proxy = ChaosProxy::bind(p, "127.0.0.1:0", upstream_addr.to_string()).unwrap();
        let addr = proxy.local_addr().unwrap();
        let handle = proxy.shutdown_handle();
        let join = std::thread::spawn(move || proxy.serve());

        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = Vec::new();
        let _ = c.read_to_end(&mut got);
        assert_eq!(got.len(), 100, "exactly after_bytes arrive");
        assert!(got.iter().all(|&b| b == 0xab));
        assert_eq!(proxy_stats(&handle), (1, 1));

        handle.request_drain();
        join.join().unwrap().unwrap();
    }

    fn proxy_stats(handle: &ChaosShutdownHandle) -> (u64, u64) {
        (
            handle.0.conns.load(Ordering::Relaxed),
            handle.0.injured.load(Ordering::Relaxed),
        )
    }
}
