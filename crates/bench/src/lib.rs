//! # spechpc-bench — benchmark suite regenerating the paper's artifacts
//!
//! The `benches/` targets of this crate regenerate every table and
//! figure of the paper (Tables 1–3, Fig. 1–6, the §4/§5 derived tables)
//! and time how long the regeneration takes, plus the `ablations` bench
//! exercising the design choices called out in `DESIGN.md` and an
//! `engine` microbenchmark of the simulation substrates themselves.
//!
//! The library part is a tiny self-contained timing harness exposing the
//! subset of the Criterion API the benches use ([`Criterion`],
//! [`Bencher`], benchmark groups, and the [`criterion_group!`]/
//! [`criterion_main!`] macros), so the workspace builds without any
//! external dependency. It is not a statistics engine: each benchmark is
//! warmed up once and then sampled `sample_size` times with
//! monotonic-clock timing, reporting min / median / mean.
//!
//! Run everything with `cargo bench --workspace`. The figure benches go
//! through the harness's parallel, cached execution layer
//! (`spechpc_harness::exec`), so repeated invocations hit the on-disk
//! run cache and complete in seconds.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point object handed to each bench function (Criterion-API
/// compatible subset).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Time one closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Measures one sample: the closure passed to `iter` is executed once
/// per sample (the routines here are all long-running figure
/// regenerations, so per-call clock overhead is negligible).
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` once and accumulate the sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    /// Time `routine(setup())`, excluding the setup cost.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

fn run_one<F>(name: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warm-up pass.
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut warm);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "bench {name:<44} min {:>12} | median {:>12} | mean {:>12} ({samples} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Build a bench-suite function from a list of bench functions
/// (Criterion-macro compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Build the `main` entry point from bench suites
/// (Criterion-macro compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_time() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::thread::sleep(Duration::from_millis(1)));
        assert!(b.elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        b.iter_with_setup(|| std::thread::sleep(Duration::from_millis(5)), |_| 2 + 2);
        assert!(b.elapsed < Duration::from_millis(5));
    }

    #[test]
    fn groups_and_macros_compile_and_run() {
        fn suite(c: &mut Criterion) {
            let mut g = c.benchmark_group("unit");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        let mut c = Criterion::default();
        suite(&mut c);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
