//! Benchmark crate; see benches/.
