//! Benches regenerating the paper's power/energy artifacts: Fig. 3
//! (CPU+DRAM power), Fig. 4 (Z-plots, E/EDP minima), the §4.2.1
//! hot/cool table and the §4.2.3 baseline comparison.

use spechpc::harness::experiments::node_level::fig1_with;
use spechpc::harness::experiments::power_energy::{
    baseline_table, fig3, fig4, hot_cool_table, run_power_energy_with,
};
use spechpc::prelude::*;
use spechpc_bench::{criterion_group, criterion_main, Criterion};

fn config() -> RunConfig {
    RunConfig::default().with_repetitions(1).with_trace(false)
}

fn bench_power_energy(c: &mut Criterion) {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let exec = Executor::new(config(), ExecConfig::default());
    let f1a = fig1_with(&exec, &a, 8).expect("sweep A");
    let f1b = fig1_with(&exec, &b, 8).expect("sweep B");

    println!("== Fig. 3: zero-core baselines ==");
    let f3a = fig3(&f1a, &a);
    let f3b = fig3(&f1b, &b);
    println!(
        "ClusterA extrapolated baseline {:.0} W/socket; ClusterB {:.0} W/socket",
        f3a.extrapolated_baseline_w, f3b.extrapolated_baseline_w
    );

    println!("== §4.2.1 hot/cool (W per socket | % of TDP) ==");
    for ((n, wa, fa), (_, wb, fb)) in hot_cool_table(&f1a, &a)
        .iter()
        .zip(&hot_cool_table(&f1b, &b))
    {
        println!(
            "{n:<12} A {wa:>4.0} W {:>3.0}% | B {wb:>4.0} W {:>3.0}%",
            fa * 100.0,
            fb * 100.0
        );
    }

    println!("== §4.2.3 ==");
    let sb = presets::sandy_bridge_node();
    println!("{}", baseline_table(&[&a.node, &b.node, &sb]).render());

    println!("== Fig. 4: E/EDP minima separation (sweep steps) ==");
    for z in &fig4(&f1a).zplots {
        println!(
            "{:<24} separation {}",
            z.label,
            z.min_separation_steps().unwrap_or(usize::MAX)
        );
    }

    let mut g = c.benchmark_group("power_energy");
    g.sample_size(10);
    g.bench_function("pipeline_warm_cache", |bch| {
        bch.iter(|| run_power_energy_with(&exec, &a, 8).unwrap())
    });
    g.bench_function("fig3_derivation", |bch| bch.iter(|| fig3(&f1a, &a)));
    g.bench_function("fig4_derivation", |bch| bch.iter(|| fig4(&f1a)));
    g.bench_function("hot_cool_table", |bch| {
        bch.iter(|| hot_cool_table(&f1a, &a))
    });
    g.finish();
}

criterion_group!(benches, bench_power_energy);
criterion_main!(benches);
