//! Benches regenerating the paper's multi-node artifacts: Fig. 5
//! (scaling/bandwidth/volume), Fig. 6 (power/energy scaling), the §5.1
//! scaling cases, the §5.1.2 soma anomaly and the §5.1.3 cluster
//! comparison.

use spechpc::harness::experiments::multi_node::{
    comm_breakdown, fig5_with, fig6, scaling_cases, soma_anomaly,
};
use spechpc::prelude::*;
use spechpc_bench::{criterion_group, criterion_main, Criterion};

const NODES: [usize; 4] = [1, 2, 4, 8];

fn config() -> RunConfig {
    RunConfig::default().with_repetitions(1).with_trace(false)
}

fn bench_multi_node(c: &mut Criterion) {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let exec = Executor::new(config(), ExecConfig::default());
    let f5a = fig5_with(&exec, &a, &NODES).expect("fig5 A");
    let f5b = fig5_with(&exec, &b, &NODES).expect("fig5 B");

    println!("== §5.1 scaling cases ==");
    for ((n, ca), (_, cb)) in scaling_cases(&f5a).iter().zip(&scaling_cases(&f5b)) {
        println!("{n:<12} A: {ca:?}  B: {cb:?}");
    }

    println!("== §5.1.2 soma anomaly (ClusterA) ==");
    let soma = soma_anomaly(&f5a).unwrap();
    for (n, bw) in &soma.per_node_bw {
        println!("  {n} node(s): {bw:.0} GB/s per node");
    }
    println!("  Allreduce share {:.0}%", soma.allreduce_fraction * 100.0);

    println!("== §5.1.3 cluster comparison: weather efficiency ==");
    let eff = |f: &spechpc::harness::experiments::multi_node::Fig5| {
        f.sweep("weather").unwrap().evidence().efficiency()
    };
    println!("  weather: effA {:.2}, effB {:.2}", eff(&f5a), eff(&f5b));

    println!("== §5 communication ranking (top 8, ClusterA) ==");
    let mut rank = comm_breakdown(&f5a);
    rank.sort_by(|x, y| y.2.total_cmp(&x.2));
    for (bench, kind, frac) in rank.iter().take(8) {
        println!("  {bench:<12} {kind:<14} {:>5.1}%", frac * 100.0);
    }

    println!("== Fig. 6: total energy at 1 vs 8 nodes [MJ] ==");
    for (name, pts) in &fig6(&f5a).series {
        println!(
            "  {name:<12} {:.1} → {:.1}",
            pts.first().unwrap().2,
            pts.last().unwrap().2
        );
    }

    let mut g = c.benchmark_group("multi_node");
    g.sample_size(10);
    g.bench_function("fig5_single_benchmark_4nodes", |bch| {
        let cold = Executor::new(config(), ExecConfig::default().with_no_cache(true));
        let spec = RunSpec::new("tealeaf", WorkloadClass::Small, 4 * a.node.cores());
        bch.iter(|| cold.run_one(&a, &spec).unwrap())
    });
    g.bench_function("fig5_warm_cache_replay", |bch| {
        bch.iter(|| fig5_with(&exec, &a, &NODES).unwrap())
    });
    g.bench_function("scaling_classifier", |bch| bch.iter(|| scaling_cases(&f5a)));
    g.finish();
}

criterion_group!(benches, bench_multi_node);
criterion_main!(benches);
