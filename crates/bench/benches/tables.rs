//! Benches regenerating the paper's static tables (Tables 1–3).
//!
//! Each bench prints the regenerated table once (the deliverable) and
//! then measures the regeneration cost.

use spechpc::harness::experiments::tables::{table1, table2, table3};
use spechpc::prelude::*;
use spechpc_bench::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let a = presets::cluster_a();
    let b = presets::cluster_b();

    println!("{}", table1().render());
    println!("{}", table2().render());
    println!("{}", table3(&[&a, &b]).render());

    let mut g = c.benchmark_group("tables");
    g.bench_function("table1", |bch| bch.iter(|| table1().render()));
    g.bench_function("table2", |bch| bch.iter(|| table2().render()));
    g.bench_function("table3", |bch| bch.iter(|| table3(&[&a, &b]).render()));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
