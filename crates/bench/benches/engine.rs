//! Microbenchmarks of the framework substrates themselves: the
//! discrete-event engine's op throughput, the collective cost models,
//! the node performance model, and the native kernels' step rate.

use spechpc::kernels::common::model::NodeModel;
use spechpc::prelude::*;
use spechpc::simmpi::engine::{Engine, SimConfig};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::{Op, Program};
use spechpc_bench::{criterion_group, criterion_main, Criterion};

/// Ring sendrecv + allreduce across 256 ranks, 20 steps.
///
/// The programs are built once and cloned per iteration, so the
/// measurement is engine throughput, not `Program` construction (the
/// clone is the cost of handing the engine owned programs).
fn engine_throughput(c: &mut Criterion) {
    let cluster = presets::cluster_a();
    let n = 256;
    let template: Vec<Program> = (0..n)
        .map(|r| {
            let mut p = Program::new();
            for _ in 0..20 {
                p.push(Op::compute(1e-3));
                p.push(Op::sendrecv((r + 1) % n, 8192, (r + n - 1) % n, 0));
                p.push(Op::allreduce(8));
            }
            p
        })
        .collect();
    let ops: usize = template.iter().map(|p| p.ops.len()).sum();
    println!("engine throughput bench: {ops} ops over {n} ranks per iteration");
    c.bench_function("engine_ring_allreduce_256r", |b| {
        b.iter(|| {
            let net = NetModel::compact(&cluster, n);
            Engine::new(SimConfig::default(), net, template.clone())
                .run()
                .unwrap()
        })
    });
    // Same workload against the no-op profile recorder: the gap between
    // this and the default-config bench above is the full cost of the
    // online profile (the profile=false path is monomorphized, so it
    // must carry zero profile overhead).
    c.bench_function("engine_ring_allreduce_256r_noprofile", |b| {
        b.iter(|| {
            let net = NetModel::compact(&cluster, n);
            let cfg = SimConfig::default().with_profile(false);
            Engine::new(cfg, net, template.clone()).run().unwrap()
        })
    });
}

/// The node performance model for a full suite signature set.
fn node_model(c: &mut Criterion) {
    let cluster = presets::cluster_b();
    let benches = all_benchmarks();
    c.bench_function("node_model_full_suite_104r", |b| {
        b.iter(|| {
            let model = NodeModel::new(&cluster, 104);
            benches
                .iter()
                .map(|bench| {
                    let sig = bench.signature(WorkloadClass::Tiny);
                    model.compute_times(&sig, &[]).max_seconds()
                })
                .sum::<f64>()
        })
    });
}

/// Native kernel step rates at test scale (single rank).
fn native_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_kernel_step");
    g.sample_size(10);
    for name in [
        "lbm",
        "tealeaf",
        "cloverleaf",
        "pot3d",
        "hpgmgfv",
        "weather",
    ] {
        let bench = benchmark_by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter_with_setup(
                || {
                    (
                        bench.make_kernel(WorkloadClass::Test, 0, 1, 42),
                        spechpc::simmpi::comm::SelfComm::new(),
                    )
                },
                |(mut k, mut comm)| {
                    k.step(&mut comm);
                    k.checksum()
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, engine_throughput, node_model, native_kernels);
criterion_main!(benches);
