//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1 — eager vs. rendezvous minisweep**: the §4.1.5 serialization
//!   bug needs synchronous rendezvous transfers; with an (unrealistic)
//!   unlimited eager threshold the ripple disappears.
//! * **A2 — SNC on/off**: Sub-NUMA Clustering halves/quarters the
//!   fundamental scaling unit; switching it off changes where the
//!   bandwidth saturation knee sits.
//! * **A3 — lbm barrier removal**: the paper notes lbm's per-iteration
//!   barrier "could be avoided". Finding: under *static* rank skew the
//!   slowest rank sets the steady-state rate, so removing the barrier
//!   alone saves nothing — it would only absorb transient jitter.
//! * **A4 — stalled-core power floor**: the race-to-idle conclusion
//!   (§4.3.1) flips when stalled cores draw as much as on older CPUs.

use spechpc::kernels::common::model::NodeModel;
use spechpc::power::race::{analyze, concurrency_sweep, saturating_speedup};
use spechpc::prelude::*;
use spechpc::simmpi::engine::{Engine, SimConfig};
use spechpc::simmpi::netmodel::NetModel;
use spechpc::simmpi::program::Op;
use spechpc_bench::{criterion_group, criterion_main, Criterion};

fn config() -> RunConfig {
    RunConfig::default().with_repetitions(1).with_trace(false)
}

/// A1: minisweep at 59 processes with rendezvous (real) vs. an
/// unlimited eager threshold (buffered sends).
///
/// Finding (recorded in EXPERIMENTS.md): in this reproduction the
/// 58 → 59 collapse is dominated by the *wavefront geometry* — the
/// prime count forces a 1 × 59 chain whose fill time swamps the 64
/// pipeline stages — while the rendezvous protocol itself only adds a
/// few percent of sender stalls on top. The paper attributes the
/// collapse primarily to the synchronous-rendezvous send-first ripple;
/// both mechanisms produce the same observables (massive MPI_Recv
/// share, prime-count sensitivity).
fn ablation_eager_rendezvous(c: &mut Criterion) {
    let mut eager = presets::cluster_a();
    eager.interconnect.eager_threshold = usize::MAX;
    let real = presets::cluster_a();
    // The ablated spec keeps the preset's name, so the run cache (keyed
    // on cluster name) must stay off for these variants.
    let exec = Executor::new(config(), ExecConfig::default().with_no_cache(true));
    let spec = RunSpec::new("minisweep", WorkloadClass::Tiny, 59);

    let t_real = exec.run_one(&real, &spec).unwrap().step_seconds;
    let t_eager = exec.run_one(&eager, &spec).unwrap().step_seconds;
    println!(
        "A1 minisweep@59: rendezvous {t_real:.3} s/step vs eager {t_eager:.3} s/step (×{:.2} from the protocol alone)",
        t_real / t_eager
    );
    assert!(t_real >= t_eager, "buffered sends can only help the sweep");

    let mut g = c.benchmark_group("ablation_a1");
    g.sample_size(10);
    g.bench_function("rendezvous", |b| {
        b.iter(|| exec.run_one(&real, &spec).unwrap())
    });
    g.bench_function("eager", |b| b.iter(|| exec.run_one(&eager, &spec).unwrap()));
    g.finish();
}

/// A2: SNC2 (the study's setting) vs. SNC off on ClusterA for a
/// strongly memory-bound code.
fn ablation_snc(c: &mut Criterion) {
    let snc_on = presets::cluster_a();
    let mut snc_off = presets::cluster_a();
    snc_off.node.snc = 1;
    // One domain per socket now owns all 8 channels.
    snc_off.node.domain_memory.channels = 8;
    snc_off.node.domain_memory.theoretical_bw *= 2.0;
    snc_off.node.domain_memory.capacity_gib *= 2.0;
    snc_off.node.domain_memory.saturation.plateau *= 2.0;
    let exec = Executor::new(config(), ExecConfig::default().with_no_cache(true));
    let spec = RunSpec::new("pot3d", WorkloadClass::Tiny, 18);

    // With SNC on, 18 cores already saturate their domain; with SNC
    // off the same 18 cores see the whole socket's bandwidth.
    let t_on = exec.run_one(&snc_on, &spec).unwrap().step_seconds;
    let t_off = exec.run_one(&snc_off, &spec).unwrap().step_seconds;
    println!(
        "A2 pot3d@18: SNC2 {t_on:.4} s/step vs SNC-off {t_off:.4} s/step (SNC-off ×{:.2} faster at half-socket)",
        t_on / t_off
    );
    assert!(
        t_off < t_on,
        "18 cores must run faster with the full socket's bandwidth"
    );

    let mut g = c.benchmark_group("ablation_a2");
    g.sample_size(10);
    g.bench_function("snc2", |b| b.iter(|| exec.run_one(&snc_on, &spec).unwrap()));
    g.finish();
}

/// A3: lbm with and without its per-iteration barrier at a fluctuating
/// process count.
fn ablation_lbm_barrier(c: &mut Criterion) {
    let cluster = presets::cluster_a();
    let n = cluster.node.cores() - 1; // the slow-rank count of Fig. 2(h)
    let bench = benchmark_by_name("lbm").unwrap();
    let sig = bench.signature(WorkloadClass::Tiny);
    let model = NodeModel::new(&cluster, n);
    let ct = model.compute_times(&sig, &bench.penalties(WorkloadClass::Tiny, n));
    let with_barrier = bench.step_programs(WorkloadClass::Tiny, &ct);
    let without: Vec<_> = with_barrier
        .iter()
        .map(|p| {
            let mut q = p.clone();
            q.ops.retain(|o| !matches!(o, Op::Barrier));
            q
        })
        .collect();

    let run = |progs: Vec<spechpc::simmpi::program::Program>| -> f64 {
        // Concatenate 3 steps so pipelining across iterations can show.
        let repeated: Vec<_> = progs
            .iter()
            .map(|p| {
                let mut q = spechpc::simmpi::program::Program::new();
                for _ in 0..3 {
                    q.ops.extend_from_slice(&p.ops);
                }
                q
            })
            .collect();
        let net = NetModel::compact(&cluster, n);
        Engine::new(SimConfig::default(), net, repeated)
            .run()
            .unwrap()
            .makespan
            / 3.0
    };
    let t_with = run(with_barrier.clone());
    let t_without = run(without.clone());
    println!(
        "A3 lbm@{n}: with barrier {t_with:.4} s/step vs without {t_without:.4} s/step ({:.1}% saved)",
        100.0 * (t_with - t_without) / t_with
    );
    assert!(
        t_without <= t_with + 1e-12,
        "removing a barrier cannot slow lbm down"
    );

    let mut g = c.benchmark_group("ablation_a3");
    g.sample_size(10);
    g.bench_function("with_barrier", |b| b.iter(|| run(with_barrier.clone())));
    g.bench_function("without_barrier", |b| b.iter(|| run(without.clone())));
    g.finish();
}

/// A4: race-to-idle verdict vs. the stalled-core power floor.
fn ablation_stall_floor(c: &mut Criterion) {
    let base = presets::cluster_a().node.cpu;
    let domain = presets::cluster_a().node.cores_per_domain();
    let verdict = |floor: f64| {
        let mut cpu = base.clone();
        cpu.stall_power_floor = floor;
        let s_max = 6.0;
        let z = concurrency_sweep(
            &cpu,
            domain,
            0.4,
            100.0,
            saturating_speedup(s_max, 1.0),
            move |n| (s_max / n as f64).min(1.0),
        );
        analyze(&z).unwrap()
    };
    let modern = verdict(0.40);
    let legacy = verdict(0.90);
    println!(
        "A4 stall floor 0.40: throttling saves {:.1}% (race-to-idle {}), floor 0.90: saves {:.1}%",
        modern.throttling_gain * 100.0,
        modern.race_to_idle_is_optimal,
        legacy.throttling_gain * 100.0
    );
    assert!(legacy.throttling_gain > modern.throttling_gain);

    let mut g = c.benchmark_group("ablation_a4");
    g.bench_function("sweep_and_analyze", |b| b.iter(|| verdict(0.40)));
    g.finish();
}

criterion_group!(
    benches,
    ablation_eager_rendezvous,
    ablation_snc,
    ablation_lbm_barrier,
    ablation_stall_floor
);
criterion_main!(benches);
