//! Loopback benchmarks of the serve path itself: a real daemon on an
//! ephemeral port, driven by hand-rolled HTTP/1.1 clients, replaying a
//! cached `POST /v1/run` result. The contrast of interest is connection
//! reuse — one keep-alive connection issuing a batch of requests versus
//! a fresh TCP connect per request — plus a pipelined variant that
//! writes the whole batch before reading any response.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use spechpc::harness::serve::{ServeConfig, Server};
use spechpc::prelude::*;
use spechpc_bench::{criterion_group, criterion_main, Criterion};

/// Requests per timed sample: large enough that one sample measures
/// steady-state serve throughput, not connect/teardown noise.
const BATCH: usize = 256;

fn run_body() -> String {
    RunRequest::new("lbm", WorkloadClass::Tiny, 4)
        .with_cluster("a")
        .with_config(RunConfig::default().with_repetitions(1).with_trace(false))
        .to_json()
}

fn request(body: &str, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "POST /v1/run HTTP/1.1\r\nHost: loopback\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Read exactly one framed response off a keep-alive connection,
/// carrying over-read bytes (pipelined successors) between calls.
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Vec<u8> {
    let mut raw = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response headers");
        assert!(n > 0, "EOF before response headers");
        raw.extend_from_slice(&chunk[..n]);
    };
    let headers = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let content_length: usize = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let total = header_end + content_length;
    while raw.len() < total {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF before response body");
        raw.extend_from_slice(&chunk[..n]);
    }
    *carry = raw.split_off(total);
    raw
}

/// One connect → request → full response → close exchange.
fn one_shot(addr: SocketAddr, req: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.write_all(req).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    raw
}

fn service_replay(c: &mut Criterion) {
    let exec = Executor::new(
        RunConfig::default().with_repetitions(1).with_trace(false),
        ExecConfig::default().with_jobs(2),
    );
    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(2)
        .with_log_requests(false);
    let server = Server::bind(exec, cfg).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());

    let keep = request(&run_body(), true);
    let close = request(&run_body(), false);

    // Prime the run cache so every timed request is a cached replay.
    let primed = one_shot(addr, &close);
    assert!(
        String::from_utf8_lossy(&primed).starts_with("HTTP/1.1 200"),
        "priming run failed: {}",
        String::from_utf8_lossy(&primed)
    );
    println!("service bench: {BATCH} cached replays of POST /v1/run per sample");

    let mut group = c.benchmark_group("serve_cached_replay");

    let mut conn = TcpStream::connect(addr).expect("connect keep-alive");
    conn.set_nodelay(true).ok();
    let mut carry = Vec::new();
    group.bench_function("keepalive_256", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                conn.write_all(&keep).expect("write request");
                read_framed(&mut conn, &mut carry);
            }
        })
    });

    let mut pipe = TcpStream::connect(addr).expect("connect pipelined");
    pipe.set_nodelay(true).ok();
    let mut pipe_carry = Vec::new();
    group.bench_function("pipelined_256", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                pipe.write_all(&keep).expect("write request");
            }
            for _ in 0..BATCH {
                read_framed(&mut pipe, &mut pipe_carry);
            }
        })
    });

    group.bench_function("reconnect_256", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                one_shot(addr, &close);
            }
        })
    });

    group.finish();
    drop((conn, pipe));
    handle.request_drain();
    join.join().expect("daemon thread").expect("clean drain");
}

criterion_group!(benches, service_replay);
criterion_main!(benches);
