//! Benches regenerating the paper's node-level artifacts:
//! Fig. 1 (speedup + DP/DP-AVX), Fig. 2 (bandwidths/volumes + insets),
//! and the §4.1.1 / §4.1.2 / §4.1.3 tables.
//!
//! Each bench prints its regenerated rows once, then measures the
//! regeneration cost.

use spechpc::harness::experiments::node_level::{
    acceleration_table, efficiency_table, fig1_with, fig2_with, vectorization_table,
};
use spechpc::prelude::*;
use spechpc_bench::{criterion_group, criterion_main, Criterion};

const STEP: usize = 8;

fn config() -> RunConfig {
    RunConfig::default().with_repetitions(3).with_trace(false)
}

fn bench_fig1_and_tables(c: &mut Criterion) {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let exec = Executor::new(config(), ExecConfig::default());
    let f1a = fig1_with(&exec, &a, STEP).expect("fig1 A");
    let f1b = fig1_with(&exec, &b, STEP).expect("fig1 B");

    println!("== §4.1.1 parallel efficiency [%] (domain → node) ==");
    let ea = efficiency_table(&f1a, &a);
    let eb = efficiency_table(&f1b, &b);
    for ((n, x), (_, y)) in ea.iter().zip(&eb) {
        println!("{n:<12} A {x:>6.0}  B {y:>6.0}");
    }
    println!("== §4.1.2 acceleration factor B/A ==");
    for (n, x) in acceleration_table(&f1a, &f1b) {
        println!("{n:<12} {x:>5.2}");
    }
    println!("== §4.1.3 vectorization ratio [%] ==");
    for (n, x) in vectorization_table(&f1a) {
        println!("{n:<12} {x:>5.1}");
    }

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("cluster_a_sweep_cold", |bch| {
        bch.iter(|| {
            let cold = Executor::new(config(), ExecConfig::default().with_no_cache(true));
            fig1_with(&cold, &a, STEP).unwrap()
        })
    });
    g.bench_function("cluster_a_sweep_warm_cache", |bch| {
        bch.iter(|| fig1_with(&exec, &a, STEP).unwrap())
    });
    g.bench_function("efficiency_table", |bch| {
        bch.iter(|| efficiency_table(&f1a, &a))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let a = presets::cluster_a();
    let exec = Executor::new(config(), ExecConfig::default());
    let f2 = fig2_with(&exec, &a, 24).expect("fig2");
    println!(
        "== Fig. 2 insets: minisweep@59 Recv {:.0}%, lbm@71 wait+barrier {:.0}% ==",
        f2.minisweep_59.recv_fraction * 100.0,
        (f2.lbm_odd.wait_fraction + f2.lbm_odd.barrier_fraction) * 100.0
    );

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("insets", |bch| {
        bch.iter(|| fig2_with(&exec, &a, 71).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fig1_and_tables, bench_fig2);
criterion_main!(benches);
