//! `spechpc` — command-line driver for the case-study reproduction.
//!
//! ```text
//! spechpc run pot3d --cluster b --class tiny -n 104
//! spechpc suite --cluster a
//! spechpc score
//! spechpc figures fig5
//! spechpc dvfs tealeaf --cluster a
//! spechpc serve --addr 127.0.0.1:8722
//! ```
//!
//! The simulating subcommands are thin shells over the typed service
//! API (`spechpc::harness::api`): `run`/`suite`/`profile` build the
//! same [`RunRequest`]/[`SuiteRequest`] values that `spechpc serve`
//! decodes off the wire and dispatch them through the same executor
//! entry points, so CLI and daemon cannot drift apart. Errors follow
//! the API mapping too: exit 2 for argument parsing, 3 for a partial
//! suite, 1 for everything else.

mod args;

use args::{ClusterChoice, Command, ExecOpts, FaultOpts, USAGE};
use spechpc::harness::api;
use spechpc::harness::chaos;
use spechpc::harness::experiments::{multi_node, node_level, power_energy, tables};
use spechpc::harness::faultcfg;
use spechpc::harness::fleet;
use spechpc::harness::obs;
use spechpc::harness::serve;
use spechpc::power::dvfs;
use spechpc::prelude::*;

/// The canonical cluster key the API resolves (`a` | `b`).
fn cluster_key(c: ClusterChoice) -> &'static str {
    match c {
        ClusterChoice::A => "a",
        ClusterChoice::B => "b",
    }
}

/// Build the execution layer from the CLI options: all host cores and
/// the persistent `results/cache/` store unless overridden.
fn executor_of(config: RunConfig, opts: ExecOpts) -> Executor {
    let mut exec_cfg = ExecConfig::default()
        .with_jobs(opts.jobs.unwrap_or(0))
        .with_no_cache(opts.no_cache);
    if !opts.no_cache {
        exec_cfg = exec_cfg.with_cache_dir(RunCache::default_dir());
    }
    Executor::new(config, exec_cfg)
}

/// Resolve `--faults` / `--fault-seed` into a [`FaultPlan`]: no plan
/// file means the engine's zero-cost fault-free path.
fn fault_plan_of(opts: &FaultOpts) -> Result<FaultPlan, ApiError> {
    let mut plan = match &opts.plan {
        Some(path) => faultcfg::load_plan(std::path::Path::new(path))
            .map_err(|e| ApiError::bad_request(e.to_string()))?,
        None => FaultPlan::none(),
    };
    if let Some(seed) = opts.seed {
        plan.seed = seed;
    }
    Ok(plan)
}

fn internal(e: impl std::fmt::Display) -> ApiError {
    ApiError::internal(e.to_string())
}

fn describe_ranks(rs: &RankSet) -> String {
    match rs {
        RankSet::All => "all ranks".into(),
        RankSet::One(r) => format!("rank {r}"),
        RankSet::List(rs) => format!(
            "ranks {}",
            rs.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

fn describe_event(e: &FaultEvent) -> String {
    match e {
        FaultEvent::OsNoise { ranks, amplitude } => format!(
            "os-noise     {} — per-op compute inflation in [1, {:.3})",
            describe_ranks(ranks),
            1.0 + amplitude
        ),
        FaultEvent::Straggler { rank, slowdown } => {
            format!("straggler    rank {rank} — ×{slowdown:.3} on every compute phase")
        }
        FaultEvent::FlakyLink {
            from,
            to,
            drop_prob,
            retransmit_latency_s,
        } => format!(
            "flaky-link   {from} → {to} — retransmit p={drop_prob:.3}, +{:.1} µs each",
            retransmit_latency_s * 1e6
        ),
        FaultEvent::Throttle {
            ranks,
            t_start_s,
            t_end_s,
            slowdown,
        } => format!(
            "throttle     {} — ×{slowdown:.3} inside [{t_start_s:.3} s, {t_end_s:.3} s)",
            describe_ranks(ranks)
        ),
        FaultEvent::Crash { rank, at_s } => {
            format!("crash        rank {rank} — hard failure at {at_s:.3} s (MPI abort)")
        }
    }
}

/// With `--metrics`: print the executor/cache counters and write them
/// as `results/metrics/<stem>.csv`.
fn maybe_metrics(executor: &Executor, stem: &str, opts: ExecOpts) -> Result<(), ApiError> {
    if !opts.metrics {
        return Ok(());
    }
    let m = executor.metrics();
    let table = obs::metrics_table("executor/cache metrics", &m).map_err(internal)?;
    println!("{}", table.render());
    let path = obs::write_metrics_csv(std::path::Path::new("results/metrics"), stem, &m)
        .map_err(|e| ApiError::internal(format!("writing metrics CSV: {e}")))?;
    println!("metrics: written to {}", path.display());
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(cmd) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run(cmd: Command) -> Result<(), ApiError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List => {
            println!("benchmarks (SPEChpc 2021, Table 1 order):");
            for b in all_benchmarks() {
                let m = b.meta();
                println!(
                    "  {:<11} {:<8} {:>7} LOC  collective: {:<9}  {}",
                    m.name, m.language, m.loc, m.collective, m.numerics
                );
            }
            println!("\ncluster presets:");
            for c in [presets::cluster_a(), presets::cluster_b()] {
                println!(
                    "  {:<8} {} — {} cores/node, {} ccNUMA domains, {:.0} Gflop/s, {:.0} GB/s",
                    c.name,
                    c.node.cpu.model,
                    c.node.cores(),
                    c.node.numa_domains(),
                    c.node.peak_flops(),
                    c.node.saturated_mem_bandwidth()
                );
            }
            Ok(())
        }
        Command::Run {
            benchmark,
            cluster,
            class,
            nranks,
            trace_csv,
            threads,
            exec,
            faults,
        } => {
            let req = RunRequest::new(&benchmark, class, nranks.unwrap_or(0))
                .with_cluster(cluster_key(cluster))
                .with_config(
                    RunConfig::default()
                        .with_trace(false)
                        .with_threads(threads.unwrap_or(1))
                        .with_faults(fault_plan_of(&faults)?),
                );
            let executor = executor_of(req.config.clone(), exec);
            let cl = api::resolve_cluster(&req.cluster)?;
            // Only a trace export needs the timeline; everything else
            // goes through (and populates) the run cache via the same
            // dispatcher the daemon uses.
            let r = if trace_csv.is_some() {
                executor.run_traced(&cl, &req.spec(&cl))?
            } else {
                api::dispatch_run(&executor, &req)?.result
            };
            print!("{}", api::render_run_text(&r));
            if let Some(path) = trace_csv {
                let csv = spechpc::simmpi::export::to_csv(&r.timeline);
                std::fs::write(&path, csv)
                    .map_err(|e| ApiError::internal(format!("writing {path}: {e}")))?;
                println!("  trace          written to {path}");
            }
            maybe_metrics(
                &executor,
                &format!("run_{benchmark}_{class}_{}_{}", cl.name, r.nranks),
                exec,
            )?;
            Ok(())
        }
        Command::Suite {
            cluster,
            class,
            nranks,
            threads,
            exec,
            faults,
        } => {
            let req = SuiteRequest::new(class)
                .with_cluster(cluster_key(cluster))
                .with_nranks(nranks.unwrap_or(0))
                .with_config(
                    RunConfig::default()
                        .with_trace(false)
                        .with_threads(threads.unwrap_or(1)),
                )
                .with_faults(fault_plan_of(&faults)?);
            let executor = executor_of(req.config.clone(), exec);
            let resp = api::dispatch_suite(&executor, &req)?;
            println!("{}", resp.report.render());
            maybe_metrics(
                &executor,
                &format!("suite_{class}_{}", resp.report.cluster),
                exec,
            )?;
            // Partial completion (e.g. an injected crash) is a distinct
            // exit code so scripts can tell it from a hard error.
            if let Some(partial) = resp.partial_error() {
                eprintln!("error: {partial}");
                std::process::exit(partial.exit_code());
            }
            Ok(())
        }
        Command::Profile {
            benchmark,
            cluster,
            class,
            nranks,
            threads,
            exec,
            faults,
        } => {
            // The profile is computed incrementally by the engine, so no
            // tracing is needed: this goes through (and warms) the cache.
            // With `--faults` the per-rank table attributes the injected
            // stall time in its own column.
            let req = RunRequest::new(&benchmark, class, nranks.unwrap_or(0))
                .with_cluster(cluster_key(cluster))
                .with_config(
                    RunConfig::default()
                        .with_threads(threads.unwrap_or(1))
                        .with_faults(fault_plan_of(&faults)?),
                );
            let executor = executor_of(req.config.clone(), exec);
            let cl = api::resolve_cluster(&req.cluster)?;
            let r = api::dispatch_run(&executor, &req)?.result;
            let n = r.nranks;
            let title = format!(
                "{benchmark} {class} on {} with {n} ranks — per-rank MPI phase split [s]",
                cl.name
            );
            println!(
                "{}",
                obs::profile_rank_table(&title, &r.profile)
                    .map_err(internal)?
                    .render()
            );
            println!(
                "{}",
                obs::profile_histogram_table(
                    "message-size histogram (per protocol regime)",
                    &r.profile
                )
                .map_err(internal)?
                .render()
            );
            println!(
                "{}",
                obs::profile_matrix_table("heaviest rank→rank traffic", &r.profile, 16)
                    .map_err(internal)?
                    .render()
            );
            let stem = format!("{benchmark}_{class}_{}_{n}", cl.name);
            let written =
                obs::write_profile_csvs(std::path::Path::new("results/profile"), &stem, &r.profile)
                    .map_err(|e| ApiError::internal(format!("writing profile CSVs: {e}")))?;
            for p in &written {
                println!("profile: written to {}", p.display());
            }
            maybe_metrics(&executor, &format!("profile_{stem}"), exec)?;
            Ok(())
        }
        Command::Score { class, exec } => {
            let a = presets::cluster_a();
            let b = presets::cluster_b();
            let cfg = RunConfig::default().with_repetitions(1).with_trace(false);
            let executor = executor_of(cfg, exec);
            let suite_a = Suite {
                class,
                nranks: a.node.cores(),
            };
            let suite_b = Suite {
                class,
                nranks: b.node.cores(),
            };
            let ra = suite_a.run_with(&executor, &a);
            let rb = suite_b.run_with(&executor, &b);
            // A score over partial results would silently compare
            // different benchmark sets — refuse instead.
            for (r, cl) in [(&ra, &a), (&rb, &b)] {
                if let Some(f) = r.failures.first() {
                    return Err(ApiError::internal(format!(
                        "suite on {} incomplete ({} failure(s)); first: {}",
                        cl.name,
                        r.failures.len(),
                        f.error
                    )));
                }
            }
            println!("SPEC-style {class} score (reference = ClusterA full node):");
            println!("  ClusterA: {:.3}", ra.spec_score(&ra).unwrap_or(0.0));
            println!("  ClusterB: {:.3}", rb.spec_score(&ra).unwrap_or(0.0));
            maybe_metrics(&executor, &format!("score_{class}"), exec)?;
            Ok(())
        }
        Command::Figures { which, exec } => figures(&which, exec),
        Command::Faults { plan } => {
            let p = faultcfg::load_plan(std::path::Path::new(&plan))
                .map_err(|e| ApiError::bad_request(e.to_string()))?;
            if p.is_none() {
                println!("{plan}: valid — empty plan (fault-free fast path)");
                return Ok(());
            }
            println!(
                "{plan}: valid — seed {}, {} event(s)",
                p.seed,
                p.events.len()
            );
            for e in &p.events {
                println!("  {}", describe_event(e));
            }
            println!("cache key digest: {}", p.canonical());
            Ok(())
        }
        Command::BenchSnapshot {
            quick,
            check,
            out,
            service,
        } => {
            use spechpc::harness::snapshot;
            let mode = if quick { "quick" } else { "full" };
            if service {
                // Service-path trajectory: requests/s and latency
                // percentiles through a live in-process daemon, same
                // shape as the engine snapshot below.
                println!("measuring service snapshot ({mode} mode)…");
                let snap = snapshot::measure_service(quick).map_err(internal)?;
                println!("{}", snapshot::render_service(&snap));
                if let Some(path) = check {
                    let committed =
                        snapshot::read_service(std::path::Path::new(&path)).map_err(internal)?;
                    if let Err(first) =
                        snapshot::check_service(&snap, &committed, snapshot::SERVICE_TOLERANCE)
                    {
                        eprintln!("below tolerance, re-measuring: {first}");
                        let retry = snapshot::measure_service(false).map_err(internal)?;
                        println!("{}", snapshot::render_service(&retry));
                        snapshot::check_service(&retry, &committed, snapshot::SERVICE_TOLERANCE)
                            .map_err(internal)?;
                    }
                    println!(
                        "ok: within {:.0}% of committed {path}",
                        snapshot::SERVICE_TOLERANCE * 100.0
                    );
                } else {
                    let path = out.unwrap_or_else(|| "BENCH_service.json".into());
                    let path = std::path::Path::new(&path);
                    snapshot::write_service(path, &snap).map_err(internal)?;
                    println!("snapshot: written to {}", path.display());
                }
                return Ok(());
            }
            println!("measuring perf snapshot ({mode} mode)…");
            let mut snap = snapshot::measure(quick).map_err(internal)?;
            println!("{}", snapshot::render(&snap));
            if let Some(path) = check {
                let committed = snapshot::read(std::path::Path::new(&path)).map_err(internal)?;
                // A loaded CI host can blow a single minimum; re-measure
                // once (full iterations) before declaring a regression.
                if let Err(first) = snapshot::check(&snap, &committed, snapshot::DEFAULT_TOLERANCE)
                {
                    eprintln!("below tolerance, re-measuring: {first}");
                    let retry = snapshot::measure(false).map_err(internal)?;
                    println!("{}", snapshot::render(&retry));
                    snapshot::check(&retry, &committed, snapshot::DEFAULT_TOLERANCE)
                        .map_err(internal)?;
                }
                println!(
                    "ok: within {:.0}% of committed {path}",
                    snapshot::DEFAULT_TOLERANCE * 100.0
                );
            } else {
                let path = out.unwrap_or_else(|| "BENCH_engine.json".into());
                let path = std::path::Path::new(&path);
                // Keep the pre-rewrite baseline block of an existing
                // trajectory file: it documents where we came from.
                if let Ok(prev) = snapshot::read(path) {
                    snap.baseline = prev.baseline;
                }
                snapshot::write(path, &snap).map_err(internal)?;
                println!("snapshot: written to {}", path.display());
            }
            Ok(())
        }
        Command::Dvfs { benchmark, cluster } => {
            let cl = api::resolve_cluster(cluster_key(cluster))?;
            let bench = benchmark_by_name(&benchmark)
                .ok_or_else(|| ApiError::bad_request(format!("unknown benchmark '{benchmark}'")))?;
            let sig = bench.signature(WorkloadClass::Tiny);
            let n = cl.node.cores();
            let model = NodeModel::new(&cl, n);
            let ct = model.compute_times(&sig, &[]);
            // Socket-level in-core vs memory split of a representative
            // rank at the full node.
            let t_flops = ct.t_flops[0];
            let t_mem = ct.t_mem[0];
            let sweep = dvfs::frequency_sweep(
                &cl.node.cpu,
                sig.heat,
                t_flops,
                t_mem,
                cl.node.cpu.base_clock_ghz * 0.5,
                16,
            );
            println!(
                "{benchmark} on {}: DVFS sweep (t_flops {:.2} ms, t_mem {:.2} ms per step)",
                cl.name,
                t_flops * 1e3,
                t_mem * 1e3
            );
            println!(
                "{:>8} {:>12} {:>10} {:>12}",
                "GHz", "t/step [ms]", "P [W]", "E [J/step]"
            );
            for p in &sweep {
                println!(
                    "{:>8.2} {:>12.3} {:>10.1} {:>12.3}",
                    p.clock_ghz,
                    p.runtime_s * 1e3,
                    p.power_w,
                    p.energy_j
                );
            }
            let a = dvfs::analyze(&sweep).expect("non-empty sweep");
            println!(
                "energy-optimal clock {:.2} GHz — saves {:.1} % vs base at ×{:.2} runtime",
                a.optimal_clock_ghz,
                a.saving_vs_base * 100.0,
                a.slowdown_at_optimum
            );
            Ok(())
        }
        Command::Plan { file, json, exec } => {
            use spechpc::harness::plan;
            let body = std::fs::read_to_string(&file)
                .map_err(|e| ApiError::bad_request(format!("reading {file}: {e}")))?;
            let req = plan::PlanRequest::from_json(&body)?;
            let executor = executor_of(req.config.clone(), exec);
            let resp = plan::dispatch_plan(&executor, &req)?;
            if json {
                // Exact wire bytes of `POST /v1/plan`.
                print!("{}", resp.to_json());
            } else {
                print!("{}", plan::render_plan_text(&resp));
            }
            maybe_metrics(&executor, "plan", exec)?;
            Ok(())
        }
        Command::Serve {
            addr,
            workers,
            queue_depth,
            max_inflight,
            timeout_s,
            max_conns,
            keepalive_max,
            idle_timeout_s,
            read_timeout_s,
            peers,
            threads,
            exec,
        } => {
            // One resident executor for the daemon's whole life: its
            // run cache and metrics ledger persist across requests.
            // Unlike one-shot commands, the daemon always runs under a
            // per-request budget (PR 4's cooperative cancel token) so a
            // pathological request answers 504 instead of pinning a
            // worker forever.
            let mut exec_cfg = ExecConfig::default()
                .with_jobs(exec.jobs.unwrap_or(0))
                .with_no_cache(exec.no_cache)
                .with_timeout_s(timeout_s.unwrap_or(300.0));
            if !exec.no_cache {
                exec_cfg = exec_cfg.with_cache_dir(RunCache::default_dir());
            }
            // `--threads` sets the resident default; a request's own
            // `config.threads` forks the executor and overrides it.
            let resident = RunConfig::default()
                .with_trace(false)
                .with_threads(threads.unwrap_or(1));
            let mut executor = Executor::new(resident, exec_cfg);
            // In a fleet, a local cache miss consults the peers'
            // GET /v1/cache/{key} before simulating: runs land on
            // whichever worker the coordinator hashed them to, but any
            // worker can replay them byte-identically.
            if !peers.is_empty() {
                eprintln!("[serve] peer cache fetch from {}", peers.join(", "));
                executor = executor.with_peer_fetch(fleet::peer_fetcher(peers));
            }
            let mut cfg = ServeConfig::default().with_addr(addr);
            if let Some(w) = workers {
                cfg = cfg.with_workers(w);
            }
            if let Some(q) = queue_depth {
                cfg = cfg.with_queue_depth(q);
            }
            if let Some(m) = max_inflight {
                cfg = cfg.with_max_inflight(m);
            }
            if let Some(m) = max_conns {
                cfg = cfg.with_max_conns(m);
            }
            if let Some(k) = keepalive_max {
                cfg = cfg.with_keepalive_requests(k);
            }
            if let Some(t) = idle_timeout_s {
                cfg = cfg.with_idle_timeout_s(t);
            }
            if let Some(t) = read_timeout_s {
                cfg = cfg.with_read_timeout_s(t);
            }
            if exec.metrics {
                cfg = cfg.with_metrics_dir("results/metrics");
            }
            serve::install_signal_handlers();
            let server = Server::bind(executor, cfg)
                .map_err(|e| ApiError::internal(format!("bind: {e}")))?;
            let bound = server.local_addr().map_err(internal)?;
            eprintln!("[serve] listening on http://{bound} — SIGTERM or POST /v1/shutdown drains");
            server
                .serve()
                .map_err(|e| ApiError::internal(format!("serve: {e}")))?;
            Ok(())
        }
        Command::Fleet {
            addr,
            workers,
            vnodes,
            timeout_s,
            no_hedge,
        } => {
            let mut cfg = fleet::FleetConfig::default()
                .with_addr(addr)
                .with_workers(workers)
                .with_hedging(!no_hedge);
            if let Some(v) = vnodes {
                cfg = cfg.with_vnodes(v);
            }
            if let Some(t) = timeout_s {
                cfg = cfg.with_request_timeout_s(t);
            }
            serve::install_signal_handlers();
            let coordinator = fleet::Coordinator::bind(cfg)
                .map_err(|e| ApiError::internal(format!("bind: {e}")))?;
            let bound = coordinator.local_addr().map_err(internal)?;
            eprintln!(
                "[fleet] coordinating on http://{bound} — SIGTERM or POST /v1/shutdown drains"
            );
            coordinator
                .serve()
                .map_err(|e| ApiError::internal(format!("fleet: {e}")))?;
            Ok(())
        }
        Command::Chaos {
            plan,
            listen,
            upstream,
            seed,
            validate,
        } => {
            let mut p = chaos::load_chaos_plan(std::path::Path::new(&plan))
                .map_err(|e| ApiError::bad_request(e.to_string()))?;
            if let Some(s) = seed {
                p.seed = s;
            }
            if validate {
                if p.faults.is_empty() {
                    println!("{plan}: valid — empty plan (pure byte splice)");
                    return Ok(());
                }
                println!(
                    "{plan}: valid — seed {}, {} fault(s)",
                    p.seed,
                    p.faults.len()
                );
                for f in &p.faults {
                    println!("  {}", f.describe());
                }
                return Ok(());
            }
            let upstream = upstream.expect("args parser requires --upstream unless --validate");
            serve::install_signal_handlers();
            let proxy = chaos::ChaosProxy::bind(p, &listen, upstream.clone())
                .map_err(|e| ApiError::internal(format!("bind: {e}")))?;
            let bound = proxy.local_addr().map_err(internal)?;
            eprintln!("[chaos] injuring http://{bound} → {upstream} per {plan} — SIGTERM drains");
            proxy
                .serve()
                .map_err(|e| ApiError::internal(format!("chaos: {e}")))?;
            Ok(())
        }
        Command::Loadgen {
            addr,
            clients,
            requests,
            benchmark,
            cluster,
            class,
            nranks,
            timeout_s,
        } => {
            let body = RunRequest::new(&benchmark, class, nranks.unwrap_or(0))
                .with_cluster(cluster_key(cluster))
                .to_json();
            let mut cfg = fleet::LoadgenConfig::default()
                .with_addr(addr)
                .with_request("POST", "/v1/run", body);
            if let Some(c) = clients {
                cfg = cfg.with_clients(c);
            }
            if let Some(r) = requests {
                cfg = cfg.with_requests_per_client(r);
            }
            if let Some(t) = timeout_s {
                cfg = cfg.with_timeout_s(t);
            }
            let report = fleet::run_loadgen(&cfg);
            println!("{}", report.render());
            Ok(())
        }
    }
}

fn figures(which: &str, exec: ExecOpts) -> Result<(), ApiError> {
    let a = presets::cluster_a();
    let b = presets::cluster_b();
    let cfg = RunConfig::default().with_repetitions(3).with_trace(false);
    // One executor for the whole regeneration: `figures all` shares the
    // fig1 grid between the fig1 and fig3/fig4 sections via the cache,
    // and a second invocation replays entirely from results/cache/.
    let executor = executor_of(cfg, exec);
    let all = which == "all";
    let mut matched = false;

    if all || which == "tables" {
        matched = true;
        println!("{}", tables::table1().render());
        println!("{}", tables::table2().render());
        println!("{}", tables::table3(&[&a, &b]).render());
    }
    if all || which == "fig1" {
        matched = true;
        let f1a = node_level::fig1_with(&executor, &a, 8)?;
        let f1b = node_level::fig1_with(&executor, &b, 8)?;
        println!("== §4.1.1 parallel efficiency [%] ==");
        for ((n, x), (_, y)) in node_level::efficiency_table(&f1a, &a)
            .iter()
            .zip(&node_level::efficiency_table(&f1b, &b))
        {
            println!("{n:<12} A {x:>5.0}  B {y:>5.0}");
        }
        println!("== §4.1.2 acceleration B/A ==");
        for (n, x) in node_level::acceleration_table(&f1a, &f1b) {
            println!("{n:<12} {x:>5.2}");
        }
        println!("== §4.1.3 vectorization [%] ==");
        for (n, x) in node_level::vectorization_table(&f1a) {
            println!("{n:<12} {x:>5.1}");
        }
    }
    if all || which == "fig2" {
        matched = true;
        let f2 = node_level::fig2_with(&executor, &a, 24)?;
        println!(
            "Fig. 2 insets: minisweep@59 Recv {:.0} %, lbm@{} wait+barrier {:.0} %",
            f2.minisweep_59.recv_fraction * 100.0,
            f2.lbm_odd.nranks,
            (f2.lbm_odd.wait_fraction + f2.lbm_odd.barrier_fraction) * 100.0
        );
    }
    if all || which == "fig3" || which == "fig4" {
        matched = true;
        let f1a = node_level::fig1_with(&executor, &a, 8)?;
        let f3 = power_energy::fig3(&f1a, &a);
        println!(
            "Fig. 3 ({}): extrapolated baseline {:.0} W/socket",
            a.name, f3.extrapolated_baseline_w
        );
        for (name, w, frac) in power_energy::hot_cool_table(&f1a, &a) {
            println!("  {name:<12} {w:>5.0} W/socket ({:.0} % TDP)", frac * 100.0);
        }
        let f4 = power_energy::fig4(&f1a);
        for z in &f4.zplots {
            println!(
                "  {:<24} E/EDP minima separation: {} step(s)",
                z.label,
                z.min_separation_steps().unwrap_or(0)
            );
        }
    }
    if all || which == "fig5" || which == "fig6" {
        matched = true;
        for cl in [&a, &b] {
            let f5 = multi_node::fig5_with(&executor, cl, &[1, 2, 4, 8])?;
            println!("{}", f5.render());
            println!("scaling cases ({}):", cl.name);
            for (n, c) in multi_node::scaling_cases(&f5) {
                println!("  {n:<12} {c}");
            }
        }
    }
    if !matched {
        return Err(ApiError::bad_request(format!(
            "unknown figure '{which}' (use tables|fig1|fig2|fig3|fig4|fig5|fig6|all)"
        )));
    }
    maybe_metrics(&executor, &format!("figures_{which}"), exec)?;
    Ok(())
}
