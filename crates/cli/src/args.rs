//! Hand-rolled argument parsing for the `spechpc` binary (no external
//! CLI dependency).

use spechpc::prelude::WorkloadClass;

/// Which cluster preset to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterChoice {
    A,
    B,
}

impl ClusterChoice {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "a" | "clustera" | "icelake" | "icx" => Ok(ClusterChoice::A),
            "b" | "clusterb" | "sapphirerapids" | "spr" => Ok(ClusterChoice::B),
            other => Err(format!("unknown cluster '{other}' (use a|b)")),
        }
    }
}

pub fn parse_class(s: &str) -> Result<WorkloadClass, String> {
    match s.to_ascii_lowercase().as_str() {
        "test" => Ok(WorkloadClass::Test),
        "tiny" | "t" => Ok(WorkloadClass::Tiny),
        "small" | "s" => Ok(WorkloadClass::Small),
        "medium" | "m" => Ok(WorkloadClass::Medium),
        "large" | "l" => Ok(WorkloadClass::Large),
        other => Err(format!(
            "unknown workload class '{other}' (use test|tiny|small|medium|large)"
        )),
    }
}

/// Execution-layer options shared by the simulating commands: worker
/// count, run-cache policy and metrics reporting (see
/// `spechpc_harness::exec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOpts {
    /// `--jobs N`: worker threads (`None` = one per host core).
    pub jobs: Option<usize>,
    /// `--no-cache`: re-simulate everything, and do not touch
    /// `results/cache/`.
    pub no_cache: bool,
    /// `--metrics`: print executor/cache counters after the command and
    /// write them as CSV under `results/metrics/`.
    pub metrics: bool,
}

/// Fault-injection options shared by the simulating commands (see
/// `spechpc_harness::faultcfg` for the plan format).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultOpts {
    /// `--faults plan.toml`: inject this fault plan into every run.
    pub plan: Option<String>,
    /// `--fault-seed N`: override the plan's seed.
    pub seed: Option<u64>,
}

/// The parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    List,
    Run {
        benchmark: String,
        cluster: ClusterChoice,
        class: WorkloadClass,
        nranks: Option<usize>,
        trace_csv: Option<String>,
        /// `--threads N`: PDES engine threads per simulation
        /// (`None` = 1 = sequential).
        threads: Option<usize>,
        exec: ExecOpts,
        faults: FaultOpts,
    },
    Suite {
        cluster: ClusterChoice,
        class: WorkloadClass,
        nranks: Option<usize>,
        /// `--threads N`: PDES engine threads per simulation.
        threads: Option<usize>,
        exec: ExecOpts,
        faults: FaultOpts,
    },
    Profile {
        benchmark: String,
        cluster: ClusterChoice,
        class: WorkloadClass,
        nranks: Option<usize>,
        /// `--threads N`: PDES engine threads per simulation.
        threads: Option<usize>,
        exec: ExecOpts,
        faults: FaultOpts,
    },
    /// Validate and describe a fault plan without running anything.
    Faults {
        plan: String,
    },
    Score {
        class: WorkloadClass,
        exec: ExecOpts,
    },
    Figures {
        which: String,
        exec: ExecOpts,
    },
    Dvfs {
        benchmark: String,
        cluster: ClusterChoice,
    },
    /// Capacity-plan a job queue against a modeled cluster (the same
    /// evaluator as `POST /v1/plan`).
    Plan {
        /// Positional: PlanRequest JSON file (see `plans/capacity-ci.json`).
        file: String,
        /// `--json`: print the wire-format `PlanResponse` instead of the
        /// human-readable summary.
        json: bool,
        exec: ExecOpts,
    },
    /// Run the resident simulation-as-a-service daemon.
    Serve {
        /// `--addr host:port` (port 0 = ephemeral).
        addr: String,
        /// `--workers N`: simulation worker threads.
        workers: Option<usize>,
        /// `--queue-depth N`: bounded dispatch queue.
        queue_depth: Option<usize>,
        /// `--max-inflight N`: concurrent simulation cap.
        max_inflight: Option<usize>,
        /// `--timeout-s S`: per-request simulation budget (cooperative
        /// cancel; `0` disables).
        timeout_s: Option<f64>,
        /// `--max-conns N`: concurrent open-connection cap.
        max_conns: Option<usize>,
        /// `--keepalive-max N`: requests per keep-alive connection
        /// (`0` = unlimited).
        keepalive_max: Option<usize>,
        /// `--idle-timeout-s S`: idle keep-alive connection timeout.
        idle_timeout_s: Option<f64>,
        /// `--read-timeout-s S`: incomplete-request read deadline
        /// (slow-loris reaper).
        read_timeout_s: Option<f64>,
        /// `--peers a:p,b:p`: fleet peers whose caches are consulted on
        /// a local miss (`GET /v1/cache/{hash}`).
        peers: Vec<String>,
        /// `--threads N`: default PDES engine threads per simulation
        /// (requests may override through their `config.threads`).
        threads: Option<usize>,
        exec: ExecOpts,
    },
    /// Run the fleet coordinator in front of N worker daemons.
    Fleet {
        /// `--addr host:port` (port 0 = ephemeral).
        addr: String,
        /// `--workers a:p,b:p,...`: worker daemon addresses.
        workers: Vec<String>,
        /// `--vnodes N`: virtual nodes per worker on the hash ring.
        vnodes: Option<usize>,
        /// `--timeout-s S`: per-forward timeout.
        timeout_s: Option<f64>,
        /// `--no-hedge`: disable hedged `/v1/run` requests.
        no_hedge: bool,
    },
    /// Deterministic seeded fault-injecting TCP proxy.
    Chaos {
        /// Positional: chaos plan TOML (see `plans/chaos-*.toml`).
        plan: String,
        /// `--listen host:port` (port 0 = ephemeral).
        listen: String,
        /// `--upstream host:port`: where intact bytes are relayed.
        upstream: Option<String>,
        /// `--chaos-seed N`: override the plan's seed.
        seed: Option<u64>,
        /// `--validate`: parse + describe the plan, then exit.
        validate: bool,
    },
    /// Synthetic keep-alive load against a daemon or coordinator.
    Loadgen {
        /// `--addr host:port`: target.
        addr: String,
        /// `--clients N`: concurrent keep-alive connections.
        clients: Option<usize>,
        /// `--requests N`: requests per client.
        requests: Option<usize>,
        /// Request shape: benchmark/cluster/class/ranks of the replayed
        /// grid point.
        benchmark: String,
        cluster: ClusterChoice,
        class: WorkloadClass,
        nranks: Option<usize>,
        /// `--timeout-s S`: per-request timeout.
        timeout_s: Option<f64>,
    },
    BenchSnapshot {
        /// Fewer iterations (CI smoke mode).
        quick: bool,
        /// Compare against a committed snapshot instead of writing.
        check: Option<String>,
        /// Output path (default `BENCH_engine.json` /
        /// `BENCH_service.json`).
        out: Option<String>,
        /// `--service`: snapshot the service path (requests/s, latency
        /// percentiles, cache-hit ratio) instead of the engine.
        service: bool,
    },
    Help,
}

pub const USAGE: &str = "\
spechpc — SPEChpc 2021 performance/energy case-study reproduction

USAGE:
    spechpc <COMMAND> [OPTIONS]

COMMANDS:
    list                         list benchmarks and cluster presets
    run <benchmark>              simulate one benchmark
        --cluster a|b            cluster preset             [default: a]
        --class tiny|small|...   workload class             [default: tiny]
        -n, --ranks N            MPI ranks                  [default: full node]
        --trace FILE.csv         write the ITAC-style trace as CSV
    suite                        run the whole suite; with faults injected a
                                 partial run reports failures and exits 3
        --cluster a|b  --class C  -n N
    profile <benchmark>          Fig.-2-style MPI time breakdown (per-rank
                                 phases incl. fault stall, message histograms,
                                 comm matrix) without tracing; CSV under
                                 results/profile/
        --cluster a|b  --class C  -n N
    faults <plan.toml>           validate a fault plan and describe its events
    score                        SPEC-style score of ClusterB vs ClusterA
        --class C                                           [default: tiny]
    figures <fig1|fig2|fig3|fig4|fig5|fig6|tables|all>
                                 regenerate the paper's artifacts
    dvfs <benchmark>             frequency-scaling energy analysis
        --cluster a|b
    plan <request.json>          capacity-plan a job queue against a modeled
                                 cluster: FCFS + EASY backfill scheduling,
                                 optional fleet power caps, per-job wait and
                                 turnaround, energy/EDP, scenario comparison
                                 (same evaluator as POST /v1/plan)
        --json                   print the wire-format PlanResponse
    serve                        simulation-as-a-service HTTP daemon: POST
                                 /v1/run and /v1/suite, GET /v1/profile/{b},
                                 /v1/metrics, /v1/health; graceful drain on
                                 SIGTERM or POST /v1/shutdown
        --addr HOST:PORT         listen address        [default: 127.0.0.1:8722]
        --workers N              simulation workers              [default: 8]
        --queue-depth N          bounded dispatch queue         [default: 64]
        --max-inflight N         concurrent simulation cap [default: workers-1]
        --timeout-s S            per-request simulation budget; requests over
                                 budget answer 504 (0 disables) [default: 300]
        --max-conns N            open-connection cap; accepts beyond it answer
                                 503                         [default: 10240]
        --keepalive-max N        requests per keep-alive connection before the
                                 daemon closes it (0 = unlimited)  [default: 0]
        --idle-timeout-s S       close idle keep-alive connections  [default: 60]
        --read-timeout-s S       408 + close for requests not completed in time
                                 (slow-loris reaper)               [default: 30]
        --peers A:P,B:P          fleet peers; on a local cache miss ask each
                                 peer's GET /v1/cache/{key} before simulating
    fleet                        sharded-execution coordinator: routes /v1/run
                                 by consistent-hashed RunKey, shards /v1/suite
                                 across workers with work stealing, fails over
                                 on dead or saturated workers
        --addr HOST:PORT         listen address        [default: 127.0.0.1:8700]
        --workers A:P,B:P,...    worker daemon addresses (required)
        --vnodes N               virtual nodes per worker       [default: 64]
        --timeout-s S            per-forward timeout           [default: 300]
        --no-hedge               disable hedged /v1/run requests (hedging fires
                                 the second ring preference after the observed
                                 p99 latency; first trustworthy answer wins)
    chaos <plan.toml>            deterministic fault-injecting TCP proxy: delay,
                                 throttle, truncate, garbage, reset, black-hole
                                 per connection, replayed bit-identically from a
                                 stateless hash of (seed, conn, fault)
        --listen HOST:PORT       proxy listen address  [default: 127.0.0.1:8799]
        --upstream HOST:PORT     where intact bytes relay to (required unless
                                 --validate)
        --chaos-seed N           override the plan's seed
        --validate               parse + describe the plan, then exit
    loadgen [benchmark]          synthetic keep-alive load against a daemon or
                                 coordinator; prints requests/s and p50/p99
        --addr HOST:PORT         target                [default: 127.0.0.1:8722]
        --clients N              concurrent connections         [default: 32]
        --requests N             requests per client            [default: 64]
        --cluster a|b  --class C  -n N    shape of the replayed run request
        --timeout-s S            per-request timeout            [default: 60]
    bench-snapshot               measure engine throughput + suite wall time
                                 and write the perf-trajectory file
        --out FILE               snapshot path        [default: BENCH_engine.json]
        --check FILE             compare against FILE instead of writing;
                                 non-zero exit on >30% normalized regression
        --quick                  fewer iterations (CI smoke mode)
        --service                snapshot the service path instead (requests/s,
                                 p50/p99, cache-hit ratio) through a live
                                 daemon; default out BENCH_service.json
    help                         show this message

EXECUTION (run/suite/score/figures/profile):
    --jobs N                     worker threads             [default: all cores]
    --no-cache                   re-simulate; skip results/cache/
    --metrics                    report executor/cache counters; CSV under
                                 results/metrics/

ENGINE (run/suite/profile/serve):
    --threads N                  PDES engine threads inside each simulation;
                                 results are bit-identical at any thread count
                                 (1 = sequential scheduler)       [default: 1]

FAULT INJECTION (run/suite/profile; see plans/ for examples):
    --faults plan.toml           inject a deterministic fault plan (os-noise,
                                 stragglers, flaky links, throttling, crashes)
    --fault-seed N               override the plan's seed
";

/// Parse the argument vector (without `argv[0]`).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };

    // Collect options (--key value / -n value), valueless flags, and
    // positionals.
    const FLAGS: [&str; 7] = [
        "no-cache", "metrics", "quick", "service", "validate", "no-hedge", "json",
    ];
    let mut positional = Vec::new();
    let mut options = std::collections::BTreeMap::new();
    let mut flags = std::collections::BTreeSet::new();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if FLAGS.contains(&key) {
                flags.insert(key.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                options.insert(key.to_string(), value.clone());
            }
        } else if a == "-n" {
            let value = it.next().ok_or("option -n needs a value")?;
            options.insert("ranks".to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }

    let cluster = match options.get("cluster") {
        Some(s) => ClusterChoice::parse(s)?,
        None => ClusterChoice::A,
    };
    let class = match options.get("class") {
        Some(s) => parse_class(s)?,
        None => WorkloadClass::Tiny,
    };
    let nranks = match options.get("ranks") {
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|e| format!("bad rank count '{s}': {e}"))?,
        ),
        None => None,
    };
    let exec = ExecOpts {
        jobs: match options.get("jobs") {
            Some(s) => Some(
                s.parse::<usize>()
                    .map_err(|e| format!("bad job count '{s}': {e}"))
                    .and_then(|n| (n > 0).then_some(n).ok_or("--jobs must be ≥ 1".to_string()))?,
            ),
            None => None,
        },
        no_cache: flags.contains("no-cache"),
        metrics: flags.contains("metrics"),
    };
    let faults = FaultOpts {
        plan: options.get("faults").cloned(),
        seed: match options.get("fault-seed") {
            Some(s) => Some(
                s.parse::<u64>()
                    .map_err(|e| format!("bad fault seed '{s}': {e}"))?,
            ),
            None => None,
        },
    };

    let usize_opt = |key: &str| -> Result<Option<usize>, String> {
        match options.get(key) {
            Some(s) => s
                .parse::<usize>()
                .map_err(|e| format!("bad --{key} '{s}': {e}"))
                .and_then(|n| {
                    (n > 0)
                        .then_some(Some(n))
                        .ok_or(format!("--{key} must be ≥ 1"))
                }),
            None => Ok(None),
        }
    };
    // Counters that legitimately allow 0 (= unlimited).
    let count_opt = |key: &str| -> Result<Option<usize>, String> {
        match options.get(key) {
            Some(s) => s
                .parse::<usize>()
                .map(Some)
                .map_err(|e| format!("bad --{key} '{s}': {e}")),
            None => Ok(None),
        }
    };
    let secs_opt = |key: &str| -> Result<Option<f64>, String> {
        match options.get(key) {
            Some(s) => s
                .parse::<f64>()
                .map_err(|e| format!("bad --{key} '{s}': {e}"))
                .and_then(|t| {
                    (t >= 0.0)
                        .then_some(Some(t))
                        .ok_or(format!("--{key} must be ≥ 0"))
                }),
            None => Ok(None),
        }
    };
    // Comma-separated address lists (`--peers a:1,b:2`).
    let list_opt = |key: &str| -> Vec<String> {
        options
            .get(key)
            .map(|s| {
                s.split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };

    match cmd.as_str() {
        "list" => Ok(Command::List),
        "run" => {
            let benchmark = positional
                .first()
                .ok_or("run: which benchmark? (try `spechpc list`)")?
                .clone();
            Ok(Command::Run {
                benchmark,
                cluster,
                class,
                nranks,
                trace_csv: options.get("trace").cloned(),
                threads: usize_opt("threads")?,
                exec,
                faults,
            })
        }
        "suite" => Ok(Command::Suite {
            cluster,
            class,
            nranks,
            threads: usize_opt("threads")?,
            exec,
            faults,
        }),
        "profile" => {
            let benchmark = positional
                .first()
                .ok_or("profile: which benchmark? (try `spechpc list`)")?
                .clone();
            Ok(Command::Profile {
                benchmark,
                cluster,
                class,
                nranks,
                threads: usize_opt("threads")?,
                exec,
                faults,
            })
        }
        "faults" => {
            let plan = positional
                .first()
                .ok_or("faults: which plan file? (try plans/noisy-node.toml)")?
                .clone();
            Ok(Command::Faults { plan })
        }
        "score" => Ok(Command::Score { class, exec }),
        "figures" => Ok(Command::Figures {
            which: positional.first().cloned().unwrap_or_else(|| "all".into()),
            exec,
        }),
        "dvfs" => {
            let benchmark = positional.first().ok_or("dvfs: which benchmark?")?.clone();
            Ok(Command::Dvfs { benchmark, cluster })
        }
        "plan" => {
            let file = positional
                .first()
                .ok_or("plan: which request file? (try plans/capacity-ci.json)")?
                .clone();
            Ok(Command::Plan {
                file,
                json: flags.contains("json"),
                exec,
            })
        }
        "serve" => Ok(Command::Serve {
            addr: options
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:8722".into()),
            workers: usize_opt("workers")?,
            queue_depth: usize_opt("queue-depth")?,
            max_inflight: usize_opt("max-inflight")?,
            timeout_s: secs_opt("timeout-s")?,
            max_conns: usize_opt("max-conns")?,
            keepalive_max: count_opt("keepalive-max")?,
            idle_timeout_s: secs_opt("idle-timeout-s")?,
            read_timeout_s: secs_opt("read-timeout-s")?,
            peers: list_opt("peers"),
            threads: usize_opt("threads")?,
            exec,
        }),
        "fleet" => {
            let workers = list_opt("workers");
            if workers.is_empty() {
                return Err("fleet: --workers a:port,b:port,... is required".into());
            }
            Ok(Command::Fleet {
                addr: options
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:8700".into()),
                workers,
                vnodes: usize_opt("vnodes")?,
                timeout_s: secs_opt("timeout-s")?,
                no_hedge: flags.contains("no-hedge"),
            })
        }
        "chaos" => {
            let plan = positional
                .first()
                .ok_or("chaos: which plan file? (try plans/chaos-ci.toml)")?
                .clone();
            let validate = flags.contains("validate");
            let upstream = options.get("upstream").cloned();
            if !validate && upstream.is_none() {
                return Err("chaos: --upstream host:port is required (or use --validate)".into());
            }
            Ok(Command::Chaos {
                plan,
                listen: options
                    .get("listen")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:8799".into()),
                upstream,
                seed: match options.get("chaos-seed") {
                    Some(s) => Some(
                        s.parse::<u64>()
                            .map_err(|e| format!("bad --chaos-seed '{s}': {e}"))?,
                    ),
                    None => None,
                },
                validate,
            })
        }
        "loadgen" => Ok(Command::Loadgen {
            addr: options
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:8722".into()),
            clients: usize_opt("clients")?,
            requests: usize_opt("requests")?,
            benchmark: positional.first().cloned().unwrap_or_else(|| "lbm".into()),
            cluster,
            class,
            nranks,
            timeout_s: secs_opt("timeout-s")?,
        }),
        "bench-snapshot" => Ok(Command::BenchSnapshot {
            quick: flags.contains("quick"),
            check: options.get("check").cloned(),
            out: options.get("out").cloned(),
            service: flags.contains("service"),
        }),
        "help" | "-h" | "--help" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_with_all_options() {
        let c = parse(&v(&[
            "run",
            "tealeaf",
            "--cluster",
            "b",
            "--class",
            "small",
            "-n",
            "208",
            "--trace",
            "out.csv",
            "--threads",
            "4",
            "--jobs",
            "4",
            "--no-cache",
            "--metrics",
            "--faults",
            "plans/noisy-node.toml",
            "--fault-seed",
            "1234",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Run {
                benchmark: "tealeaf".into(),
                cluster: ClusterChoice::B,
                class: WorkloadClass::Small,
                nranks: Some(208),
                trace_csv: Some("out.csv".into()),
                threads: Some(4),
                exec: ExecOpts {
                    jobs: Some(4),
                    no_cache: true,
                    metrics: true,
                },
                faults: FaultOpts {
                    plan: Some("plans/noisy-node.toml".into()),
                    seed: Some(1234),
                },
            }
        );
    }

    #[test]
    fn parses_plan() {
        let c = parse(&v(&[
            "plan",
            "plans/capacity-ci.json",
            "--json",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Plan {
                file: "plans/capacity-ci.json".into(),
                json: true,
                exec: ExecOpts {
                    jobs: Some(2),
                    no_cache: false,
                    metrics: false,
                },
            }
        );
        assert!(parse(&v(&["plan"])).is_err());
    }

    #[test]
    fn parses_faults_subcommand_and_rejects_bad_seeds() {
        assert_eq!(
            parse(&v(&["faults", "plans/degraded-fabric.toml"])).unwrap(),
            Command::Faults {
                plan: "plans/degraded-fabric.toml".into(),
            }
        );
        assert!(parse(&v(&["faults"])).is_err());
        assert!(parse(&v(&["suite", "--fault-seed", "minus-one"])).is_err());
    }

    #[test]
    fn parses_profile() {
        let c = parse(&v(&["profile", "minisweep", "--cluster", "b", "-n", "59"])).unwrap();
        assert_eq!(
            c,
            Command::Profile {
                benchmark: "minisweep".into(),
                cluster: ClusterChoice::B,
                class: WorkloadClass::Tiny,
                nranks: Some(59),
                threads: None,
                exec: ExecOpts::default(),
                faults: FaultOpts::default(),
            }
        );
        assert!(parse(&v(&["profile"])).is_err());
    }

    #[test]
    fn defaults_applied() {
        let c = parse(&v(&["run", "lbm"])).unwrap();
        assert_eq!(
            c,
            Command::Run {
                benchmark: "lbm".into(),
                cluster: ClusterChoice::A,
                class: WorkloadClass::Tiny,
                nranks: None,
                trace_csv: None,
                threads: None,
                exec: ExecOpts::default(),
                faults: FaultOpts::default(),
            }
        );
    }

    #[test]
    fn threads_validation() {
        assert!(parse(&v(&["run", "lbm", "--threads", "0"])).is_err());
        assert!(parse(&v(&["suite", "--threads", "several"])).is_err());
        let c = parse(&v(&["suite", "--threads", "8"])).unwrap();
        assert!(matches!(
            c,
            Command::Suite {
                threads: Some(8),
                ..
            }
        ));
        let c = parse(&v(&["serve", "--threads", "2"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                threads: Some(2),
                ..
            }
        ));
    }

    #[test]
    fn jobs_validation() {
        assert!(parse(&v(&["suite", "--jobs", "0"])).is_err());
        assert!(parse(&v(&["suite", "--jobs", "many"])).is_err());
        assert!(parse(&v(&["suite", "--jobs"])).is_err());
        let c = parse(&v(&["suite", "--jobs", "16"])).unwrap();
        assert!(matches!(
            c,
            Command::Suite {
                exec: ExecOpts {
                    jobs: Some(16),
                    no_cache: false,
                    metrics: false,
                },
                ..
            }
        ));
    }

    #[test]
    fn cluster_aliases() {
        assert_eq!(ClusterChoice::parse("SPR").unwrap(), ClusterChoice::B);
        assert_eq!(ClusterChoice::parse("icelake").unwrap(), ClusterChoice::A);
        assert!(ClusterChoice::parse("c").is_err());
    }

    #[test]
    fn class_aliases() {
        assert_eq!(parse_class("t").unwrap(), WorkloadClass::Tiny);
        assert_eq!(parse_class("MEDIUM").unwrap(), WorkloadClass::Medium);
        assert!(parse_class("gigantic").is_err());
    }

    #[test]
    fn missing_values_are_errors() {
        assert!(parse(&v(&["run", "lbm", "--cluster"])).is_err());
        assert!(parse(&v(&["run", "lbm", "-n"])).is_err());
        assert!(parse(&v(&["run"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn empty_and_help_flags_mean_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["-h"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_bench_snapshot() {
        assert_eq!(
            parse(&v(&["bench-snapshot"])).unwrap(),
            Command::BenchSnapshot {
                quick: false,
                check: None,
                out: None,
                service: false,
            }
        );
        assert_eq!(
            parse(&v(&[
                "bench-snapshot",
                "--quick",
                "--check",
                "BENCH_engine.json"
            ]))
            .unwrap(),
            Command::BenchSnapshot {
                quick: true,
                check: Some("BENCH_engine.json".into()),
                out: None,
                service: false,
            }
        );
        assert_eq!(
            parse(&v(&["bench-snapshot", "--out", "snap.json"])).unwrap(),
            Command::BenchSnapshot {
                quick: false,
                check: None,
                out: Some("snap.json".into()),
                service: false,
            }
        );
        assert_eq!(
            parse(&v(&[
                "bench-snapshot",
                "--service",
                "--quick",
                "--check",
                "BENCH_service.json"
            ]))
            .unwrap(),
            Command::BenchSnapshot {
                quick: true,
                check: Some("BENCH_service.json".into()),
                out: None,
                service: true,
            }
        );
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&v(&["serve"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8722".into(),
                workers: None,
                queue_depth: None,
                max_inflight: None,
                timeout_s: None,
                max_conns: None,
                keepalive_max: None,
                idle_timeout_s: None,
                read_timeout_s: None,
                peers: Vec::new(),
                threads: None,
                exec: ExecOpts::default(),
            }
        );
        assert_eq!(
            parse(&v(&[
                "serve",
                "--addr",
                "0.0.0.0:0",
                "--workers",
                "4",
                "--queue-depth",
                "16",
                "--max-inflight",
                "2",
                "--timeout-s",
                "1.5",
                "--max-conns",
                "2048",
                "--keepalive-max",
                "0",
                "--idle-timeout-s",
                "10",
                "--read-timeout-s",
                "5",
                "--peers",
                "127.0.0.1:8723, 127.0.0.1:8724",
                "--no-cache",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:0".into(),
                workers: Some(4),
                queue_depth: Some(16),
                max_inflight: Some(2),
                timeout_s: Some(1.5),
                max_conns: Some(2048),
                keepalive_max: Some(0),
                idle_timeout_s: Some(10.0),
                read_timeout_s: Some(5.0),
                peers: vec!["127.0.0.1:8723".into(), "127.0.0.1:8724".into()],
                threads: None,
                exec: ExecOpts {
                    jobs: None,
                    no_cache: true,
                    metrics: false,
                },
            }
        );
        assert!(parse(&v(&["serve", "--workers", "0"])).is_err());
        assert!(parse(&v(&["serve", "--max-conns", "0"])).is_err());
        assert!(parse(&v(&["serve", "--queue-depth", "deep"])).is_err());
        assert!(parse(&v(&["serve", "--timeout-s", "-1"])).is_err());
        assert!(parse(&v(&["serve", "--read-timeout-s", "-1"])).is_err());
        assert!(parse(&v(&["serve", "--keepalive-max", "none"])).is_err());
    }

    #[test]
    fn parses_fleet() {
        assert_eq!(
            parse(&v(&[
                "fleet",
                "--workers",
                "127.0.0.1:8722,127.0.0.1:8723",
                "--vnodes",
                "32",
                "--timeout-s",
                "10",
            ]))
            .unwrap(),
            Command::Fleet {
                addr: "127.0.0.1:8700".into(),
                workers: vec!["127.0.0.1:8722".into(), "127.0.0.1:8723".into()],
                vnodes: Some(32),
                timeout_s: Some(10.0),
                no_hedge: false,
            }
        );
        // Workers are mandatory; an empty list is an error too.
        assert!(parse(&v(&["fleet"])).is_err());
        assert!(parse(&v(&["fleet", "--workers", ","])).is_err());
        assert!(parse(&v(&["fleet", "--workers", "a:1", "--vnodes", "0"])).is_err());
        // Hedging is on by default and --no-hedge switches it off.
        assert!(matches!(
            parse(&v(&["fleet", "--workers", "a:1", "--no-hedge"])).unwrap(),
            Command::Fleet { no_hedge: true, .. }
        ));
    }

    #[test]
    fn parses_chaos() {
        assert_eq!(
            parse(&v(&[
                "chaos",
                "plans/chaos-ci.toml",
                "--listen",
                "127.0.0.1:9001",
                "--upstream",
                "127.0.0.1:8722",
                "--chaos-seed",
                "7",
            ]))
            .unwrap(),
            Command::Chaos {
                plan: "plans/chaos-ci.toml".into(),
                listen: "127.0.0.1:9001".into(),
                upstream: Some("127.0.0.1:8722".into()),
                seed: Some(7),
                validate: false,
            }
        );
        // --validate needs no upstream…
        assert_eq!(
            parse(&v(&["chaos", "plans/chaos-ci.toml", "--validate"])).unwrap(),
            Command::Chaos {
                plan: "plans/chaos-ci.toml".into(),
                listen: "127.0.0.1:8799".into(),
                upstream: None,
                seed: None,
                validate: true,
            }
        );
        // …but serving does, and the plan file is always required.
        assert!(parse(&v(&["chaos", "plans/chaos-ci.toml"])).is_err());
        assert!(parse(&v(&["chaos"])).is_err());
        assert!(parse(&v(&["chaos", "p.toml", "--validate", "--chaos-seed", "x"])).is_err());
    }

    #[test]
    fn parses_loadgen() {
        assert_eq!(
            parse(&v(&["loadgen"])).unwrap(),
            Command::Loadgen {
                addr: "127.0.0.1:8722".into(),
                clients: None,
                requests: None,
                benchmark: "lbm".into(),
                cluster: ClusterChoice::A,
                class: WorkloadClass::Tiny,
                nranks: None,
                timeout_s: None,
            }
        );
        assert_eq!(
            parse(&v(&[
                "loadgen",
                "tealeaf",
                "--addr",
                "127.0.0.1:8700",
                "--clients",
                "8",
                "--requests",
                "100",
                "--cluster",
                "b",
                "--class",
                "small",
                "-n",
                "16",
            ]))
            .unwrap(),
            Command::Loadgen {
                addr: "127.0.0.1:8700".into(),
                clients: Some(8),
                requests: Some(100),
                benchmark: "tealeaf".into(),
                cluster: ClusterChoice::B,
                class: WorkloadClass::Small,
                nranks: Some(16),
                timeout_s: None,
            }
        );
        assert!(parse(&v(&["loadgen", "--clients", "0"])).is_err());
    }

    #[test]
    fn figures_default_all() {
        assert_eq!(
            parse(&v(&["figures"])).unwrap(),
            Command::Figures {
                which: "all".into(),
                exec: ExecOpts::default(),
            }
        );
        assert_eq!(
            parse(&v(&["figures", "fig5", "--no-cache"])).unwrap(),
            Command::Figures {
                which: "fig5".into(),
                exec: ExecOpts {
                    jobs: None,
                    no_cache: true,
                    metrics: false,
                },
            }
        );
    }
}
