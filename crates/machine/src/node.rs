//! Node specification: sockets, SNC layout, caches, and derived metrics
//! (peak performance, saturated node bandwidth, machine balance).

use crate::cache::CacheHierarchy;
use crate::cpu::CpuSpec;
use crate::memory::MemorySpec;
use crate::numa::{self, NumaDomain};
use crate::{GBps, GFlops, Watts};

/// Specification of one compute node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Short name, e.g. "ClusterA node".
    pub name: String,
    pub cpu: CpuSpec,
    /// Number of sockets.
    pub sockets: usize,
    /// Sub-NUMA-Clustering factor (ccNUMA domains per socket).
    pub snc: usize,
    pub caches: CacheHierarchy,
    /// Memory attached to *one* ccNUMA domain.
    pub domain_memory: MemorySpec,
}

impl NodeSpec {
    /// Total physical cores in the node.
    pub fn cores(&self) -> usize {
        self.sockets * self.cpu.cores_per_socket
    }

    /// Number of ccNUMA domains in the node.
    pub fn numa_domains(&self) -> usize {
        self.sockets * self.snc
    }

    /// Cores per ccNUMA domain — the paper's fundamental scaling unit.
    pub fn cores_per_domain(&self) -> usize {
        self.cpu.cores_per_socket / self.snc
    }

    /// The ccNUMA domain layout of the node.
    pub fn domain_layout(&self) -> Vec<NumaDomain> {
        numa::layout(self.sockets, self.cpu.cores_per_socket, self.snc)
    }

    /// Peak double-precision performance of the node in Gflop/s.
    pub fn peak_flops(&self) -> GFlops {
        self.cpu.peak_flops() * self.sockets as f64
    }

    /// Theoretical memory bandwidth of the node in GB/s.
    pub fn theoretical_mem_bandwidth(&self) -> GBps {
        self.domain_memory.theoretical_bw * self.numa_domains() as f64
    }

    /// Saturated (achievable) memory bandwidth of the node in GB/s.
    pub fn saturated_mem_bandwidth(&self) -> GBps {
        self.domain_memory.saturation.plateau * self.numa_domains() as f64
    }

    /// Machine balance in bytes/flop (saturated bandwidth over peak
    /// performance) — the paper notes ClusterB has the higher balance.
    pub fn machine_balance(&self) -> f64 {
        self.saturated_mem_bandwidth() / self.peak_flops()
    }

    /// Node TDP (sockets × socket TDP).
    pub fn tdp(&self) -> Watts {
        self.cpu.tdp_w * self.sockets as f64
    }

    /// Total memory capacity of the node in GiB.
    pub fn memory_capacity_gib(&self) -> f64 {
        self.domain_memory.capacity_gib * self.numa_domains() as f64
    }

    /// How many cores are active in each ccNUMA domain when the first
    /// `nprocs` cores are populated compactly (likwid-mpirun style).
    /// Returns one entry per domain.
    pub fn active_per_domain(&self, nprocs: usize) -> Vec<usize> {
        let layout = self.domain_layout();
        layout
            .iter()
            .map(|d| {
                let lo = d.first_core.min(nprocs);
                let hi = (d.first_core + d.cores).min(nprocs);
                hi - lo
            })
            .collect()
    }

    /// Achievable aggregate memory bandwidth with `nprocs` compactly
    /// pinned processes on the node, in GB/s: sum of the per-domain
    /// saturation curves.
    pub fn mem_bandwidth_at(&self, nprocs: usize) -> GBps {
        self.active_per_domain(nprocs)
            .iter()
            .map(|&n| self.domain_memory.saturation.bandwidth(n))
            .sum()
    }

    /// Effective last-level-cache capacity visible to a job with
    /// `active_cores` busy cores spread over `active_domains` ccNUMA
    /// domains: the victim-L3 slices of the active domains (SNC
    /// partitions the L3) plus the private L2s of the active cores.
    /// This is the capacity the cache-fit model uses — it *grows* as
    /// cores are added, which is how superlinear within-node scaling
    /// arises for cache-sensitive codes (paper §4.1.1, weather on
    /// ClusterB).
    pub fn effective_llc_active(&self, active_cores: usize, active_domains: usize) -> u64 {
        let l3_domain_slice = self
            .caches
            .level(3)
            .map(|l| l.capacity / self.snc as u64)
            .unwrap_or(0);
        let l2_core = self.caches.level(2).map(|l| l.capacity).unwrap_or(0);
        let l3_is_victim = self.caches.level(3).map(|l| l.victim).unwrap_or(false);
        let l3 = l3_domain_slice * active_domains.min(self.numa_domains()) as u64;
        if l3_is_victim {
            l3 + l2_core * active_cores.min(self.cores()) as u64
        } else {
            l3
        }
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.sockets == 0 {
            return Err("node must have at least one socket".into());
        }
        if !self.cpu.cores_per_socket.is_multiple_of(self.snc) {
            return Err(format!(
                "{} cores per socket do not divide into SNC{}",
                self.cpu.cores_per_socket, self.snc
            ));
        }
        self.caches.validate()?;
        if self.domain_memory.saturation.plateau > self.domain_memory.theoretical_bw {
            return Err("saturated bandwidth exceeds theoretical bandwidth".into());
        }
        if self.domain_memory.saturation.single_core > self.domain_memory.saturation.plateau {
            return Err("single-core bandwidth exceeds the saturation plateau".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn cluster_a_node_derived_metrics() {
        let n = presets::cluster_a().node;
        assert_eq!(n.cores(), 72);
        assert_eq!(n.numa_domains(), 4);
        assert_eq!(n.cores_per_domain(), 18);
        // Table 3: 2 sockets × 2.765 Tflop/s
        assert!((n.peak_flops() - 5529.6).abs() < 1.0);
        // Table 3: 4 × 102.4 GB/s theoretical
        assert!((n.theoretical_mem_bandwidth() - 409.6).abs() < 0.1);
        assert!((n.memory_capacity_gib() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_b_node_derived_metrics() {
        let n = presets::cluster_b().node;
        assert_eq!(n.cores(), 104);
        assert_eq!(n.numa_domains(), 8);
        assert_eq!(n.cores_per_domain(), 13);
        assert!((n.peak_flops() - 6656.0).abs() < 1.0);
        assert!((n.theoretical_mem_bandwidth() - 614.4).abs() < 0.1);
        assert!((n.memory_capacity_gib() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn paper_section_412_ratios() {
        // "the ratio of peak performance and memory bandwidth is 1.2 and
        // 1.5 respectively" (ClusterB over ClusterA).
        let a = presets::cluster_a().node;
        let b = presets::cluster_b().node;
        let perf = b.peak_flops() / a.peak_flops();
        let bw = b.saturated_mem_bandwidth() / a.saturated_mem_bandwidth();
        assert!((perf - 1.2).abs() < 0.05, "peak ratio {perf}");
        assert!((bw - 1.5).abs() < 0.15, "bandwidth ratio {bw}");
        // ClusterB has the higher machine balance (§5.1.3).
        assert!(b.machine_balance() > a.machine_balance());
    }

    #[test]
    fn active_per_domain_fills_compactly() {
        let n = presets::cluster_a().node;
        assert_eq!(n.active_per_domain(0), vec![0, 0, 0, 0]);
        assert_eq!(n.active_per_domain(10), vec![10, 0, 0, 0]);
        assert_eq!(n.active_per_domain(18), vec![18, 0, 0, 0]);
        assert_eq!(n.active_per_domain(19), vec![18, 1, 0, 0]);
        assert_eq!(n.active_per_domain(72), vec![18, 18, 18, 18]);
    }

    #[test]
    fn node_bandwidth_grows_with_domains() {
        let n = presets::cluster_a().node;
        // One saturated domain ≈ plateau; four saturated domains ≈ 4×.
        let one = n.mem_bandwidth_at(18);
        let four = n.mem_bandwidth_at(72);
        assert!((four / one - 4.0).abs() < 0.2);
    }

    #[test]
    fn presets_validate() {
        assert!(presets::cluster_a().node.validate().is_ok());
        assert!(presets::cluster_b().node.validate().is_ok());
        assert!(presets::sandy_bridge_node().validate().is_ok());
    }
}
