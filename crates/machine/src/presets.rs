//! Machine presets with the paper's Table 3 parameters.
//!
//! Power-model constants are calibrated against the paper's RAPL
//! measurements (§4.2): extrapolated zero-core baselines, the hot/cool
//! per-core power range bracketing sph-exa (98 %/97 % of TDP) and soma
//! (89 %/85 %), and DRAM power per ccNUMA domain (16 W saturated DDR4 on
//! ClusterA, 10–13 W DDR5 on ClusterB; 9.5 W / 5.5 W floors for
//! non-memory-bound codes).

use crate::cache::{CacheHierarchy, CacheLevel, CacheScope};
use crate::cluster::{ClusterSpec, InterconnectSpec, Topology};
use crate::cpu::CpuSpec;
use crate::memory::{MemorySpec, MemoryTech, SaturationCurve};
use crate::node::NodeSpec;

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// HDR100 InfiniBand in a fat-tree — identical on both clusters.
pub fn hdr100() -> InterconnectSpec {
    InterconnectSpec {
        name: "HDR100 InfiniBand".to_string(),
        topology: Topology::FatTree,
        link_bandwidth: 12.5,
        effective_bandwidth: 12.0,
        latency_s: 1.5e-6,
        intranode_bandwidth: 16.0,
        intranode_latency_s: 0.3e-6,
        eager_threshold: 64 * KIB as usize,
    }
}

/// ClusterA: dual-socket Intel Xeon Ice Lake Platinum 8360Y nodes,
/// 36 cores/socket at 2.4 GHz base, SNC2 (4 ccNUMA domains of 18 cores),
/// 8 channels DDR4-3200 per socket, 250 W TDP.
pub fn cluster_a() -> ClusterSpec {
    let cpu = CpuSpec {
        model: "Xeon Platinum 8360Y".to_string(),
        microarchitecture: "Ice Lake".to_string(),
        base_clock_ghz: 2.4,
        cores_per_socket: 36,
        simd_dp_lanes: 8,
        fma_units: 2,
        tdp_w: 250.0,
        // §4.2.3: 95–101 W extrapolated zero-core baseline (~40 % TDP).
        baseline_power_w: 98.0,
        // Calibrated: soma (cool) 222 W = 98 + 36×3.44;
        //             sph-exa (hot) 244 W = 98 + 36×4.06.
        core_power_cool_w: 3.44,
        core_power_hot_w: 4.06,
        stall_power_floor: 0.40,
    };
    let caches = CacheHierarchy {
        levels: vec![
            CacheLevel {
                level: 1,
                capacity: 48 * KIB,
                scope: CacheScope::Core,
                bandwidth_per_core: 400.0,
                victim: false,
            },
            CacheLevel {
                level: 2,
                capacity: 1280 * KIB,
                scope: CacheScope::Core,
                bandwidth_per_core: 60.0,
                victim: false,
            },
            CacheLevel {
                level: 3,
                capacity: 54 * MIB,
                scope: CacheScope::Socket,
                bandwidth_per_core: 25.0,
                victim: true,
            },
        ],
    };
    let domain_memory = MemorySpec {
        tech: MemoryTech::Ddr4,
        mts: 3200,
        channels: 4, // 8 per socket, halved by SNC2
        capacity_gib: 64.0,
        theoretical_bw: 102.4,
        // §4.1.4: saturated 75–78 GB/s per ccNUMA domain.
        saturation: SaturationCurve {
            single_core: 13.0,
            plateau: 76.5,
        },
        // §4.2.1: 16 W saturated, 9.5 W floor for cool codes.
        idle_power_w: 9.0,
        busy_power_w: 16.0,
    };
    ClusterSpec {
        name: "ClusterA".to_string(),
        node: NodeSpec {
            name: "ClusterA node (2× Ice Lake 8360Y)".to_string(),
            cpu,
            sockets: 2,
            snc: 2,
            caches,
            domain_memory,
        },
        nodes: 32,
        interconnect: hdr100(),
    }
}

/// ClusterB: dual-socket Intel Xeon Sapphire Rapids Platinum 8470 nodes,
/// 52 cores/socket at 2.0 GHz base, SNC4 (8 ccNUMA domains of 13 cores),
/// 8 channels DDR5-4800 per socket, 350 W TDP.
pub fn cluster_b() -> ClusterSpec {
    let cpu = CpuSpec {
        model: "Xeon Platinum 8470".to_string(),
        microarchitecture: "Sapphire Rapids".to_string(),
        base_clock_ghz: 2.0,
        cores_per_socket: 52,
        simd_dp_lanes: 8,
        fma_units: 2,
        tdp_w: 350.0,
        // §4.2.3: 176–181 W baseline (~50 % of TDP).
        baseline_power_w: 178.0,
        // Calibrated: soma (cool) 298 W = 178 + 52×2.31;
        //             sph-exa (hot) 333 W = 178 + 52×2.98.
        core_power_cool_w: 2.31,
        core_power_hot_w: 2.98,
        stall_power_floor: 0.40,
    };
    let caches = CacheHierarchy {
        levels: vec![
            CacheLevel {
                level: 1,
                capacity: 48 * KIB,
                scope: CacheScope::Core,
                bandwidth_per_core: 400.0,
                victim: false,
            },
            CacheLevel {
                level: 2,
                capacity: 2 * MIB,
                scope: CacheScope::Core,
                bandwidth_per_core: 70.0,
                victim: false,
            },
            CacheLevel {
                level: 3,
                capacity: 105 * MIB,
                scope: CacheScope::Socket,
                bandwidth_per_core: 30.0,
                victim: true,
            },
        ],
    };
    let domain_memory = MemorySpec {
        tech: MemoryTech::Ddr5,
        mts: 4800,
        channels: 2, // 8 per socket, quartered by SNC4
        capacity_gib: 128.0,
        theoretical_bw: 76.8,
        // §4.1.4: saturated 58–62 GB/s per ccNUMA domain.
        saturation: SaturationCurve {
            single_core: 11.0,
            plateau: 60.0,
        },
        // §4.2.1: 10–13 W saturated per domain, 5.5 W floor (DDR5 with
        // half-rate clocking is measurably cooler than DDR4, §4.2.3).
        idle_power_w: 5.0,
        busy_power_w: 11.5,
    };
    ClusterSpec {
        name: "ClusterB".to_string(),
        node: NodeSpec {
            name: "ClusterB node (2× Sapphire Rapids 8470)".to_string(),
            cpu,
            sockets: 2,
            snc: 4,
            caches,
            domain_memory,
        },
        nodes: 32,
        interconnect: hdr100(),
    }
}

/// A 2012 Sandy Bridge server node, used by the paper (§4.2.3) only as an
/// idle-power reference point: baseline power below 20 % of a 120 W TDP.
pub fn sandy_bridge_node() -> NodeSpec {
    let cpu = CpuSpec {
        model: "Xeon E5-2680".to_string(),
        microarchitecture: "Sandy Bridge".to_string(),
        base_clock_ghz: 2.7,
        cores_per_socket: 8,
        simd_dp_lanes: 4,
        // Separate ADD and MUL ports, together 8 DP flops/cycle — the
        // same throughput as one FMA unit at 4 lanes.
        fma_units: 1,
        tdp_w: 120.0,
        baseline_power_w: 22.0, // <20 % of TDP
        core_power_cool_w: 7.0,
        core_power_hot_w: 11.5,
        stall_power_floor: 0.65,
    };
    NodeSpec {
        name: "Sandy Bridge reference node".to_string(),
        cpu,
        sockets: 2,
        snc: 1,
        caches: CacheHierarchy {
            levels: vec![
                CacheLevel {
                    level: 1,
                    capacity: 32 * KIB,
                    scope: CacheScope::Core,
                    bandwidth_per_core: 150.0,
                    victim: false,
                },
                CacheLevel {
                    level: 2,
                    capacity: 256 * KIB,
                    scope: CacheScope::Core,
                    bandwidth_per_core: 40.0,
                    victim: false,
                },
                CacheLevel {
                    level: 3,
                    capacity: 20 * MIB,
                    scope: CacheScope::Socket,
                    bandwidth_per_core: 15.0,
                    victim: false,
                },
            ],
        },
        domain_memory: MemorySpec {
            tech: MemoryTech::Ddr3,
            mts: 1600,
            channels: 4,
            capacity_gib: 32.0,
            theoretical_bw: 51.2,
            saturation: SaturationCurve {
                single_core: 10.0,
                plateau: 36.0,
            },
            idle_power_w: 6.0,
            busy_power_w: 14.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_cool_tdp_fractions_match_paper_421() {
        // sph-exa: 98 % (A) / 97 % (B) wait — fractions of *socket* TDP:
        // 244/250 = 0.976, 333/350 = 0.951. soma: 222/250 = 0.888,
        // 298/350 = 0.851. The model must land within 2 % of those.
        let a = cluster_a().node.cpu;
        let b = cluster_b().node.cpu;
        assert!((a.tdp_fraction_full(1.0) - 0.976).abs() < 0.02);
        assert!((a.tdp_fraction_full(0.0) - 0.888).abs() < 0.02);
        assert!((b.tdp_fraction_full(1.0) - 0.951).abs() < 0.02);
        assert!((b.tdp_fraction_full(0.0) - 0.851).abs() < 0.02);
    }

    #[test]
    fn baseline_fractions_match_paper_423() {
        let a = cluster_a().node.cpu;
        let b = cluster_b().node.cpu;
        let sb = sandy_bridge_node().cpu;
        let fa = a.baseline_power_w / a.tdp_w;
        let fb = b.baseline_power_w / b.tdp_w;
        let fsb = sb.baseline_power_w / sb.tdp_w;
        assert!((fa - 0.40).abs() < 0.03, "Ice Lake baseline fraction {fa}");
        assert!((fb - 0.50).abs() < 0.03, "SPR baseline fraction {fb}");
        assert!(fsb < 0.20, "Sandy Bridge baseline fraction {fsb}");
    }

    #[test]
    fn spr_has_bigger_caches_per_core() {
        // Paper footnote 7: ClusterB has 45 % more L3 and 60 % more L2
        // per core than ClusterA.
        let a = cluster_a().node;
        let b = cluster_b().node;
        let l2a = a.caches.level(2).unwrap().capacity as f64;
        let l2b = b.caches.level(2).unwrap().capacity as f64;
        assert!((l2b / l2a - 1.6).abs() < 0.01);
        let l3a = a.caches.level(3).unwrap().capacity as f64 / 36.0;
        let l3b = b.caches.level(3).unwrap().capacity as f64 / 52.0;
        let ratio = l3b / l3a;
        assert!((ratio - 1.45).abs() < 0.15, "L3/core ratio {ratio}");
    }

    #[test]
    fn dram_power_ddr5_cooler_than_ddr4() {
        let a = cluster_a().node.domain_memory;
        let b = cluster_b().node.domain_memory;
        assert!(b.busy_power_w < a.busy_power_w);
        assert!(b.idle_power_w < a.idle_power_w);
        assert_eq!(b.tech, MemoryTech::Ddr5);
        assert_eq!(a.tech, MemoryTech::Ddr4);
    }

    #[test]
    fn cluster_validation_passes() {
        cluster_a().validate().unwrap();
        cluster_b().validate().unwrap();
    }
}
