//! Main-memory specification and the bandwidth-saturation model.
//!
//! The central node-level phenomenon of the paper is *memory-bandwidth
//! saturation on a ccNUMA domain*: with rising core count the achievable
//! memory bandwidth first grows roughly linearly and then flattens at a
//! plateau well below the theoretical channel bandwidth (75–78 GB/s per
//! domain on Ice Lake, 58–62 GB/s on Sapphire Rapids). [`SaturationCurve`]
//! captures exactly that behaviour.

use crate::{GBps, Watts};

/// DRAM technology generation; relevant for the power model (paper
/// §4.2.3: DDR5 achieves the same transfer rate at half the clock and a
/// lower voltage, hence dissipates measurably less power than DDR4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryTech {
    Ddr3,
    Ddr4,
    Ddr5,
}

/// Saturating bandwidth curve for one ccNUMA domain.
///
/// `bw(n) = plateau · tanh(s·n / plateau)` where `s` is the single-core
/// bandwidth — a smooth ramp that is ≈`s·n` for few cores and converges
/// to the plateau within the domain (≥99 % at 18 cores on the Ice Lake
/// preset), matching the measured curves in the paper's Fig. 2(a, b):
/// the strongly memory-bound codes reach the saturated domain bandwidth
/// well before the domain is full (§4.1.4), with a rounded knee because
/// the outstanding cache misses per core only gradually cover the
/// memory latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationCurve {
    /// Bandwidth achieved by a single core in GB/s.
    pub single_core: GBps,
    /// Saturated bandwidth of the full domain in GB/s.
    pub plateau: GBps,
}

impl SaturationCurve {
    /// Achievable aggregate bandwidth with `n` active cores in the domain.
    pub fn bandwidth(&self, n: usize) -> GBps {
        if n == 0 {
            return 0.0;
        }
        let s = self.single_core;
        let p = self.plateau;
        // Smooth tanh saturation: ≈ s·n in the linear regime, plateau p.
        p * (s * n as f64 / p).tanh()
    }

    /// Smallest core count whose bandwidth reaches `frac` (e.g. 0.9) of
    /// the plateau, capped at `max_cores`. This is the paper's notion of
    /// "the bandwidth saturates within the domain".
    pub fn saturation_point(&self, frac: f64, max_cores: usize) -> usize {
        for n in 1..=max_cores {
            if self.bandwidth(n) >= frac * self.plateau {
                return n;
            }
        }
        max_cores
    }
}

/// Memory attached to one ccNUMA domain.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    pub tech: MemoryTech,
    /// Transfer rate in MT/s (e.g. 3200 for DDR4-3200).
    pub mts: u32,
    /// Memory channels feeding this domain.
    pub channels: usize,
    /// Capacity of this domain in GiB.
    pub capacity_gib: f64,
    /// Theoretical peak bandwidth of the domain in GB/s
    /// (`channels × mts × 8 B / 1000`).
    pub theoretical_bw: GBps,
    /// Measured saturation behaviour of the domain.
    pub saturation: SaturationCurve,
    /// DRAM power of the domain when idle (no traffic), in W.
    pub idle_power_w: Watts,
    /// DRAM power of the domain at full saturated bandwidth, in W.
    pub busy_power_w: Watts,
}

impl MemorySpec {
    /// Construct the theoretical bandwidth from channels × rate.
    pub fn theoretical_from_channels(channels: usize, mts: u32) -> GBps {
        channels as f64 * mts as f64 * 8.0 / 1000.0
    }

    /// DRAM power of the domain at a given bandwidth utilization
    /// (fraction of the *saturated* bandwidth actually drawn).
    ///
    /// Linear interpolation between idle and busy power: DRAM power is
    /// "strongly tied to the memory bandwidth utilization" (paper §4.2.1)
    /// and becomes constant once the bandwidth has saturated.
    pub fn dram_power(&self, utilization: f64) -> Watts {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_power_w + u * (self.busy_power_w - self.idle_power_w)
    }

    /// Efficiency of the saturated plateau relative to the theoretical
    /// channel bandwidth (≈0.75 for the studied systems).
    pub fn plateau_efficiency(&self) -> f64 {
        self.saturation.plateau / self.theoretical_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> SaturationCurve {
        SaturationCurve {
            single_core: 13.0,
            plateau: 76.5,
        }
    }

    #[test]
    fn single_core_bandwidth_is_close_to_nominal() {
        // tanh(s/p) ≈ s/p for s ≪ p; within 2 % of the nominal value.
        let bw1 = curve().bandwidth(1);
        assert!((bw1 - 13.0).abs() / 13.0 < 0.02, "single-core bw {bw1}");
    }

    #[test]
    fn domain_is_saturated_well_before_full() {
        // Paper §4.1.4: the strongly memory-bound codes reach the
        // saturated bandwidth within the 18-core ccNUMA domain.
        let c = curve();
        assert!(c.bandwidth(18) > 0.98 * c.plateau);
        assert!(c.saturation_point(0.9, 18) <= 12);
    }

    #[test]
    fn zero_cores_zero_bandwidth() {
        assert_eq!(curve().bandwidth(0), 0.0);
    }

    #[test]
    fn bandwidth_is_monotone_and_bounded_by_plateau() {
        let c = curve();
        let mut last = 0.0;
        for n in 1..=64 {
            let bw = c.bandwidth(n);
            assert!(bw >= last);
            assert!(bw <= c.plateau + 1e-9);
            last = bw;
        }
    }

    #[test]
    fn saturation_point_is_sane_for_cluster_a() {
        // On Ice Lake the paper observes saturation well inside the
        // 18-core domain for the strongly memory-bound codes.
        let n = curve().saturation_point(0.9, 18);
        assert!((4..=18).contains(&n), "saturation point {n} out of range");
    }

    #[test]
    fn dram_power_interpolates() {
        let m = crate::presets::cluster_a().node.domain_memory.clone();
        assert!((m.dram_power(0.0) - m.idle_power_w).abs() < 1e-12);
        assert!((m.dram_power(1.0) - m.busy_power_w).abs() < 1e-12);
        let half = m.dram_power(0.5);
        assert!(half > m.idle_power_w && half < m.busy_power_w);
    }

    #[test]
    fn dram_power_clamps_utilization() {
        let m = crate::presets::cluster_a().node.domain_memory.clone();
        assert_eq!(m.dram_power(7.0), m.busy_power_w);
        assert_eq!(m.dram_power(-3.0), m.idle_power_w);
    }

    #[test]
    fn theoretical_bw_formula() {
        // 8 channels DDR4-3200: 8 × 3200 × 8 B = 204.8 GB/s
        assert!((MemorySpec::theoretical_from_channels(8, 3200) - 204.8).abs() < 1e-9);
    }

    #[test]
    fn plateau_efficiency_for_presets_is_realistic() {
        for cl in [crate::presets::cluster_a(), crate::presets::cluster_b()] {
            let eff = cl.node.domain_memory.plateau_efficiency();
            assert!(eff > 0.6 && eff < 0.9, "plateau efficiency {eff}");
        }
    }
}
