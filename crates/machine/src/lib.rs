//! # spechpc-machine — hardware models for the SPEChpc 2021 case study
//!
//! This crate models the two InfiniBand clusters of the paper
//! (*SPEChpc 2021 Benchmarks on Ice Lake and Sapphire Rapids Infiniband
//! Clusters*, SC'23): CPU specifications, the cache hierarchy including the
//! non-inclusive victim L3 of Ice Lake / Sapphire Rapids, ccNUMA domains
//! produced by Sub-NUMA Clustering (SNC), memory-bandwidth saturation
//! behaviour, node and cluster topology, and process-to-core affinity
//! (the `likwid-mpirun` analog).
//!
//! The models are *parameterized*, not hard-coded: [`presets`] instantiates
//! them with the paper's Table 3 numbers (ClusterA = Ice Lake Platinum
//! 8360Y, ClusterB = Sapphire Rapids Platinum 8470, plus a 2012 Sandy
//! Bridge node used by the paper's §4.2.3 idle-power comparison), but any
//! other machine can be described with the same types.
//!
//! ## Quick example
//!
//! ```
//! use spechpc_machine::presets;
//!
//! let a = presets::cluster_a();
//! let b = presets::cluster_b();
//! // Peak-performance ratio (paper §4.1.2: ≈1.2)
//! let perf_ratio = b.node.peak_flops() / a.node.peak_flops();
//! assert!((perf_ratio - 1.2).abs() < 0.05);
//! // Memory-bandwidth ratio (paper §4.1.2: ≈1.5)
//! let bw_ratio = b.node.saturated_mem_bandwidth() / a.node.saturated_mem_bandwidth();
//! assert!(bw_ratio > 1.4 && bw_ratio < 1.7);
//! ```

pub mod affinity;
pub mod cache;
pub mod cluster;
pub mod cpu;
pub mod frequency;
pub mod memory;
pub mod node;
pub mod numa;
pub mod presets;

pub use affinity::{Pinning, PinningPolicy};
pub use cache::{CacheHierarchy, CacheLevel, CacheScope};
pub use cluster::{ClusterSpec, InterconnectSpec, Topology};
pub use cpu::CpuSpec;
pub use frequency::FrequencyPolicy;
pub use memory::{MemorySpec, MemoryTech, SaturationCurve};
pub use node::NodeSpec;
pub use numa::NumaDomain;

/// Gigabytes per second, the unit used for all bandwidths in this crate.
pub type GBps = f64;
/// Giga floating-point operations per second.
pub type GFlops = f64;
/// Watts.
pub type Watts = f64;
/// Bytes.
pub type Bytes = u64;
