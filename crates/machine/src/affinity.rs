//! Process-to-core affinity — the `likwid-mpirun` analog.
//!
//! The study maps consecutive MPI ranks to consecutive cores ("compact"
//! pinning). A "scatter" policy (round-robin over ccNUMA domains) is
//! provided for ablation experiments: scattering changes when the
//! per-domain memory-bandwidth bottleneck is hit.

use crate::cluster::ClusterSpec;

/// Pinning policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinningPolicy {
    /// Consecutive ranks on consecutive cores, filling domain after
    /// domain (the paper's setup).
    Compact,
    /// Ranks distributed round-robin over the ccNUMA domains of a node
    /// before filling cores within a domain.
    Scatter,
}

/// The placement of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub rank: usize,
    pub node: usize,
    /// Node-local core id.
    pub core: usize,
    /// Node-local ccNUMA domain id.
    pub domain: usize,
}

/// A full pinning of `nprocs` ranks onto a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Pinning {
    pub policy: PinningPolicy,
    pub placements: Vec<Placement>,
    /// Cores per node of the underlying cluster (for locality queries).
    cores_per_node: usize,
}

impl Pinning {
    /// Pin `nprocs` ranks on `cluster` under `policy`. Nodes are always
    /// filled in order (node 0 first); the policy controls placement
    /// *within* a node.
    pub fn new(cluster: &ClusterSpec, nprocs: usize, policy: PinningPolicy) -> Self {
        assert!(
            nprocs <= cluster.total_cores(),
            "cannot pin {nprocs} ranks on {} cores",
            cluster.total_cores()
        );
        let cpn = cluster.node.cores();
        let layout = cluster.node.domain_layout();
        let mut placements = Vec::with_capacity(nprocs);
        for rank in 0..nprocs {
            let node = rank / cpn;
            let local = rank % cpn;
            let core = match policy {
                PinningPolicy::Compact => local,
                PinningPolicy::Scatter => {
                    // Round-robin over domains: local rank r goes to domain
                    // r % ndom, slot r / ndom within that domain.
                    let ndom = layout.len();
                    let dom = &layout[local % ndom];
                    let slot = local / ndom;
                    debug_assert!(slot < dom.cores);
                    dom.first_core + slot
                }
            };
            let domain = crate::numa::domain_of(&layout, core)
                .expect("core must belong to a domain")
                .id;
            placements.push(Placement {
                rank,
                node,
                core,
                domain,
            });
        }
        Pinning {
            policy,
            placements,
            cores_per_node: cpn,
        }
    }

    pub fn nprocs(&self) -> usize {
        self.placements.len()
    }

    pub fn placement(&self, rank: usize) -> Placement {
        self.placements[rank]
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.placements[a].node == self.placements[b].node
    }

    /// Number of nodes touched.
    pub fn nodes_used(&self) -> usize {
        self.placements.last().map(|p| p.node + 1).unwrap_or(0)
    }

    /// Active ranks per (node, domain) pair; outer index node, inner
    /// index domain.
    pub fn active_per_domain(&self, domains_per_node: usize) -> Vec<Vec<usize>> {
        let mut out = vec![vec![0usize; domains_per_node]; self.nodes_used()];
        for p in &self.placements {
            out[p.node][p.domain] += 1;
        }
        out
    }

    /// Ranks resident on a given node.
    pub fn ranks_on_node(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.placements
            .iter()
            .filter(move |p| p.node == node)
            .map(|p| p.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn compact_fills_first_domain_first() {
        let c = presets::cluster_a();
        let p = Pinning::new(&c, 20, PinningPolicy::Compact);
        // Ranks 0..18 in domain 0, 18..20 in domain 1 of node 0.
        assert!(p.placements[..18].iter().all(|x| x.domain == 0));
        assert_eq!(p.placements[18].domain, 1);
        assert_eq!(p.placements[19].domain, 1);
        assert_eq!(p.nodes_used(), 1);
    }

    #[test]
    fn scatter_round_robins_over_domains() {
        let c = presets::cluster_a();
        let p = Pinning::new(&c, 8, PinningPolicy::Scatter);
        let domains: Vec<usize> = p.placements.iter().map(|x| x.domain).collect();
        assert_eq!(domains, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn multi_node_compact_spills_to_next_node() {
        let c = presets::cluster_a();
        let p = Pinning::new(&c, 100, PinningPolicy::Compact);
        assert_eq!(p.placements[71].node, 0);
        assert_eq!(p.placements[72].node, 1);
        assert_eq!(p.placements[72].core, 0);
        assert_eq!(p.nodes_used(), 2);
        assert!(!p.same_node(71, 72));
    }

    #[test]
    fn every_core_assigned_at_most_once() {
        let c = presets::cluster_b();
        for policy in [PinningPolicy::Compact, PinningPolicy::Scatter] {
            let p = Pinning::new(&c, 2 * c.node.cores(), policy);
            let mut seen = std::collections::BTreeSet::new();
            for pl in &p.placements {
                assert!(seen.insert((pl.node, pl.core)), "double booking {pl:?}");
            }
        }
    }

    #[test]
    fn active_per_domain_counts() {
        let c = presets::cluster_a();
        let p = Pinning::new(&c, 40, PinningPolicy::Compact);
        let a = p.active_per_domain(4);
        assert_eq!(a, vec![vec![18, 18, 4, 0]]);
    }

    #[test]
    #[should_panic(expected = "cannot pin")]
    fn overcommit_panics() {
        let c = presets::cluster_a();
        Pinning::new(&c, c.total_cores() + 1, PinningPolicy::Compact);
    }
}
