//! ccNUMA domain model.
//!
//! Both clusters run with Sub-NUMA Clustering (SNC) enabled, which splits
//! each socket into independent ccNUMA domains — the *fundamental scaling
//! unit* of the paper's node-level analysis: 18 cores (half a socket) on
//! ClusterA, 13 cores (a quarter socket) on ClusterB.

/// One ccNUMA domain: a set of cores with local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaDomain {
    /// Index of the domain within the node (0-based, consecutive).
    pub id: usize,
    /// Socket the domain belongs to.
    pub socket: usize,
    /// First core id (node-global, 0-based) in this domain.
    pub first_core: usize,
    /// Number of cores in the domain.
    pub cores: usize,
}

impl NumaDomain {
    /// Node-global core ids covered by this domain.
    pub fn core_range(&self) -> std::ops::Range<usize> {
        self.first_core..self.first_core + self.cores
    }

    /// Whether the node-global core id belongs to this domain.
    pub fn contains(&self, core: usize) -> bool {
        self.core_range().contains(&core)
    }
}

/// Compute the ccNUMA domain layout of a node.
///
/// `snc` is the Sub-NUMA-Clustering factor (domains per socket): 1 means
/// SNC off, 2 = SNC2 (Ice Lake in the study), 4 = SNC4 (Sapphire Rapids).
/// Cores are numbered consecutively per socket, matching the compact
/// pinning the paper uses via `likwid-mpirun`.
pub fn layout(sockets: usize, cores_per_socket: usize, snc: usize) -> Vec<NumaDomain> {
    assert!(snc >= 1, "SNC factor must be at least 1");
    assert!(
        cores_per_socket.is_multiple_of(snc),
        "cores per socket ({cores_per_socket}) must divide evenly into {snc} SNC domains"
    );
    let per_domain = cores_per_socket / snc;
    let mut domains = Vec::with_capacity(sockets * snc);
    for s in 0..sockets {
        for d in 0..snc {
            let id = s * snc + d;
            domains.push(NumaDomain {
                id,
                socket: s,
                first_core: s * cores_per_socket + d * per_domain,
                cores: per_domain,
            });
        }
    }
    domains
}

/// Find the domain a node-global core id belongs to.
pub fn domain_of(domains: &[NumaDomain], core: usize) -> Option<&NumaDomain> {
    domains.iter().find(|d| d.contains(core))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_layout_matches_paper() {
        // 2 sockets × 36 cores, SNC2 → 4 domains of 18 cores.
        let d = layout(2, 36, 2);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|x| x.cores == 18));
        assert_eq!(d[0].first_core, 0);
        assert_eq!(d[1].first_core, 18);
        assert_eq!(d[2].first_core, 36);
        assert_eq!(d[2].socket, 1);
        assert_eq!(d[3].first_core, 54);
    }

    #[test]
    fn cluster_b_layout_matches_paper() {
        // 2 sockets × 52 cores, SNC4 → 8 domains of 13 cores.
        let d = layout(2, 52, 4);
        assert_eq!(d.len(), 8);
        assert!(d.iter().all(|x| x.cores == 13));
        assert_eq!(d[4].socket, 1);
        assert_eq!(d[4].first_core, 52);
    }

    #[test]
    fn domains_partition_all_cores_exactly() {
        let d = layout(2, 52, 4);
        let mut covered = [false; 104];
        for dom in &d {
            for c in dom.core_range() {
                assert!(!covered[c], "core {c} covered twice");
                covered[c] = true;
            }
        }
        assert!(covered.iter().all(|&x| x));
    }

    #[test]
    fn domain_of_finds_the_right_domain() {
        let d = layout(2, 36, 2);
        assert_eq!(domain_of(&d, 0).unwrap().id, 0);
        assert_eq!(domain_of(&d, 17).unwrap().id, 0);
        assert_eq!(domain_of(&d, 18).unwrap().id, 1);
        assert_eq!(domain_of(&d, 71).unwrap().id, 3);
        assert!(domain_of(&d, 72).is_none());
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_snc_panics() {
        layout(2, 36, 5);
    }

    #[test]
    fn snc_off_gives_one_domain_per_socket() {
        let d = layout(2, 36, 1);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.cores == 36));
    }
}
