//! Cluster and interconnect specification.
//!
//! Both clusters in the study use HDR100 InfiniBand (100 Gbit/s per link
//! and direction) in a fat-tree topology; the paper points out that the
//! interconnects are identical, so no communication-performance
//! differences are expected between the clusters (§5.1.3).

use crate::node::NodeSpec;
use crate::GBps;

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Full-bisection fat-tree (both studied clusters).
    FatTree,
    /// A simple torus, expressible for experiments.
    Torus,
}

/// Network parameters, LogGP-style.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectSpec {
    /// Human-readable name, e.g. "HDR100 InfiniBand".
    pub name: String,
    pub topology: Topology,
    /// Raw link bandwidth per direction in GB/s (HDR100: 100 Gbit/s
    /// = 12.5 GB/s).
    pub link_bandwidth: GBps,
    /// Effective achievable point-to-point bandwidth in GB/s (protocol
    /// overheads; ≈12.0 for HDR100 with large messages).
    pub effective_bandwidth: GBps,
    /// One-way small-message latency between nodes in seconds.
    pub latency_s: f64,
    /// Effective intra-node (shared-memory) MPI bandwidth in GB/s.
    pub intranode_bandwidth: GBps,
    /// Intra-node small-message latency in seconds.
    pub intranode_latency_s: f64,
    /// Eager/rendezvous protocol switch threshold in bytes.
    pub eager_threshold: usize,
}

impl InterconnectSpec {
    /// Time for one point-to-point message of `bytes` between two ranks,
    /// ignoring rendezvous semantics (pure wire time).
    pub fn wire_time(&self, bytes: usize, same_node: bool) -> f64 {
        if same_node {
            self.intranode_latency_s + bytes as f64 / (self.intranode_bandwidth * 1e9)
        } else {
            self.latency_s + bytes as f64 / (self.effective_bandwidth * 1e9)
        }
    }

    /// Whether a message of this size uses the eager protocol.
    pub fn is_eager(&self, bytes: usize) -> bool {
        bytes < self.eager_threshold
    }
}

/// A homogeneous cluster of identical nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name ("ClusterA", "ClusterB").
    pub name: String,
    pub node: NodeSpec,
    /// Number of nodes available.
    pub nodes: usize,
    pub interconnect: InterconnectSpec,
}

impl ClusterSpec {
    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores()
    }

    /// Number of full nodes needed for `nprocs` compactly placed ranks.
    pub fn nodes_for(&self, nprocs: usize) -> usize {
        nprocs.div_ceil(self.node.cores())
    }

    /// Node index hosting a given rank under compact placement.
    pub fn node_of_rank(&self, rank: usize) -> usize {
        rank / self.node.cores()
    }

    /// Whether two ranks share a node under compact placement.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of_rank(a) == self.node_of_rank(b)
    }

    /// Node-local core id of a rank under compact placement.
    pub fn core_of_rank(&self, rank: usize) -> usize {
        rank % self.node.cores()
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        if self.interconnect.effective_bandwidth > self.interconnect.link_bandwidth {
            return Err("effective bandwidth exceeds raw link bandwidth".into());
        }
        self.node.validate()
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn hdr100_parameters() {
        let c = presets::cluster_a();
        assert!((c.interconnect.link_bandwidth - 12.5).abs() < 1e-9);
        assert!(c.interconnect.effective_bandwidth <= 12.5);
        // Identical interconnects across clusters (paper §5.1.3).
        let b = presets::cluster_b();
        assert_eq!(c.interconnect, b.interconnect);
    }

    #[test]
    fn compact_placement_arithmetic() {
        let c = presets::cluster_a();
        assert_eq!(c.node_of_rank(0), 0);
        assert_eq!(c.node_of_rank(71), 0);
        assert_eq!(c.node_of_rank(72), 1);
        assert!(c.same_node(10, 20));
        assert!(!c.same_node(71, 72));
        assert_eq!(c.nodes_for(1), 1);
        assert_eq!(c.nodes_for(72), 1);
        assert_eq!(c.nodes_for(73), 2);
        assert_eq!(c.core_of_rank(75), 3);
    }

    #[test]
    fn wire_time_scales_with_size_and_locality() {
        let ic = presets::cluster_a().interconnect;
        let small_local = ic.wire_time(8, true);
        let small_remote = ic.wire_time(8, false);
        assert!(small_local < small_remote, "intra-node must be faster");
        let big_remote = ic.wire_time(1 << 20, false);
        assert!(big_remote > small_remote);
        // 1 GiB at ~12 GB/s ≈ 90 ms ballpark.
        let t = ic.wire_time(1 << 30, false);
        assert!(t > 0.05 && t < 0.2, "unexpected wire time {t}");
    }

    #[test]
    fn eager_threshold_partition() {
        let ic = presets::cluster_a().interconnect;
        assert!(ic.is_eager(1));
        assert!(ic.is_eager(ic.eager_threshold - 1));
        assert!(!ic.is_eager(ic.eager_threshold));
    }

    #[test]
    fn small_suite_process_counts_fit() {
        // The paper runs up to 1664 MPI processes on both clusters.
        assert!(presets::cluster_a().total_cores() >= 1664);
        assert!(presets::cluster_b().total_cores() >= 1664);
    }
}
