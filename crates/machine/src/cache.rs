//! Cache hierarchy model.
//!
//! Both CPUs of the study have private L1/L2 caches and a shared,
//! *non-inclusive victim* L3 (paper footnote 6: the effective last-level
//! cache is the victim L3 plus the L2s). The victim property matters for
//! the counter model: with hardware prefetchers enabled, L3 sees
//! additional traffic coming *down* from L2, which is why the paper
//! observes a higher L3 than L2 bandwidth for `pot3d` (§4.1.4).

use crate::{Bytes, GBps};

/// The sharing scope of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// Private to one core (L1, L2 on both studied CPUs).
    Core,
    /// Shared by one ccNUMA domain (not used by the presets but
    /// expressible, e.g. for CPUs whose L3 is sliced per SNC domain).
    Domain,
    /// Shared by the whole socket (L3 on both studied CPUs).
    Socket,
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    /// 1, 2 or 3.
    pub level: u8,
    /// Capacity *per scope unit* in bytes (per core for `Core` scope,
    /// per socket for `Socket` scope).
    pub capacity: Bytes,
    pub scope: CacheScope,
    /// Sustained bandwidth per core in GB/s at this level.
    pub bandwidth_per_core: GBps,
    /// Whether this level is a non-inclusive victim cache.
    pub victim: bool,
}

/// A full private+shared cache hierarchy, ordered L1 → LLC.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheHierarchy {
    pub levels: Vec<CacheLevel>,
}

impl CacheHierarchy {
    /// Look up a level by number.
    pub fn level(&self, n: u8) -> Option<&CacheLevel> {
        self.levels.iter().find(|l| l.level == n)
    }

    /// Total capacity of level `n` available to `cores` cores spread over
    /// `sockets` sockets (for `Socket`-scoped caches capacity scales with
    /// sockets touched, for `Core`-scoped with cores).
    pub fn aggregate_capacity(&self, n: u8, cores: usize, sockets: usize) -> Bytes {
        match self.level(n) {
            None => 0,
            Some(l) => match l.scope {
                CacheScope::Core => l.capacity * cores as u64,
                CacheScope::Domain | CacheScope::Socket => l.capacity * sockets as u64,
            },
        }
    }

    /// Effective last-level-cache capacity for a set of cores: on the
    /// studied CPUs this is victim-L3 + aggregate L2 (paper footnote 6).
    pub fn effective_llc_capacity(&self, cores: usize, sockets: usize) -> Bytes {
        let l3 = self.aggregate_capacity(3, cores, sockets);
        let llc_is_victim = self.level(3).map(|l| l.victim).unwrap_or(false);
        if llc_is_victim {
            l3 + self.aggregate_capacity(2, cores, sockets)
        } else {
            l3
        }
    }

    /// Capacity of the highest (largest-numbered) level in the hierarchy,
    /// per scope unit.
    pub fn llc(&self) -> Option<&CacheLevel> {
        self.levels.iter().max_by_key(|l| l.level)
    }

    /// Validate structural invariants: levels strictly ordered and
    /// capacities plausible (each shared level bigger than a private one
    /// per core is *not* required — SPR L2 per core exceeds its L3 share —
    /// but capacities must be non-zero and levels unique).
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for l in &self.levels {
            if l.capacity == 0 {
                return Err(format!("L{} has zero capacity", l.level));
            }
            if l.bandwidth_per_core <= 0.0 {
                return Err(format!("L{} has non-positive bandwidth", l.level));
            }
            if !seen.insert(l.level) {
                return Err(format!("duplicate cache level L{}", l.level));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy {
            levels: vec![
                CacheLevel {
                    level: 1,
                    capacity: 48 * 1024,
                    scope: CacheScope::Core,
                    bandwidth_per_core: 400.0,
                    victim: false,
                },
                CacheLevel {
                    level: 2,
                    capacity: 1280 * 1024,
                    scope: CacheScope::Core,
                    bandwidth_per_core: 80.0,
                    victim: false,
                },
                CacheLevel {
                    level: 3,
                    capacity: 54 * MIB,
                    scope: CacheScope::Socket,
                    bandwidth_per_core: 30.0,
                    victim: true,
                },
            ],
        }
    }

    #[test]
    fn aggregate_scales_with_cores_for_private_levels() {
        let h = hierarchy();
        assert_eq!(h.aggregate_capacity(2, 18, 1), 18 * 1280 * 1024);
    }

    #[test]
    fn aggregate_scales_with_sockets_for_shared_levels() {
        let h = hierarchy();
        assert_eq!(h.aggregate_capacity(3, 72, 2), 2 * 54 * MIB);
    }

    #[test]
    fn effective_llc_includes_l2_for_victim_l3() {
        let h = hierarchy();
        let eff = h.effective_llc_capacity(36, 1);
        assert_eq!(eff, 54 * MIB + 36 * 1280 * 1024);
    }

    #[test]
    fn validation_rejects_duplicates() {
        let mut h = hierarchy();
        let dup = h.levels[0].clone();
        h.levels.push(dup);
        assert!(h.validate().is_err());
    }

    #[test]
    fn validation_accepts_presets() {
        assert!(crate::presets::cluster_a().node.caches.validate().is_ok());
        assert!(crate::presets::cluster_b().node.caches.validate().is_ok());
    }

    #[test]
    fn missing_level_has_zero_capacity() {
        let h = hierarchy();
        assert_eq!(h.aggregate_capacity(4, 10, 1), 0);
    }
}
