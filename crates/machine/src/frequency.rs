//! Clock-frequency policy.
//!
//! The paper fixes the clock of every node to the base frequency of its
//! CPU via the SLURM `--cpu-freq` option and verifies the setting with
//! `likwid-perfctr`. This module models that policy plus a turbo mode
//! used in ablation experiments.

use crate::cpu::CpuSpec;

/// How the core clock is governed during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrequencyPolicy {
    /// Pinned to the CPU's base clock (the study's setting).
    Base,
    /// Pinned to an explicit frequency in GHz.
    Fixed(f64),
    /// Opportunistic turbo: base clock scaled up by a load-dependent
    /// factor that shrinks as more cores are active (max single-core
    /// uplift given as a ratio, e.g. 1.45 for +45 %).
    Turbo { max_uplift: f64 },
}

impl FrequencyPolicy {
    /// Effective clock in GHz with `active` busy cores on the socket.
    pub fn effective_clock(&self, cpu: &CpuSpec, active: usize) -> f64 {
        match *self {
            FrequencyPolicy::Base => cpu.base_clock_ghz,
            FrequencyPolicy::Fixed(f) => f,
            FrequencyPolicy::Turbo { max_uplift } => {
                if active == 0 {
                    return cpu.base_clock_ghz;
                }
                // Linear decay of the uplift from max at 1 core to 1.0
                // (base) at all cores — a standard simplification.
                let n = cpu.cores_per_socket.max(1) as f64;
                let frac = (active.min(cpu.cores_per_socket) as f64 - 1.0) / (n - 1.0).max(1.0);
                cpu.base_clock_ghz * (max_uplift - frac * (max_uplift - 1.0))
            }
        }
    }

    /// Verify that a measured clock matches the expected policy within
    /// `tol_ghz` — the `likwid-perfctr` verification step of the paper.
    pub fn verify(&self, cpu: &CpuSpec, active: usize, measured_ghz: f64, tol_ghz: f64) -> bool {
        (self.effective_clock(cpu, active) - measured_ghz).abs() <= tol_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn base_policy_returns_base_clock() {
        let cpu = presets::cluster_a().node.cpu;
        let p = FrequencyPolicy::Base;
        assert_eq!(p.effective_clock(&cpu, 1), 2.4);
        assert_eq!(p.effective_clock(&cpu, 36), 2.4);
    }

    #[test]
    fn fixed_policy_overrides() {
        let cpu = presets::cluster_a().node.cpu;
        let p = FrequencyPolicy::Fixed(1.8);
        assert_eq!(p.effective_clock(&cpu, 36), 1.8);
    }

    #[test]
    fn turbo_decays_with_active_cores() {
        let cpu = presets::cluster_b().node.cpu;
        let p = FrequencyPolicy::Turbo { max_uplift: 1.4 };
        let one = p.effective_clock(&cpu, 1);
        let all = p.effective_clock(&cpu, cpu.cores_per_socket);
        assert!((one - cpu.base_clock_ghz * 1.4).abs() < 1e-9);
        assert!((all - cpu.base_clock_ghz).abs() < 1e-9);
        assert!(p.effective_clock(&cpu, 26) < one);
        assert!(p.effective_clock(&cpu, 26) > all);
    }

    #[test]
    fn verification_matches_paper_methodology() {
        let cpu = presets::cluster_a().node.cpu;
        let p = FrequencyPolicy::Base;
        assert!(p.verify(&cpu, 36, 2.39, 0.05));
        assert!(!p.verify(&cpu, 36, 3.0, 0.05));
    }
}
