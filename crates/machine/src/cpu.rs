//! CPU (socket) specification: clock, core count, SIMD capability, and the
//! RAPL-relevant power envelope (TDP, extrapolated zero-core baseline
//! power, per-core dynamic power range).

use crate::{GFlops, Watts};

/// Specification of one CPU socket.
///
/// Power constants follow the paper's RAPL methodology: `baseline_power_w`
/// is the *extrapolated zero-core* package power (paper §4.2.3: 95–101 W on
/// Ice Lake, 176–181 W on Sapphire Rapids, <20 % of TDP on Sandy Bridge),
/// and the per-core dynamic power is bounded by
/// `[core_power_cool_w, core_power_hot_w]`, calibrated such that "hot"
/// codes (sph-exa) reach 97–98 % of TDP and "cool" codes (soma) 85–89 %
/// with all cores active (paper §4.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, e.g. "Xeon Platinum 8360Y (Ice Lake)".
    pub model: String,
    /// Microarchitecture family, e.g. "Ice Lake".
    pub microarchitecture: String,
    /// Base clock frequency in GHz. The paper pins all cores to base clock
    /// via SLURM `--cpu-freq`, so this is the operating frequency.
    pub base_clock_ghz: f64,
    /// Physical cores per socket (hyper-threading disabled in the study).
    pub cores_per_socket: usize,
    /// Width of the widest SIMD unit in double-precision lanes
    /// (AVX-512 ⇒ 8, AVX ⇒ 4).
    pub simd_dp_lanes: usize,
    /// Number of SIMD FMA pipelines (2 on server Ice Lake / Sapphire
    /// Rapids, 1 on Sandy Bridge which has separate ADD and MUL ports —
    /// modelled as one combined pipe of throughput 2 ops/cycle there).
    pub fma_units: usize,
    /// Thermal design power of the socket in W.
    pub tdp_w: Watts,
    /// Extrapolated zero-core ("idle") package power in W.
    pub baseline_power_w: Watts,
    /// Dynamic power of one fully busy core running low-intensity
    /// (load/store dominated, poorly vectorized) code, in W.
    pub core_power_cool_w: Watts,
    /// Dynamic power of one fully busy core running high-intensity
    /// (dense SIMD FMA) code, in W.
    pub core_power_hot_w: Watts,
    /// Fraction of its busy power a memory-stalled core still draws.
    /// Modern server cores clock-gate stalled pipelines noticeably
    /// (≈0.40 on Ice Lake / Sapphire Rapids); older designs kept most
    /// of the clock tree running (≈0.65 on Sandy Bridge). Together with
    /// the baseline power this decides whether concurrency throttling
    /// saves energy (paper §4.3.1).
    pub stall_power_floor: f64,
}

impl CpuSpec {
    /// Peak double-precision performance of the whole socket in Gflop/s:
    /// `clock × lanes × 2 (FMA) × fma_units × cores`.
    pub fn peak_flops(&self) -> GFlops {
        self.base_clock_ghz
            * self.simd_dp_lanes as f64
            * 2.0
            * self.fma_units as f64
            * self.cores_per_socket as f64
    }

    /// Peak double-precision performance of one core in Gflop/s.
    pub fn peak_flops_per_core(&self) -> GFlops {
        self.peak_flops() / self.cores_per_socket as f64
    }

    /// Peak *scalar* (non-SIMD) DP performance of one core in Gflop/s.
    /// Used by the vectorization model: work not executed with SIMD
    /// instructions proceeds at scalar FMA throughput.
    pub fn scalar_flops_per_core(&self) -> GFlops {
        self.base_clock_ghz * 2.0 * self.fma_units as f64
    }

    /// Package power with `active` busy cores running code whose
    /// "heat" is `heat ∈ [0, 1]` (0 = coolest observed code, 1 = densest
    /// SIMD FMA code) and whose cores are only `utilization ∈ [0, 1]`
    /// busy (cores stalled on memory past the bandwidth saturation point
    /// draw less than fully busy cores; paper §4.2 observes the package
    /// power slope flattening after saturation).
    ///
    /// Clamped to TDP, as RAPL enforces on real hardware.
    pub fn package_power(&self, active: usize, heat: f64, utilization: f64) -> Watts {
        let active = active.min(self.cores_per_socket) as f64;
        let heat = heat.clamp(0.0, 1.0);
        let utilization = utilization.clamp(0.0, 1.0);
        let per_core =
            self.core_power_cool_w + heat * (self.core_power_hot_w - self.core_power_cool_w);
        // A stalled core still clocks and snoops: it retains the
        // CPU-specific floor of its busy power. This yields the "slope
        // still grows, but more slowly" behaviour of paper §4.2.
        let floor = self.stall_power_floor.clamp(0.0, 1.0);
        let effective = per_core * (floor + (1.0 - floor) * utilization);
        (self.baseline_power_w + active * effective).min(self.tdp_w)
    }

    /// Fraction of TDP drawn with all cores busy at the given heat.
    pub fn tdp_fraction_full(&self, heat: f64) -> f64 {
        self.package_power(self.cores_per_socket, heat, 1.0) / self.tdp_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icelake() -> CpuSpec {
        crate::presets::cluster_a().node.cpu
    }

    #[test]
    fn peak_flops_matches_hand_calculation() {
        let cpu = icelake();
        // 2.4 GHz × 8 lanes × 2 flops/FMA × 2 units × 36 cores
        assert!((cpu.peak_flops() - 2764.8).abs() < 1e-9);
        assert!((cpu.peak_flops_per_core() - 76.8).abs() < 1e-9);
    }

    #[test]
    fn scalar_rate_is_simd_rate_divided_by_lanes() {
        let cpu = icelake();
        assert!(
            (cpu.scalar_flops_per_core() * cpu.simd_dp_lanes as f64 - cpu.peak_flops_per_core())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn package_power_is_monotone_in_active_cores() {
        let cpu = icelake();
        let mut last = 0.0;
        for n in 0..=cpu.cores_per_socket {
            let p = cpu.package_power(n, 0.8, 1.0);
            assert!(p >= last, "power must not drop when adding cores");
            last = p;
        }
    }

    #[test]
    fn package_power_clamps_to_tdp() {
        let cpu = icelake();
        assert!(cpu.package_power(999, 1.0, 1.0) <= cpu.tdp_w + 1e-12);
    }

    #[test]
    fn zero_active_cores_draws_baseline() {
        let cpu = icelake();
        assert_eq!(cpu.package_power(0, 1.0, 1.0), cpu.baseline_power_w);
    }

    #[test]
    fn hot_code_draws_more_than_cool_code() {
        let cpu = icelake();
        let hot = cpu.package_power(cpu.cores_per_socket, 1.0, 1.0);
        let cool = cpu.package_power(cpu.cores_per_socket, 0.0, 1.0);
        assert!(hot > cool);
    }

    #[test]
    fn stalled_cores_draw_less_than_busy_cores() {
        let cpu = icelake();
        let busy = cpu.package_power(18, 0.5, 1.0);
        let stalled = cpu.package_power(18, 0.5, 0.3);
        assert!(stalled < busy);
        // ... but more than baseline: stalled cores are not free.
        assert!(stalled > cpu.baseline_power_w);
    }
}
