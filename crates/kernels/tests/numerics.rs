//! Deeper numerical validation of the nine kernel analogs: fixed
//! points, analytic limits, symmetry preservation, and convergence
//! rates — beyond the per-module smoke tests.

use spechpc_kernels::benchmarks::cloverleaf::CloverKernel;
use spechpc_kernels::benchmarks::hpgmgfv::HpgmgKernel;
use spechpc_kernels::benchmarks::lbm::{weights_and_cs2, LbmKernel};
use spechpc_kernels::benchmarks::minisweep::SweepKernel;
use spechpc_kernels::benchmarks::pot3d::Pot3dKernel;
use spechpc_kernels::benchmarks::soma::SomaKernel;
use spechpc_kernels::benchmarks::sph_exa::SphKernel;
use spechpc_kernels::benchmarks::tealeaf::TealeafKernel;
use spechpc_kernels::benchmarks::weather::WeatherKernel;
use spechpc_kernels::benchmarks::{
    cloverleaf, hpgmgfv, lbm, minisweep, pot3d, soma, sph_exa, tealeaf, weather,
};
use spechpc_kernels::common::benchmark::Kernel;
use spechpc_kernels::common::config::WorkloadClass;
use spechpc_simmpi::comm::SelfComm;

const TEST: WorkloadClass = WorkloadClass::Test;

// ---------------------------------------------------------------- lbm

#[test]
fn lbm_uniform_state_is_a_fixed_point() {
    // A uniform equilibrium lattice must be exactly stationary under
    // propagate + collide (discrete H-theorem fixed point).
    let mut k = LbmKernel::new(16, 16, 0, 1, 0);
    // Overwrite the perturbed IC with a perfectly uniform one.
    let (w, _) = weights_and_cs2(&lbm::velocities());
    k.set_uniform(1.0, &w);
    let m0 = k.local_mass();
    let mut comm = SelfComm::new();
    for _ in 0..5 {
        k.step(&mut comm);
    }
    assert!((k.local_mass() - m0).abs() < 1e-12);
    let (px, py) = k.local_momentum();
    assert!(px.abs() < 1e-12 && py.abs() < 1e-12);
    assert!(
        k.density_spread() < 1e-12,
        "uniform state must stay uniform, spread {}",
        k.density_spread()
    );
}

#[test]
fn lbm_perturbation_decays_despite_acoustic_oscillation() {
    let mut k = LbmKernel::new(24, 24, 0, 1, 42);
    let mut comm = SelfComm::new();
    let s0 = k.density_spread();
    let mut peak = s0;
    for _ in 0..30 {
        k.step(&mut comm);
        peak = peak.max(k.density_spread());
    }
    let s1 = k.density_spread();
    // Sound waves slosh, but the envelope must decay and never blow up.
    assert!(s1 < 0.7 * s0, "perturbation barely decayed: {s0} → {s1}");
    assert!(
        peak < 1.6 * s0,
        "acoustic amplification: peak {peak} vs {s0}"
    );
}

// ------------------------------------------------------------- tealeaf

#[test]
#[allow(clippy::needless_range_loop)] // dense Gaussian elimination
fn tealeaf_matches_dense_direct_solve() {
    // One implicit step on a miniature grid vs. a dense Gauss solve of
    // the same (I − λ∇²) system with mirrored (Neumann) boundaries.
    let p = tealeaf::TealeafParams {
        nx: 6,
        ny: 6,
        outer_steps: 1,
        cg_iters: 200,
    };
    let mut k = TealeafKernel::new(p, 0, 1);
    let b = k.core_field();
    let mut comm = SelfComm::new();
    k.step(&mut comm);
    let x_cg = k.core_field();

    // Dense assembly of A = I − λ·∇² with Neumann mirroring.
    let n = 36;
    let lambda = 0.5;
    let idx = |x: usize, y: usize| y * 6 + x;
    let mut a = vec![vec![0.0f64; n]; n];
    for y in 0..6 {
        for x in 0..6 {
            let i = idx(x, y);
            let neighbors: Vec<usize> = [
                (x.wrapping_sub(1), y, x > 0),
                (x + 1, y, x + 1 < 6),
                (x, y.wrapping_sub(1), y > 0),
                (x, y + 1, y + 1 < 6),
            ]
            .iter()
            .filter(|&&(_, _, ok)| ok)
            .map(|&(nx, ny, _)| idx(nx, ny))
            .collect();
            // Mirrored missing neighbors contribute the centre value,
            // so the diagonal Laplacian weight shrinks accordingly.
            a[i][i] = 1.0 + lambda * neighbors.len() as f64;
            for &j in &neighbors {
                a[i][j] -= lambda;
            }
        }
    }
    // Gauss elimination.
    let mut rhs = b.clone();
    for col in 0..n {
        let piv = (col..n)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .unwrap();
        a.swap(col, piv);
        rhs.swap(col, piv);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x_direct = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for c in row + 1..n {
            s -= a[row][c] * x_direct[c];
        }
        x_direct[row] = s / a[row][row];
    }

    for i in 0..n {
        assert!(
            (x_cg[i] - x_direct[i]).abs() < 1e-8,
            "cell {i}: CG {} vs direct {}",
            x_cg[i],
            x_direct[i]
        );
    }
}

#[test]
fn tealeaf_converges_to_uniform_temperature() {
    // Insulated box: many steps drive the field to its mean.
    let p = tealeaf::TealeafParams {
        nx: 16,
        ny: 16,
        outer_steps: 1,
        cg_iters: 100,
    };
    let mut k = TealeafKernel::new(p, 0, 1);
    let total = k.local_heat();
    let mean = total / 256.0;
    let mut comm = SelfComm::new();
    for _ in 0..200 {
        k.step(&mut comm);
    }
    let field = k.core_field();
    for v in field {
        assert!((v - mean).abs() < 0.05 * mean, "not uniform: {v} vs {mean}");
    }
    assert!((k.local_heat() - total).abs() / total < 1e-6);
}

// ---------------------------------------------------------- cloverleaf

#[test]
fn cloverleaf_preserves_mirror_symmetry() {
    // The quadrant IC is symmetric under (x,y) → (y,x); the solver must
    // preserve that symmetry exactly (same flux formulas both axes).
    let p = cloverleaf::CloverParams {
        nx: 24,
        ny: 24,
        steps: 8,
    };
    let mut k = CloverKernel::new(p, 0, 1);
    let mut comm = SelfComm::new();
    for _ in 0..8 {
        k.step(&mut comm);
    }
    let rho = k.density_field();
    for y in 0..24 {
        for x in 0..24 {
            let a = rho[y * 24 + x];
            let b = rho[x * 24 + y];
            assert!(
                (a - b).abs() < 1e-12,
                "diagonal symmetry broken at ({x},{y}): {a} vs {b}"
            );
        }
    }
}

#[test]
fn cloverleaf_stays_positive_over_long_runs() {
    let p = cloverleaf::CloverParams {
        nx: 32,
        ny: 32,
        steps: 60,
    };
    let mut k = CloverKernel::new(p, 0, 1);
    let mut comm = SelfComm::new();
    for _ in 0..60 {
        k.step(&mut comm);
        k.validate().expect("positivity must hold every step");
    }
}

// ------------------------------------------------------------ minisweep

#[test]
fn minisweep_reaches_the_infinite_medium_limit() {
    // Uniform source & absorber, many sweeps: the interior scalar flux
    // approaches 8 octants × S/σ (boundary cells stay lower because of
    // the vacuum boundary).
    let p = minisweep::SweepParams {
        nx: 16,
        ny: 16,
        nz: 12,
        groups: 1,
        angles: 1,
        zblocks: 2,
        steps: 12,
    };
    let mut k = SweepKernel::new(p, 0, 1);
    let mut comm = SelfComm::new();
    for _ in 0..12 {
        k.step(&mut comm);
    }
    let centre = k.flux_at(8, 8, 6);
    let bound = k.flux_bound();
    assert!(
        centre > 0.85 * bound && centre <= bound * (1.0 + 1e-9),
        "interior flux {centre} vs infinite-medium bound {bound}"
    );
    // Boundary flux is depressed by the vacuum boundary.
    let corner = k.flux_at(0, 0, 0);
    assert!(corner < centre, "corner {corner} should see less flux");
}

// --------------------------------------------------------------- pot3d

#[test]
fn pot3d_cg_error_decreases_monotonically_over_steps() {
    let p = pot3d::Pot3dParams {
        nr: 12,
        nt: 12,
        np: 12,
        iters: 10,
    };
    let mut k = Pot3dKernel::new(p, 0, 1);
    let mut comm = SelfComm::new();
    let mut last = f64::INFINITY;
    for _ in 0..4 {
        k.step(&mut comm);
        assert!(
            k.last_residual <= last * (1.0 + 1e-9),
            "residual rose: {last} → {}",
            k.last_residual
        );
        last = k.last_residual;
    }
    assert!(last < 1e-6, "PCG should be nearly converged: {last}");
}

// ----------------------------------------------------------------- sph

#[test]
fn sph_perfect_lattice_stays_near_equilibrium() {
    let p = sph_exa::SphParams { side: 8, steps: 6 };
    let mut k = SphKernel::new(p, 0, 1);
    let mut comm = SelfComm::new();
    for _ in 0..6 {
        k.step(&mut comm);
    }
    // The jittered lattice relaxes; velocities stay bounded (no blowup).
    let vmax = k.max_speed();
    assert!(vmax < 1.0, "velocities exploded: {vmax}");
    k.validate().unwrap();
}

// ------------------------------------------------------------- hpgmgfv

#[test]
fn hpgmgfv_contraction_rate_is_grid_independent() {
    // Textbook multigrid property: the V-cycle residual-reduction factor
    // does not degrade as the grid grows.
    let rate = |log2_grid: u32| -> f64 {
        let p = hpgmgfv::HpgmgParams {
            log2_box: 3,
            log2_grid,
            steps: 3,
        };
        let mut k = HpgmgKernel::new(p, 0, 1);
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        let r1 = k.last_residual;
        k.step(&mut comm);
        k.last_residual / r1
    };
    let small = rate(4);
    let large = rate(5);
    assert!(small < 0.4, "16³ contraction {small}");
    assert!(large < 0.4, "32³ contraction {large}");
    assert!(
        large < 2.5 * small.max(0.05),
        "contraction degrades with grid size: {small} vs {large}"
    );
}

// -------------------------------------------------------------- weather

#[test]
fn weather_constant_state_is_well_balanced() {
    // A constant field must be exactly preserved by the conservative
    // upwind transport (divergence-free prescribed winds not required:
    // flux differences of a constant only cancel in x, and the z-pass
    // uses zero-flux walls with a divergence-free roll).
    let p = weather::WeatherParams {
        nx: 32,
        nz: 16,
        steps: 10,
        model: 6,
    };
    let mut k = WeatherKernel::new(p, 0, 1);
    k.set_constant(3, 300.0); // flatten θ
    let mut comm = SelfComm::new();
    for _ in 0..10 {
        k.step(&mut comm);
    }
    let (mn, mx) = k.field_range(0); // density stays exactly 1
    assert!(
        (mn - 1.0).abs() < 1e-9 && (mx - 1.0).abs() < 1e-9,
        "density must stay constant: [{mn}, {mx}]"
    );
}

#[test]
fn weather_theta_extrema_are_bounded_by_initial_data() {
    // First-order upwind transport is monotone: no new extrema.
    let p = weather::WeatherParams {
        nx: 48,
        nz: 24,
        steps: 30,
        model: 6,
    };
    let mut k = WeatherKernel::new(p, 0, 1);
    let (mn0, mx0) = k.field_range(3);
    let mut comm = SelfComm::new();
    for _ in 0..30 {
        k.step(&mut comm);
    }
    let (mn1, mx1) = k.field_range(3);
    assert!(mn1 >= mn0 - 1e-9, "new minimum created: {mn0} → {mn1}");
    assert!(mx1 <= mx0 + 1e-9, "new maximum created: {mx0} → {mx1}");
}

// ---------------------------------------------------------------- soma

#[test]
fn soma_stronger_repulsion_lowers_acceptance() {
    let p = soma::params(TEST);
    let accept = |kappa: f64| -> f64 {
        let mut k = SomaKernel::new(p, 0, 1, 11);
        k.set_kappa(kappa);
        let mut comm = SelfComm::new();
        // A couple of steps to populate the density field.
        for _ in 0..3 {
            k.step(&mut comm);
        }
        k.accepted as f64 / k.attempted as f64
    };
    let weak = accept(0.1);
    let strong = accept(30.0);
    assert!(
        strong < weak,
        "stronger repulsion must reject more moves: {weak} vs {strong}"
    );
}
