//! # spechpc-kernels — executable analogs of the nine SPEChpc 2021 benchmarks
//!
//! The SPEChpc 2021 suite is distributed by SPEC and written in Fortran,
//! C and C++ (Table 1 of the paper). This crate provides Rust mini-kernel
//! *analogs* of all nine benchmarks. Each analog has three faces:
//!
//! 1. **A real, executable kernel** ([`Kernel`]) implementing the same
//!    numerical method class on a rank-local domain (lattice-Boltzmann
//!    D2Q37, CG heat solver, explicit Euler hydro, KBA radiation sweep,
//!    preconditioned CG Laplace, SPH, FV geometric multigrid, FV
//!    atmosphere, MC polymers). Kernels run *natively* over
//!    [`spechpc_simmpi::threadcomm`] — real data moves, invariants are
//!    testable (conservation laws, residual decrease, …).
//! 2. **A communication pattern** ([`Benchmark::step_programs`]) — the
//!    per-rank MPI operation sequence of one time step, fed to the
//!    discrete-event simulator for cluster-scale replay. The pattern is
//!    produced by the *same decomposition code* the real kernel uses.
//! 3. **A workload signature** ([`WorkloadSignature`]) — calibrated
//!    resource footprints (flops, SIMD fraction, memory/L2/L3 traffic,
//!    working set, power "heat") that drive the node-level performance
//!    model ([`common::model::NodeModel`]).
//!
//! [`registry::all_benchmarks`] returns the full suite in the paper's
//! Table 1 order.

// The kernels mirror the suite's Fortran/C stencil loops: explicit
// index loops over several co-indexed arrays are the clearest analog.
#![allow(clippy::needless_range_loop)]

pub mod benchmarks;
pub mod common;
pub mod registry;

pub use common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
pub use common::config::WorkloadClass;
pub use common::decomp::{block_range, factor_2d, factor_3d, Grid2d, Grid3d};
pub use common::model::{ComputeTimes, NodeModel};
pub use common::signature::WorkloadSignature;
pub use registry::{all_benchmarks, benchmark_by_name, BENCHMARK_NAMES};
