//! The suite registry: all nine benchmarks in Table 1 order.

use crate::common::benchmark::Benchmark;

/// Benchmark names in the paper's Table 1 order.
pub const BENCHMARK_NAMES: [&str; 9] = [
    "lbm",
    "soma",
    "tealeaf",
    "cloverleaf",
    "minisweep",
    "pot3d",
    "sph-exa",
    "hpgmgfv",
    "weather",
];

/// Instantiate the full suite in Table 1 order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(crate::benchmarks::lbm::Lbm),
        Box::new(crate::benchmarks::soma::Soma),
        Box::new(crate::benchmarks::tealeaf::Tealeaf),
        Box::new(crate::benchmarks::cloverleaf::Cloverleaf),
        Box::new(crate::benchmarks::minisweep::Minisweep),
        Box::new(crate::benchmarks::pot3d::Pot3d),
        Box::new(crate::benchmarks::sph_exa::SphExa),
        Box::new(crate::benchmarks::hpgmgfv::Hpgmgfv),
        Box::new(crate::benchmarks::weather::Weather),
    ]
}

/// Look up one suite member by its Table 1 name.
pub fn benchmark_by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all_benchmarks().into_iter().find(|b| b.meta().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::config::WorkloadClass;

    #[test]
    fn registry_has_nine_members_in_table_order() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 9);
        for (b, name) in all.iter().zip(BENCHMARK_NAMES) {
            assert_eq!(b.meta().name, name);
        }
    }

    #[test]
    fn six_of_nine_support_medium_and_large() {
        // Paper §2: "the medium and large workloads are only supported
        // by six out of the nine benchmarks".
        let n = all_benchmarks()
            .iter()
            .filter(|b| b.meta().supports_medium_large)
            .count();
        assert_eq!(n, 6);
    }

    #[test]
    fn every_signature_validates_for_every_class() {
        for b in all_benchmarks() {
            for class in [
                WorkloadClass::Test,
                WorkloadClass::Tiny,
                WorkloadClass::Small,
                WorkloadClass::Medium,
                WorkloadClass::Large,
            ] {
                let sig = b.signature(class);
                sig.validate()
                    .unwrap_or_else(|e| panic!("{} {class}: {e}", b.meta().name));
            }
        }
    }

    #[test]
    fn tiny_fits_its_memory_budget() {
        // Tiny working sets must respect the 0.06 TB class budget and be
        // at least 10× one node's LLC (§3).
        let llc = 420e6; // the larger (ClusterB) node LLC in bytes
        for b in all_benchmarks() {
            let sig = b.signature(WorkloadClass::Tiny);
            let ws = sig.resident_bytes(72);
            assert!(
                ws < 0.07e12,
                "{}: tiny working set {ws:.2e} exceeds the class budget",
                b.meta().name
            );
            assert!(
                ws > 1.0 * llc,
                "{}: tiny working set {ws:.2e} too small to stress memory",
                b.meta().name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("pot3d").is_some());
        assert!(benchmark_by_name("sph-exa").is_some());
        assert!(benchmark_by_name("hpl").is_none());
    }

    #[test]
    fn heats_span_the_soma_to_sph_exa_range() {
        let heats: Vec<(String, f64)> = all_benchmarks()
            .iter()
            .map(|b| {
                (
                    b.meta().name.to_string(),
                    b.signature(WorkloadClass::Tiny).heat,
                )
            })
            .collect();
        let hottest = heats.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let coolest = heats.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(hottest.0, "sph-exa", "§4.2.1: sph-exa is hottest");
        assert_eq!(coolest.0, "soma", "§4.2.1: soma is coolest");
    }
}
