//! The [`Benchmark`] and [`Kernel`] traits every suite member implements.

use spechpc_simmpi::comm::Comm;
use spechpc_simmpi::program::Program;

use crate::common::config::WorkloadClass;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

/// Static attributes of a benchmark (paper Tables 1 and 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMeta {
    /// Suite name, e.g. "lbm".
    pub name: &'static str,
    /// SPEC benchmark id within a class, e.g. 90 for `505.lbm_t`
    /// (Table 1, column "B").
    pub spec_id: u32,
    /// Original implementation language (Table 1).
    pub language: &'static str,
    /// Lines of code of the original (Table 1).
    pub loc: u32,
    /// Dominant collective primitive (Table 1).
    pub collective: &'static str,
    /// Numerical method (Table 2).
    pub numerics: &'static str,
    /// Application domain (Table 2).
    pub domain: &'static str,
    /// Whether the medium/large workloads exist (six of nine codes).
    pub supports_medium_large: bool,
}

impl BenchMeta {
    /// Official benchmark name for a class, e.g. `505.lbm_t`.
    pub fn spec_name(&self, class: WorkloadClass) -> String {
        match class.id_prefix() {
            Some(p) => format!("{}{:02}.{}_{}", p, self.spec_id, self.name, class.suffix()),
            None => format!("{}_{}", self.name, class.suffix()),
        }
    }
}

/// A printable input configuration (Table 1's "Input configuration"
/// column): parameter name → value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchConfig {
    pub params: Vec<(&'static str, String)>,
    /// Number of timed steps/iterations.
    pub steps: u64,
}

impl BenchConfig {
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A real, executable kernel instance bound to one rank.
pub trait Kernel {
    /// Advance the local state by one time step, communicating through
    /// `comm`.
    fn step(&mut self, comm: &mut dyn Comm);

    /// Check the kernel's numerical invariants (conservation laws,
    /// residual decrease, positivity, …).
    fn validate(&self) -> Result<(), String>;

    /// Deterministic digest of the local state, for cross-run
    /// reproducibility checks.
    fn checksum(&self) -> f64;
}

/// One member of the SPEChpc 2021 suite analog.
pub trait Benchmark: Send + Sync {
    /// Static attributes (paper Tables 1–2).
    fn meta(&self) -> BenchMeta;

    /// Input configuration of a workload class (paper Table 1).
    fn config(&self, class: WorkloadClass) -> BenchConfig;

    /// Calibrated per-step resource footprint of a class.
    fn signature(&self, class: WorkloadClass) -> WorkloadSignature;

    /// Per-rank compute-time penalty factors (≥ 1.0) at a process count;
    /// empty means uniform. `lbm` overrides this with its
    /// data-alignment pathology model (paper §4.1.6).
    fn penalties(&self, _class: WorkloadClass, _nranks: usize) -> Vec<f64> {
        Vec::new()
    }

    /// Per-rank MPI programs for **one** simulated time step. The
    /// per-rank compute phases come from the node model via `compute`;
    /// the communication pattern comes from the same decomposition the
    /// native kernel uses. `compute.per_rank.len()` is the rank count.
    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program>;

    /// Instantiate the real kernel for `rank` of `nranks` (only
    /// supported for [`WorkloadClass::Test`]-scale configs in practice —
    /// the full SPEC sizes would need the original cluster).
    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        seed: u64,
    ) -> Box<dyn Kernel>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_follow_the_numbering_scheme() {
        let meta = BenchMeta {
            name: "lbm",
            spec_id: 5,
            language: "C",
            loc: 9000,
            collective: "Barrier",
            numerics: "Lattice-Boltzmann Method D2Q37",
            domain: "2D CFD solver",
            supports_medium_large: true,
        };
        assert_eq!(meta.spec_name(WorkloadClass::Tiny), "505.lbm_t");
        assert_eq!(meta.spec_name(WorkloadClass::Small), "605.lbm_s");
        assert_eq!(meta.spec_name(WorkloadClass::Test), "lbm_test");
    }

    #[test]
    fn config_param_lookup() {
        let cfg = BenchConfig {
            params: vec![("nx", "4096".into()), ("ny", "16384".into())],
            steps: 600,
        };
        assert_eq!(cfg.param("nx"), Some("4096"));
        assert_eq!(cfg.param("nz"), None);
    }
}
