//! Small deterministic pseudo-random number generator for the
//! Monte-Carlo kernels.
//!
//! The kernels only need a reproducible stream of uniform doubles (soma's
//! Metropolis acceptance and chain growth), so a dependency-free
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 is plenty:
//! it passes BigCrush, has a 2²⁵⁶−1 period, and — crucially for the
//! run-result cache — the same seed always yields the same trajectory on
//! every platform.

/// xoshiro256++ PRNG seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the full 256-bit state from one `u64` via SplitMix64 (the
    /// seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn doubles_are_uniformish() {
        let mut r = Rng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut x = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = x.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }
}
