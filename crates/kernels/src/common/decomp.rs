//! Domain decompositions shared by the real kernels and the
//! communication-pattern generators.
//!
//! The *same* decomposition code feeds both execution paths, so the
//! simulated MPI patterns are exactly those the native kernels use. The
//! factorization routines mirror `MPI_Dims_create`: as square as
//! possible. This is where the paper's prime-process-count pathologies
//! originate — a prime `p` factors only as `1 × p`, producing a chain
//! decomposition with maximal dependency length (minisweep, §4.1.5) and
//! extreme aspect ratios (lbm, §4.1.6).

/// Factor `p` into `(px, py)` with `px × py = p`, as square as possible,
/// `px ≤ py` (the `MPI_Dims_create` convention).
pub fn factor_2d(p: usize) -> (usize, usize) {
    assert!(p > 0);
    let mut best = (1, p);
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            best = (d, p / d);
        }
        d += 1;
    }
    best
}

/// Factor `p` into `(px, py, pz)` with product `p`, as cubic as possible,
/// `px ≤ py ≤ pz`.
pub fn factor_3d(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (1, 1, p);
    let mut best_score = score3(best);
    let mut a = 1;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let rest = p / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let cand = (a, b, rest / b);
                    let s = score3(cand);
                    if s < best_score {
                        best = cand;
                        best_score = s;
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Surface-to-volume style badness score: sum of pairwise ratios.
fn score3((a, b, c): (usize, usize, usize)) -> f64 {
    let (a, b, c) = (a as f64, b as f64, c as f64);
    c / a + c / b + b / a
}

/// The index range `[lo, hi)` of block `i` when `n` items are split over
/// `p` blocks as evenly as possible (first `n % p` blocks get one extra).
pub fn block_range(n: usize, p: usize, i: usize) -> (usize, usize) {
    assert!(i < p, "block index {i} out of {p}");
    let base = n / p;
    let extra = n % p;
    let lo = i * base + i.min(extra);
    let hi = lo + base + usize::from(i < extra);
    (lo, hi)
}

/// A 2-D process grid with block decomposition of an `nx × ny` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    pub nx: usize,
    pub ny: usize,
    pub px: usize,
    pub py: usize,
}

impl Grid2d {
    /// Decompose `nx × ny` over `p` ranks, MPI_Dims_create style. The
    /// longer process-grid side is assigned to the longer domain side.
    pub fn new(nx: usize, ny: usize, p: usize) -> Self {
        let (a, b) = factor_2d(p); // a ≤ b
        let (px, py) = if nx >= ny { (b, a) } else { (a, b) };
        Grid2d { nx, ny, px, py }
    }

    pub fn nranks(&self) -> usize {
        self.px * self.py
    }

    /// Grid coordinates of a rank (row-major: x fastest).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank % self.px, rank / self.px)
    }

    pub fn rank_of(&self, ix: usize, iy: usize) -> usize {
        iy * self.px + ix
    }

    /// Local tile `[x0, x1) × [y0, y1)` of a rank.
    pub fn tile(&self, rank: usize) -> (usize, usize, usize, usize) {
        let (ix, iy) = self.coords(rank);
        let (x0, x1) = block_range(self.nx, self.px, ix);
        let (y0, y1) = block_range(self.ny, self.py, iy);
        (x0, x1, y0, y1)
    }

    /// Local tile extents `(lx, ly)`.
    pub fn tile_size(&self, rank: usize) -> (usize, usize) {
        let (x0, x1, y0, y1) = self.tile(rank);
        (x1 - x0, y1 - y0)
    }

    /// Neighbors `(west, east, south, north)` with open boundaries.
    pub fn neighbors(&self, rank: usize) -> [Option<usize>; 4] {
        let (ix, iy) = self.coords(rank);
        [
            (ix > 0).then(|| self.rank_of(ix - 1, iy)),
            (ix + 1 < self.px).then(|| self.rank_of(ix + 1, iy)),
            (iy > 0).then(|| self.rank_of(ix, iy - 1)),
            (iy + 1 < self.py).then(|| self.rank_of(ix, iy + 1)),
        ]
    }

    /// Neighbors with periodic wrap-around, `(west, east, south, north)`.
    pub fn neighbors_periodic(&self, rank: usize) -> [usize; 4] {
        let (ix, iy) = self.coords(rank);
        [
            self.rank_of((ix + self.px - 1) % self.px, iy),
            self.rank_of((ix + 1) % self.px, iy),
            self.rank_of(ix, (iy + self.py - 1) % self.py),
            self.rank_of(ix, (iy + 1) % self.py),
        ]
    }
}

/// A 3-D process grid with block decomposition of `nx × ny × nz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3d {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub px: usize,
    pub py: usize,
    pub pz: usize,
}

impl Grid3d {
    pub fn new(nx: usize, ny: usize, nz: usize, p: usize) -> Self {
        let (px, py, pz) = factor_3d(p);
        Grid3d {
            nx,
            ny,
            nz,
            px,
            py,
            pz,
        }
    }

    pub fn nranks(&self) -> usize {
        self.px * self.py * self.pz
    }

    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        (
            rank % self.px,
            (rank / self.px) % self.py,
            rank / (self.px * self.py),
        )
    }

    pub fn rank_of(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.py + iy) * self.px + ix
    }

    /// Local tile `[x0,x1) × [y0,y1) × [z0,z1)`.
    #[allow(clippy::type_complexity)]
    pub fn tile(&self, rank: usize) -> ((usize, usize), (usize, usize), (usize, usize)) {
        let (ix, iy, iz) = self.coords(rank);
        (
            block_range(self.nx, self.px, ix),
            block_range(self.ny, self.py, iy),
            block_range(self.nz, self.pz, iz),
        )
    }

    /// Six face neighbors (−x, +x, −y, +y, −z, +z), open boundaries.
    pub fn neighbors(&self, rank: usize) -> [Option<usize>; 6] {
        let (ix, iy, iz) = self.coords(rank);
        [
            (ix > 0).then(|| self.rank_of(ix - 1, iy, iz)),
            (ix + 1 < self.px).then(|| self.rank_of(ix + 1, iy, iz)),
            (iy > 0).then(|| self.rank_of(ix, iy - 1, iz)),
            (iy + 1 < self.py).then(|| self.rank_of(ix, iy + 1, iz)),
            (iz > 0).then(|| self.rank_of(ix, iy, iz - 1)),
            (iz + 1 < self.pz).then(|| self.rank_of(ix, iy, iz + 1)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_2d_squares() {
        assert_eq!(factor_2d(1), (1, 1));
        assert_eq!(factor_2d(12), (3, 4));
        assert_eq!(factor_2d(36), (6, 6));
        assert_eq!(factor_2d(44), (4, 11));
        assert_eq!(factor_2d(45), (5, 9));
    }

    #[test]
    fn factor_2d_primes_give_chains() {
        // Prime process counts decompose as 1 × p — the root of the
        // paper's minisweep pathologies at {59, 61, …}.
        for p in [2, 3, 5, 7, 59, 61, 71] {
            assert_eq!(factor_2d(p), (1, p));
        }
    }

    #[test]
    fn factor_3d_products_and_shape() {
        for p in 1..200 {
            let (a, b, c) = factor_3d(p);
            assert_eq!(a * b * c, p);
            assert!(a <= b && b <= c);
        }
        assert_eq!(factor_3d(8), (2, 2, 2));
        assert_eq!(factor_3d(64), (4, 4, 4));
    }

    #[test]
    fn block_ranges_partition() {
        for n in [10usize, 97, 1000] {
            for p in [1usize, 3, 7, 13] {
                let mut next = 0;
                for i in 0..p {
                    let (lo, hi) = block_range(n, p, i);
                    assert_eq!(lo, next);
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..7)
            .map(|i| {
                let (lo, hi) = block_range(100, 7, i);
                hi - lo
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn grid2d_tiles_cover_domain() {
        let g = Grid2d::new(100, 60, 12);
        let mut covered = vec![false; 100 * 60];
        for r in 0..g.nranks() {
            let (x0, x1, y0, y1) = g.tile(r);
            for y in y0..y1 {
                for x in x0..x1 {
                    assert!(!covered[y * 100 + x]);
                    covered[y * 100 + x] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn grid2d_orients_long_side_to_long_domain() {
        let g = Grid2d::new(4096, 16384, 8);
        assert!(g.py >= g.px, "long domain side Y should get more ranks");
    }

    #[test]
    fn grid2d_neighbors_are_mutual() {
        let g = Grid2d::new(64, 64, 12);
        for r in 0..12 {
            let [w, e, s, n] = g.neighbors(r);
            if let Some(e) = e {
                assert_eq!(g.neighbors(e)[0], Some(r));
            }
            if let Some(w) = w {
                assert_eq!(g.neighbors(w)[1], Some(r));
            }
            if let Some(n) = n {
                assert_eq!(g.neighbors(n)[2], Some(r));
            }
            if let Some(s) = s {
                assert_eq!(g.neighbors(s)[3], Some(r));
            }
        }
    }

    #[test]
    fn grid2d_periodic_neighbors_wrap() {
        let g = Grid2d::new(64, 64, 4); // 2×2
        let n = g.neighbors_periodic(0);
        assert_eq!(n.len(), 4);
        // In a 2×2 grid, the periodic west and east neighbor coincide.
        assert_eq!(n[0], n[1]);
    }

    #[test]
    fn grid3d_roundtrip_coords() {
        let g = Grid3d::new(96, 64, 64, 24);
        for r in 0..g.nranks() {
            let (x, y, z) = g.coords(r);
            assert_eq!(g.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn grid3d_neighbors_mutual() {
        let g = Grid3d::new(32, 32, 32, 27);
        for r in 0..g.nranks() {
            let nb = g.neighbors(r);
            for (dir, n) in nb.iter().enumerate() {
                if let Some(n) = *n {
                    let opposite = dir ^ 1;
                    assert_eq!(g.neighbors(n)[opposite], Some(r));
                }
            }
        }
    }
}
