//! Infrastructure shared by all nine benchmark analogs.

pub mod benchmark;
pub mod config;
pub mod decomp;
pub mod model;
pub mod rng;
pub mod signature;
