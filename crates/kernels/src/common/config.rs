//! Workload classes of the SPEChpc 2021 suite.
//!
//! The suite ships four strong-scaling workload sizes (paper §2):
//! *tiny* (≤64 GB, 1–256 processes), *small* (≤480 GB, 64–1024),
//! *medium* (≤4 TB, 256–4096) and *large* (≤14.5 TB, 2048–32768). We add
//! a *test* class: a miniature configuration for executing the real
//! kernels natively in unit/integration tests.

/// Workload size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Miniature, for native test execution (not part of SPEChpc).
    Test,
    /// `5xx.name_t`: up to 0.06 TB, 1–256 processes.
    Tiny,
    /// `6xx.name_s`: up to 0.48 TB, 64–1024 processes.
    Small,
    /// `7xx.name_m`: up to 4 TB, 256–4096 processes (six of nine codes).
    Medium,
    /// `8xx.name_l`: up to 14.5 TB, 2048–32768 processes (six of nine).
    Large,
}

impl WorkloadClass {
    /// SPEC benchmark-id prefix digit of the class (`5ID.Name_t`,
    /// `6ID.Name_s`, …).
    pub fn id_prefix(self) -> Option<u32> {
        match self {
            WorkloadClass::Test => None,
            WorkloadClass::Tiny => Some(5),
            WorkloadClass::Small => Some(6),
            WorkloadClass::Medium => Some(7),
            WorkloadClass::Large => Some(8),
        }
    }

    /// Suffix used in the official benchmark names.
    pub fn suffix(self) -> &'static str {
        match self {
            WorkloadClass::Test => "test",
            WorkloadClass::Tiny => "t",
            WorkloadClass::Small => "s",
            WorkloadClass::Medium => "m",
            WorkloadClass::Large => "l",
        }
    }

    /// Documented process-count range of the class.
    pub fn process_range(self) -> (usize, usize) {
        match self {
            WorkloadClass::Test => (1, 16),
            WorkloadClass::Tiny => (1, 256),
            WorkloadClass::Small => (64, 1024),
            WorkloadClass::Medium => (256, 4096),
            WorkloadClass::Large => (2048, 32768),
        }
    }

    /// Documented maximum aggregate memory footprint in TB.
    pub fn memory_budget_tb(self) -> f64 {
        match self {
            WorkloadClass::Test => 0.001,
            WorkloadClass::Tiny => 0.06,
            WorkloadClass::Small => 0.48,
            WorkloadClass::Medium => 4.0,
            WorkloadClass::Large => 14.5,
        }
    }
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkloadClass::Test => "test",
            WorkloadClass::Tiny => "tiny",
            WorkloadClass::Small => "small",
            WorkloadClass::Medium => "medium",
            WorkloadClass::Large => "large",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_metadata_matches_paper() {
        assert_eq!(WorkloadClass::Tiny.process_range(), (1, 256));
        assert_eq!(WorkloadClass::Small.process_range(), (64, 1024));
        assert_eq!(WorkloadClass::Tiny.id_prefix(), Some(5));
        assert_eq!(WorkloadClass::Small.suffix(), "s");
        assert!(WorkloadClass::Large.memory_budget_tb() > 14.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadClass::Tiny.to_string(), "tiny");
        assert_eq!(WorkloadClass::Test.to_string(), "test");
    }
}
