//! Workload signatures: the calibrated resource footprint of one
//! benchmark time step.
//!
//! The paper's entire analysis rests on fundamental resource metrics —
//! flops (DP vs. DP-AVX), memory/L3/L2 data volumes, bandwidths, and
//! working-set size ("The working sets of the tiny or small suites were
//! at least ten times the size of the last-level cache of one node",
//! §3). A [`WorkloadSignature`] captures exactly those quantities for
//! one simulated time step of one benchmark at one workload class.

/// Resource footprint of one benchmark step, aggregated over all ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSignature {
    /// Double-precision floating-point operations per step (total).
    pub flops: f64,
    /// Fraction of the flops executed with AVX-512 SIMD instructions
    /// (the paper's §4.1.3 "vectorization ratio").
    pub simd_fraction: f64,
    /// Fraction of peak execution throughput a core achieves on this
    /// code's instruction mix when not memory-bound (pipeline
    /// dependencies, non-FMA operations, divides, gathers, …).
    pub core_efficiency: f64,
    /// Main-memory traffic per step in bytes (total, assuming no part of
    /// the working set is cache-resident). Split evenly over ranks.
    pub mem_bytes: f64,
    /// Additional main-memory traffic per step **per rank** in bytes —
    /// sweeps over *replicated* data that do not shrink under strong
    /// scaling (soma's density-field passes, §5.1.2). Aggregate traffic
    /// from this term grows linearly with the rank count.
    pub mem_bytes_per_rank: f64,
    /// L2 cache traffic per step in bytes (total).
    pub l2_bytes: f64,
    /// L3 cache traffic per step in bytes (total). On the studied CPUs
    /// the L3 is a victim cache and sees traffic coming down from L2, so
    /// `l3_bytes` may exceed `mem_bytes` considerably (paper §4.1.4).
    pub l3_bytes: f64,
    /// Aggregate working set in bytes. Split over nodes under strong
    /// scaling; when the per-node share approaches the effective LLC, the
    /// memory traffic collapses (superlinear scaling, paper §5.1 case A).
    pub working_set_bytes: f64,
    /// Sharpness of the cache-fit transition: the fraction of memory
    /// traffic that survives caching is `1 − (llc/ws)^cache_exponent`.
    /// Pure streaming access (LRU gets no reuse until the set nearly
    /// fits) is sharp (≈3); blocked or irregular access with temporal
    /// locality benefits earlier (1–1.5).
    pub cache_exponent: f64,
    /// Fraction of the working set that is *replicated per rank* rather
    /// than distributed (soma's density fields, §5.1.2). Replicated data
    /// adds `replicated_fraction × working_set` per additional rank and
    /// never becomes cache-resident by scaling out.
    pub replicated_fraction: f64,
    /// Power intensity in `[0, 1]`: position of this code between the
    /// coolest (soma = 0) and hottest (sph-exa = 1) codes of §4.2.1.
    pub heat: f64,
    /// Number of timed steps in the workload.
    pub steps: u64,
}

impl WorkloadSignature {
    /// Arithmetic intensity in flops/byte against main memory.
    pub fn intensity(&self) -> f64 {
        if self.mem_bytes <= 0.0 {
            return f64::INFINITY;
        }
        self.flops / self.mem_bytes
    }

    /// Distributed (non-replicated) part of the working set.
    pub fn distributed_working_set(&self) -> f64 {
        self.working_set_bytes * (1.0 - self.replicated_fraction)
    }

    /// Total resident bytes with `nranks` ranks: the distributed part
    /// plus one replica of the replicated part per rank.
    pub fn resident_bytes(&self, nranks: usize) -> f64 {
        self.distributed_working_set()
            + self.working_set_bytes * self.replicated_fraction * nranks as f64
    }

    /// Basic sanity check used by the test-suite over all benchmarks.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            (self.flops >= 0.0, "flops must be non-negative"),
            (
                (0.0..=1.0).contains(&self.simd_fraction),
                "simd_fraction must be in [0,1]",
            ),
            (
                self.core_efficiency > 0.0 && self.core_efficiency <= 1.0,
                "core_efficiency must be in (0,1]",
            ),
            (self.mem_bytes >= 0.0, "mem_bytes must be non-negative"),
            (
                self.mem_bytes_per_rank >= 0.0,
                "mem_bytes_per_rank must be non-negative",
            ),
            (
                self.l2_bytes >= self.mem_bytes,
                "L2 traffic cannot be below memory traffic",
            ),
            (self.working_set_bytes > 0.0, "working set must be positive"),
            (
                (0.0..=1.0).contains(&self.replicated_fraction),
                "replicated_fraction must be in [0,1]",
            ),
            (
                (0.5..=5.0).contains(&self.cache_exponent),
                "cache_exponent must be in [0.5, 5]",
            ),
            ((0.0..=1.0).contains(&self.heat), "heat must be in [0,1]"),
            (self.steps > 0, "steps must be positive"),
        ];
        for (ok, msg) in checks {
            if !ok {
                return Err(msg.to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> WorkloadSignature {
        WorkloadSignature {
            flops: 1e12,
            simd_fraction: 0.9,
            core_efficiency: 0.3,
            mem_bytes: 1e11,
            mem_bytes_per_rank: 0.0,
            l2_bytes: 2e11,
            l3_bytes: 1.5e11,
            working_set_bytes: 1e10,
            cache_exponent: 1.0,
            replicated_fraction: 0.0,
            heat: 0.5,
            steps: 100,
        }
    }

    #[test]
    fn intensity_is_flops_over_bytes() {
        assert!((sig().intensity() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_memory_traffic_means_infinite_intensity() {
        let mut s = sig();
        s.mem_bytes = 0.0;
        assert!(s.intensity().is_infinite());
    }

    #[test]
    fn replicated_data_grows_with_ranks() {
        let mut s = sig();
        s.replicated_fraction = 0.5;
        let one = s.resident_bytes(1);
        let ten = s.resident_bytes(10);
        assert!((one - 1e10).abs() < 1.0);
        // 0.5e10 distributed + 10 × 0.5e10 replicated = 5.5e10
        assert!((ten - 5.5e10).abs() < 1.0);
    }

    #[test]
    fn fully_distributed_data_is_rank_independent() {
        let s = sig();
        assert_eq!(s.resident_bytes(1), s.resident_bytes(1000));
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(sig().validate().is_ok());
        let mut s = sig();
        s.simd_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = sig();
        s.l2_bytes = 0.0;
        assert!(s.validate().is_err(), "L2 < memory must be rejected");
        let mut s = sig();
        s.steps = 0;
        assert!(s.validate().is_err());
    }
}
